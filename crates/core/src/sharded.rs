//! Hash-sharded LTC — scale-out across cores or switches.
//!
//! A single LTC is single-writer. To use `N` cores (or aggregate `N`
//! monitoring points, the paper's data-center scenario), partition the item
//! space by hash: shard `i` owns the ids whose shard-hash maps to `i` and
//! runs an independent LTC over its sub-stream. Because the partition is by
//! *item*, every occurrence of an item lands in the same shard, so per-item
//! frequency/persistency are as accurate as a single table of the shard's
//! size — and the global top-k is the top-k of the union of shard
//! candidates (no cross-shard error, unlike splitting the stream randomly).
//!
//! [`ShardedLtc`] is the single-threaded container (routing, fan-out of
//! period boundaries, merged queries). For actual parallelism use the
//! ready-made runtime in [`crate::pipeline`]: [`ParallelLtc`] owns one
//! worker thread per shard, routes batches over bounded queues with the
//! same [`shard_of_id`] partition, and synchronises `end_period` with an
//! epoch barrier — so its shards stay bit-identical to this container's
//! (see `tests/parallel_pipeline.rs` and `examples/parallel_shards.rs`).
//! The building blocks remain public for custom topologies: move shards
//! into your own threads with [`ShardedLtc::into_shards`], route with
//! [`shard_of_id`], reassemble with [`ShardedLtc::from_shards`].
//!
//! [`ParallelLtc`]: crate::pipeline::ParallelLtc

use crate::config::LtcConfig;
use crate::stats::LtcStats;
use crate::table::Ltc;
use ltc_common::{
    top_k_of, BatchStreamProcessor, Estimate, ItemId, MemoryUsage, SignificanceQuery,
    StreamProcessor,
};
use ltc_hash::bob_hash_u64;

/// Seed for the shard-routing hash. Distinct from every table seed so that
/// routing is independent of bucket placement.
const SHARD_SEED: u32 = 0x5aa2_d001;

/// Which shard of `n` owns `id`.
#[inline]
pub fn shard_of_id(id: ItemId, n: usize) -> usize {
    debug_assert!(n > 0);
    // n == 0 is a caller bug (debug-asserted above); shard 0 is the benign
    // release-mode answer and `checked_rem` keeps the hot path branch-light.
    bob_hash_u64(id, SHARD_SEED)
        .checked_rem(n as u64)
        .unwrap_or(0) as usize
}

/// Hash-partitioned collection of LTC tables. See the module docs.
#[derive(Clone)]
pub struct ShardedLtc {
    shards: Vec<Ltc>,
    /// Per-shard routing buffers reused across [`insert_batch`] calls
    /// (empty between calls, capacity retained). Allocating these fresh per
    /// batch cost ~40% of sharded batch throughput — see BENCH_pipeline.json
    /// `sharded4_batch256_mops`.
    ///
    /// [`insert_batch`]: ShardedLtc::insert_batch
    route_scratch: Vec<Vec<ItemId>>,
}

impl std::fmt::Debug for ShardedLtc {
    /// Debug shows the shards only: `route_scratch` is transient routing
    /// state (drained between calls), and tests compare Debug output of
    /// differently-fed containers that must still read as equal.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLtc")
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl ShardedLtc {
    /// `n` shards, each an LTC built from `config` (same shape each; the
    /// per-shard seed is perturbed so tables hash independently).
    pub fn new(config: LtcConfig, n: usize) -> Self {
        assert!(n > 0, "need at least one shard");
        let shards = (0..n)
            .map(|i| {
                let mut cfg = config;
                cfg.seed = config.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9);
                Ltc::new(cfg)
            })
            .collect();
        Self {
            shards,
            route_scratch: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `id`.
    #[inline]
    pub fn shard_of(&self, id: ItemId) -> usize {
        shard_of_id(id, self.shards.len())
    }

    /// Take the shards out for parallel feeding.
    pub fn into_shards(self) -> Vec<Ltc> {
        self.shards
    }

    /// Reassemble from independently fed shards (must be the full set, in
    /// shard order).
    pub fn from_shards(shards: Vec<Ltc>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        Self {
            shards,
            route_scratch: Vec::new(),
        }
    }

    /// Access a shard.
    pub fn shard(&self, i: usize) -> &Ltc {
        &self.shards[i]
    }

    /// Merged operational counters across every shard: the record-path
    /// counters (`inserts`, `hits`, `fills`, `decrements`, `admissions`,
    /// `harvests`) sum, while `periods` reports the *stream's* period
    /// count — every shard crosses the same boundaries, so the per-shard
    /// counts are averaged rather than summed.
    pub fn stats(&self) -> LtcStats {
        let mut merged: LtcStats = self.shards.iter().map(Ltc::stats).sum();
        merged.periods = merged
            .periods
            .checked_div(self.shards.len() as u64)
            .unwrap_or(0);
        merged
    }

    /// Finalize every shard (harvest last-period flags).
    pub fn finalize(&mut self) {
        for s in &mut self.shards {
            s.finalize();
        }
    }

    /// Route a batch: one scan over `ids` splits it into per-shard runs
    /// (preserving each shard's record order), then every shard ingests its
    /// run through [`Ltc::insert_batch`]. Equivalent to routing the records
    /// one by one. The shard hash is computed once per record, and the
    /// per-shard run buffers persist across calls, so steady-state batches
    /// allocate nothing.
    pub fn insert_batch(&mut self, ids: &[ItemId]) {
        let n = self.shards.len();
        if n == 1 {
            self.shards[0].insert_batch(ids);
            return;
        }
        self.route_scratch.resize_with(n, Vec::new);
        for &id in ids {
            if let Some(run) = self.route_scratch.get_mut(shard_of_id(id, n)) {
                run.push(id);
            }
        }
        for (shard, run) in self.shards.iter_mut().zip(&mut self.route_scratch) {
            if !run.is_empty() {
                shard.insert_batch(run);
                run.clear();
            }
        }
    }
}

impl StreamProcessor for ShardedLtc {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        let s = self.shard_of(id);
        self.shards[s].insert(id);
    }

    fn end_period(&mut self) {
        for s in &mut self.shards {
            s.end_period();
        }
    }

    fn finish(&mut self) {
        self.finalize();
    }

    fn name(&self) -> &'static str {
        "LTC-sharded"
    }
}

impl BatchStreamProcessor for ShardedLtc {
    #[inline]
    fn insert_batch(&mut self, ids: &[ItemId]) {
        ShardedLtc::insert_batch(self, ids);
    }
}

impl SignificanceQuery for ShardedLtc {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.shards[self.shard_of(id)].estimate(id)
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        // Union of per-shard top-k is a superset of the global top-k.
        let candidates: Vec<Estimate> = self.shards.iter().flat_map(|s| s.top_k(k)).collect();
        top_k_of(candidates, k)
    }
}

impl MemoryUsage for ShardedLtc {
    fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_common::Weights;

    fn config() -> LtcConfig {
        LtcConfig::builder()
            .buckets(32)
            .cells_per_bucket(4)
            .weights(Weights::BALANCED)
            .records_per_period(100)
            .seed(7)
            .build()
    }

    #[test]
    fn routing_is_stable_and_balanced() {
        let t = ShardedLtc::new(config(), 4);
        let mut counts = [0usize; 4];
        for id in 0..4_000u64 {
            let s = t.shard_of(id);
            assert_eq!(s, t.shard_of(id));
            counts[s] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn sharded_agrees_with_oracle_on_heavy_hitter() {
        // DE-only variant: no overestimation, so the bound below is exact.
        let mut cfg = config();
        cfg.variant = crate::config::Variant::DEVIATION_ONLY;
        let mut t = ShardedLtc::new(cfg, 3);
        for period in 0..5u64 {
            for i in 0..100u64 {
                // Noise ids offset so they can never collide with 42.
                t.insert(if i % 4 == 0 {
                    42
                } else {
                    1_000 + period * 100 + i
                });
            }
            t.end_period();
        }
        t.finalize();
        assert_eq!(t.top_k(1)[0].id, 42);
        // True significance: f=125, p=5 → 130. Never overestimated, and the
        // heavy hitter is barely contended so it stays near-exact.
        let est = t.estimate(42).unwrap();
        assert!((120.0..=130.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn global_top_k_merges_across_shards() {
        let mut t = ShardedLtc::new(config(), 4);
        // Ten heavy items spread across shards by hash.
        for rep in 0..20 {
            for id in 0..10u64 {
                for _ in 0..=(10 - id) as usize {
                    t.insert(id);
                }
            }
            let _ = rep;
        }
        t.end_period();
        t.finalize();
        let top: Vec<ItemId> = t.top_k(3).iter().map(|e| e.id).collect();
        assert_eq!(top, vec![0, 1, 2], "global order across shards");
    }

    #[test]
    fn into_and_from_shards_roundtrip() {
        let mut t = ShardedLtc::new(config(), 2);
        for i in 0..200u64 {
            t.insert(i % 20);
        }
        t.end_period();
        let before = t.top_k(5);
        let shards = t.into_shards();
        let t2 = ShardedLtc::from_shards(shards);
        assert_eq!(t2.top_k(5), before);
    }

    #[test]
    fn memory_sums_over_shards() {
        let t = ShardedLtc::new(config(), 3);
        assert_eq!(t.memory_bytes(), 3 * 32 * 4 * 16);
    }

    #[test]
    fn stats_merge_across_shards() {
        let mut t = ShardedLtc::new(config(), 4);
        for i in 0..500u64 {
            t.insert(i % 40);
        }
        t.end_period();
        t.end_period();
        let merged = t.stats();
        assert_eq!(merged.inserts, 500, "record counters sum across shards");
        assert_eq!(merged.periods, 2, "periods report the stream's count");
        // The merged view equals folding the per-shard stats by hand.
        let by_hand: LtcStats = (0..4).map(|s| t.shard(s).stats()).sum();
        assert_eq!(merged.inserts, by_hand.inserts);
        assert_eq!(merged.hits, by_hand.hits);
        assert_eq!(merged.harvests, by_hand.harvests);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedLtc::new(config(), 0);
    }

    #[test]
    fn batch_routing_matches_scalar_routing() {
        // The scatter-gather batch path (persistent scratch, one shard hash
        // per record) must leave every shard bit-identical to one-by-one
        // routing, across multiple batches so scratch reuse is exercised.
        let ids: Vec<ItemId> = (0..1_000u64).map(|i| i * 7 % 61).collect();
        let mut scalar = ShardedLtc::new(config(), 4);
        for &id in &ids {
            scalar.insert(id);
        }
        let mut batched = ShardedLtc::new(config(), 4);
        for chunk in ids.chunks(256) {
            batched.insert_batch(chunk);
        }
        for s in 0..4 {
            assert_eq!(
                format!("{:?}", scalar.shard(s)),
                format!("{:?}", batched.shard(s)),
                "shard {s} diverged"
            );
        }
        for run in &batched.route_scratch {
            assert!(run.is_empty(), "scratch drained between batches");
        }
    }
}
