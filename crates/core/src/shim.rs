//! Sync-primitive aliases for the concurrent runtime.
//!
//! Normal builds bind straight to `std`. Building with
//! `--features loom-check` swaps in the vendored `loom` shadow types, so
//! the model tests in `crates/core/tests/loom_*.rs` drive the *same* code
//! paths as production — every atomic access, lock, condvar wait and
//! `UnsafeCell` dereference becomes a scheduling point that the bounded
//! interleaving explorer controls and race-checks.

#[cfg(feature = "loom-check")]
pub(crate) use loom::{
    cell::UnsafeCell,
    sync::{atomic, Condvar, Mutex, MutexGuard},
};

#[cfg(not(feature = "loom-check"))]
pub(crate) use std::sync::{atomic, Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "loom-check"))]
mod cell {
    /// `std::cell::UnsafeCell` behind loom's closure-based access API, so
    /// call sites are identical in both configurations.
    pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        pub(crate) fn new(data: T) -> Self {
            Self(std::cell::UnsafeCell::new(data))
        }

        /// Shared access; see `loom::cell::UnsafeCell::with`.
        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Exclusive access; see `loom::cell::UnsafeCell::with_mut`.
        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

#[cfg(not(feature = "loom-check"))]
pub(crate) use cell::UnsafeCell;
