//! Merging LTC tables — the "global solution" extension.
//!
//! Use case 3 of the paper (§I-A) closes with: *"If persistent flows all
//! over the data center can be efficiently identified, we can make a global
//! solution to schedule the persistent flows."* That requires combining
//! per-switch LTC tables into one view. The paper leaves this as motivation;
//! we provide the natural merge:
//!
//! Two tables with the **same configuration** (same `w`, `d`, weights and
//! hash seed — so every item maps to the same bucket in both) merge bucket
//! by bucket:
//!
//! 1. items present in both tables add their counters (`f = f_a + f_b`,
//!    `p = p_a + p_b`, each saturating) — each side observed a disjoint
//!    sub-stream, so degrees add;
//! 2. items present in only one table are re-inserted into the merged
//!    bucket; when the bucket overflows, the smallest-significance cells are
//!    dropped — exactly the information a single LTC of the same size would
//!    also have sacrificed.
//!
//! The merge is an *estimate-combining* operation: like Space-Saving merges
//! (Agarwal et al.'s mergeable summaries), the result may differ from the
//! table a single LTC would have built over the concatenated stream, but
//! top-k candidates survive whenever their combined significance ranks them
//! inside their bucket's top `d`.

use crate::cell::Cell;
use crate::table::Ltc;

/// Error returned when two tables cannot be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot merge LTC tables: {}", self.reason)
    }
}

impl std::error::Error for MergeError {}

impl Ltc {
    /// Merge `other` into `self` (see the module docs). Both tables should
    /// be finalized (flags harvested) first; pending flags in `other` are
    /// ignored.
    ///
    /// # Errors
    /// Fails if the configurations differ in shape, weights, or hash seed.
    pub fn merge_from(&mut self, other: &Ltc) -> Result<(), MergeError> {
        let (a, b) = (self.config(), other.config());
        if a.buckets != b.buckets || a.cells_per_bucket != b.cells_per_bucket {
            return Err(MergeError {
                reason: format!(
                    "shape mismatch: {}x{} vs {}x{}",
                    a.buckets, a.cells_per_bucket, b.buckets, b.cells_per_bucket
                ),
            });
        }
        if a.weights != b.weights {
            return Err(MergeError {
                reason: "weights mismatch".into(),
            });
        }
        if a.seed != b.seed {
            return Err(MergeError {
                reason: "hash seed mismatch (items would map to different buckets)".into(),
            });
        }
        let d = a.cells_per_bucket;
        let weights = a.weights;

        for bucket in 0..a.buckets {
            let base = bucket.saturating_mul(d);
            // Combine both sides' occupied cells, summing duplicates.
            let mut combined: Vec<Cell> = Vec::with_capacity(d.saturating_mul(2));
            combined.extend(self.bucket_cells(base, d).filter(|c| c.occupied()));
            for c in other.bucket_cells(base, d).filter(|c| c.occupied()) {
                if let Some(existing) = combined.iter_mut().find(|e| e.id == c.id) {
                    existing.freq = existing.freq.saturating_add(c.freq);
                    existing.persist = existing.persist.saturating_add(c.persist);
                } else {
                    combined.push(c);
                }
            }
            // Keep the top-d by significance.
            combined.sort_by(|x, y| {
                y.significance(&weights)
                    .partial_cmp(&x.significance(&weights))
                    .expect("significance is never NaN")
            });
            combined.truncate(d);
            self.replace_bucket(base, d, &combined);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LtcConfig, Variant};
    use ltc_common::{SignificanceQuery, Weights};

    fn table(seed: u64) -> Ltc {
        Ltc::new(
            LtcConfig::builder()
                .buckets(32)
                .cells_per_bucket(4)
                .weights(Weights::BALANCED)
                .records_per_period(100)
                .variant(Variant::FULL)
                .seed(seed)
                .build(),
        )
    }

    fn feed(ltc: &mut Ltc, items: &[(u64, usize)]) {
        for &(id, n) in items {
            for _ in 0..n {
                ltc.insert(id);
            }
        }
        ltc.end_period();
        ltc.finalize();
    }

    #[test]
    fn merge_sums_shared_items() {
        let mut a = table(1);
        let mut b = table(1);
        feed(&mut a, &[(7, 10)]);
        feed(&mut b, &[(7, 5)]);
        a.merge_from(&b).unwrap();
        assert_eq!(a.frequency_of(7), Some(15));
        assert_eq!(a.persistency_of(7), Some(2), "one period on each switch");
    }

    #[test]
    fn merge_keeps_disjoint_items() {
        let mut a = table(1);
        let mut b = table(1);
        feed(&mut a, &[(1, 8)]);
        feed(&mut b, &[(2, 6)]);
        a.merge_from(&b).unwrap();
        assert_eq!(a.frequency_of(1), Some(8));
        assert_eq!(a.frequency_of(2), Some(6));
    }

    #[test]
    fn merged_top_k_ranks_globally() {
        // Item 9 is modest on each switch but big globally.
        let mut a = table(3);
        let mut b = table(3);
        feed(&mut a, &[(9, 30), (1, 40)]);
        feed(&mut b, &[(9, 30), (2, 40)]);
        a.merge_from(&b).unwrap();
        let top = a.top_k(1);
        assert_eq!(top[0].id, 9, "global heavy hitter wins after merge");
    }

    #[test]
    fn overflow_drops_smallest() {
        // One bucket of 1 cell: the merged winner is the more significant.
        let cfg = LtcConfig::builder()
            .buckets(1)
            .cells_per_bucket(1)
            .weights(Weights::FREQUENT)
            .records_per_period(100)
            .seed(5)
            .build();
        let mut a = Ltc::new(cfg);
        let mut b = Ltc::new(cfg);
        for _ in 0..3 {
            a.insert(1);
        }
        for _ in 0..9 {
            b.insert(2);
        }
        a.merge_from(&b).unwrap();
        assert!(!a.contains(1));
        assert_eq!(a.frequency_of(2), Some(9));
    }

    #[test]
    fn mismatched_configs_rejected() {
        let mut a = table(1);
        let b = table(2); // different seed
        assert!(a.merge_from(&b).is_err());
        let c = Ltc::new(
            LtcConfig::builder()
                .buckets(16)
                .cells_per_bucket(4)
                .seed(1)
                .build(),
        );
        assert!(a.merge_from(&c).is_err(), "shape mismatch");
    }

    #[test]
    fn merge_is_usable_after() {
        // The merged table keeps accepting stream records.
        let mut a = table(1);
        let mut b = table(1);
        feed(&mut a, &[(1, 5)]);
        feed(&mut b, &[(1, 5)]);
        a.merge_from(&b).unwrap();
        for _ in 0..5 {
            a.insert(1);
        }
        assert_eq!(a.frequency_of(1), Some(15));
    }
}
