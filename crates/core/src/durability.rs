//! Background durability: a supervised service thread that checkpoints a
//! [`ParallelLtc`] to disk off the hot path.
//!
//! The ingest path never touches disk. A [`DurabilityService`] owns clones
//! of the runtime's shard handles (`Arc<Mutex<Ltc>>` — identity survives a
//! checkpoint restore) and, on its own thread, periodically publishes
//! checkpoint frames through a [`Checkpointer`]:
//!
//! * the first frame — and every *compaction* — is a **full** frame
//!   ([`ParallelLtc::save_full_checkpoint`] semantics): each shard's
//!   complete snapshot, which also opens a fresh dirty epoch per shard;
//! * frames in between are **delta** frames carrying only the buckets
//!   dirtied since the chain's base full frame, linked to it by the
//!   `DLTA` chain header's base CRC (see [`crate::checkpoint`]).
//!
//! Snapshots are taken under each shard's lock — a brief pause per shard,
//! not a pipeline drain. Records still in flight through the SPSC queues
//! at snapshot time are simply not acknowledged into that frame; they land
//! in the next one. That is the same at-most-once-per-epoch semantic the
//! worker-supervision layer already documents.
//!
//! ## Fault handling
//!
//! A failed save (fsync error, rename error, disk full — or an injected
//! failpoint) is retried under the service's [`FaultPolicy`]: up to
//! `max_restarts` retries with the same exponential backoff the worker
//! supervisor uses. A failed **full** save clears the chain — the dirty
//! epochs were already opened, so the service must not fall back to delta
//! frames until a full frame lands (a full frame never depends on dirty
//! state, so nothing is lost by retrying). Once the budget is exhausted
//! the [`OnFault`] policy decides: `Degrade` skips the tick and tries
//! again at the next one (durability lags, ingest is unaffected);
//! `Stop` shuts the service down and flags it in
//! [`DurabilityStatus::stopped_on_fault`].
//!
//! ## Prune safety
//!
//! A delta frame is useless without its base, so the service clamps the
//! [`Checkpointer`]'s keep limit to at least `max_chain_len + 2`
//! generations: the live chain (base + deltas) plus the previous chain's
//! base always survive pruning, and restore can always fall back a full
//! generation chain.
//!
//! ## Deterministic checkpoints
//!
//! [`DurabilityService::checkpoint_now`] queues an explicit checkpoint and
//! blocks until the service publishes it, returning the generation. Tests
//! (and operators wanting a barrier) quiesce the stream, call it, and know
//! exactly which records the frame covers.

use crate::checkpoint::{
    save_delta_over, save_full_over, CheckpointError, Checkpointer, DeltaChain,
};
use crate::config::FaultPolicy;
use crate::obs::trace::{names, TraceTrack};
use crate::obs::RuntimeObs;
use crate::pipeline::ParallelLtc;
use crate::table::Ltc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What the service does once a save has exhausted its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnFault {
    /// Skip the failed tick and try again at the next interval. Ingest is
    /// unaffected; durability lags until a save succeeds. Failures are
    /// counted in [`DurabilityStatus::failed_saves`].
    #[default]
    Degrade,
    /// Shut the service down. [`DurabilityStatus::stopped_on_fault`] is
    /// set and any blocked [`DurabilityService::checkpoint_now`] callers
    /// receive the error.
    Stop,
}

/// Knobs for the background durability service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Time between automatic checkpoint ticks. Explicit
    /// [`DurabilityService::checkpoint_now`] requests are served
    /// immediately regardless.
    pub interval: Duration,
    /// Delta frames between full frames: after this many deltas the next
    /// frame is a compaction (a fresh full frame). `0` makes every frame
    /// full.
    pub full_every: u32,
    /// Hard cap on chain length: a chain that reaches this many deltas is
    /// compacted at the next tick even if `full_every` hasn't elapsed
    /// (they differ when failed saves stretch a chain). Also sets the
    /// prune clamp — see the module docs.
    pub max_chain_len: u32,
    /// Retry budget and backoff for failed saves (reuses the worker
    /// supervisor's policy type).
    pub faults: FaultPolicy,
    /// Behaviour once the retry budget is exhausted.
    pub on_fault: OnFault,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(200),
            full_every: 8,
            max_chain_len: 16,
            faults: FaultPolicy::default(),
            on_fault: OnFault::Degrade,
        }
    }
}

/// A snapshot of the service's counters, via
/// [`DurabilityService::status`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// Full frames published (initial fulls and compactions).
    pub full_saves: u64,
    /// Delta frames published.
    pub delta_saves: u64,
    /// Full frames that were compactions (a chain existed before them).
    pub compactions: u64,
    /// Individual save attempts that failed (each retry counts).
    pub failed_saves: u64,
    /// Length of the live delta chain (0 right after a full frame).
    pub chain_length: u32,
    /// Newest generation the service published.
    pub last_generation: Option<u64>,
    /// The service stopped because [`OnFault::Stop`] fired.
    pub stopped_on_fault: bool,
}

/// Cross-thread control block: explicit-checkpoint tickets and shutdown.
#[derive(Default)]
struct Control {
    stop: bool,
    /// Explicit checkpoint tickets issued ([`DurabilityService::checkpoint_now`]).
    tickets: u64,
    /// Explicit tickets the worker has served.
    served: u64,
    /// Result of the most recent explicitly-requested save.
    last: Option<Result<u64, CheckpointError>>,
}

/// The background durability service. Construct with
/// [`DurabilityService::attach`]; dropped or [`stop`](Self::stop)ped, it
/// signals its thread and joins it.
pub struct DurabilityService {
    control: Arc<(Mutex<Control>, Condvar)>,
    status: Arc<Mutex<DurabilityStatus>>,
    store: Arc<Checkpointer>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl DurabilityService {
    /// Attach a durability service to `runtime`, publishing through
    /// `store` (its keep limit is clamped to `max_chain_len + 2` — see the
    /// module docs). The service holds shard handles, not the runtime:
    /// `runtime` stays fully usable (including a later
    /// [`ParallelLtc::restore_from`], after stopping the service).
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the service thread cannot be spawned.
    pub fn attach(
        runtime: &ParallelLtc,
        store: Checkpointer,
        policy: DurabilityPolicy,
    ) -> Result<Self, CheckpointError> {
        let min_keep = (policy.max_chain_len as usize).saturating_add(2);
        let store = if store.keep_limit() < min_keep {
            store.keep_generations(min_keep)
        } else {
            store
        };
        let store = Arc::new(store);
        let shards: Vec<Arc<Mutex<Ltc>>> = runtime.shard_tables().to_vec();
        let obs = runtime.obs().cloned();
        let trace = obs
            .as_ref()
            .and_then(|o| o.tracer())
            .map(|t| t.register(names::TRACK_DURABILITY));
        let control = Arc::new((Mutex::new(Control::default()), Condvar::new()));
        let status = Arc::new(Mutex::new(DurabilityStatus::default()));
        let worker = Worker {
            shards,
            obs,
            trace,
            store: Arc::clone(&store),
            policy,
            control: Arc::clone(&control),
            status: Arc::clone(&status),
            chain: None,
            deltas_since_full: 0,
        };
        let handle = std::thread::Builder::new()
            .name("ltc-durability".to_string())
            .spawn(move || worker.run())
            .map_err(|e| CheckpointError::Io(e.to_string()))?;
        Ok(Self {
            control,
            status,
            store,
            handle: Some(handle),
        })
    }

    /// Queue an explicit checkpoint and block until the service publishes
    /// it; returns the generation written. Call after quiescing the
    /// stream (e.g. [`ParallelLtc::sync`]) for a frame that covers an
    /// exact record prefix.
    ///
    /// # Errors
    /// The save's error if its retry budget is exhausted, or
    /// [`CheckpointError::Io`] if the service has stopped.
    pub fn checkpoint_now(&self) -> Result<u64, CheckpointError> {
        let (lock, cvar) = &*self.control;
        let mut guard = match lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.stop {
            return Err(CheckpointError::Io("durability service stopped".into()));
        }
        guard.tickets = guard.tickets.saturating_add(1);
        let ticket = guard.tickets;
        cvar.notify_all();
        while guard.served < ticket {
            if guard.stop {
                // The worker acks outstanding tickets on shutdown; if we
                // raced past that, surface the stop instead of hanging.
                return guard.last.clone().unwrap_or(Err(CheckpointError::Io(
                    "durability service stopped".into(),
                )));
            }
            guard = match cvar.wait(guard) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        guard
            .last
            .clone()
            .unwrap_or(Err(CheckpointError::NoCheckpoint))
    }

    /// A snapshot of the service's counters.
    pub fn status(&self) -> DurabilityStatus {
        match self.status.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The store the service publishes through (keep-limit clamp applied).
    pub fn store(&self) -> &Checkpointer {
        &self.store
    }

    /// Signal the service to stop and join its thread. Idempotent; also
    /// runs on drop. Blocked [`Self::checkpoint_now`] callers are released
    /// with an error.
    pub fn stop(&mut self) {
        {
            let (lock, cvar) = &*self.control;
            let mut guard = match lock.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.stop = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DurabilityService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// State owned by the service thread.
struct Worker {
    shards: Vec<Arc<Mutex<Ltc>>>,
    obs: Option<Arc<RuntimeObs>>,
    /// Span track for the durability thread; saves are root spans (this
    /// thread runs off the batch path, so there is no batch to parent to).
    trace: Option<TraceTrack>,
    store: Arc<Checkpointer>,
    policy: DurabilityPolicy,
    control: Arc<(Mutex<Control>, Condvar)>,
    status: Arc<Mutex<DurabilityStatus>>,
    /// Live delta chain; `None` until a full frame lands (and again after
    /// a failed full save — see the module docs).
    chain: Option<DeltaChain>,
    /// Delta frames published since the last full frame.
    deltas_since_full: u32,
}

/// Why the wait loop woke up.
enum Wake {
    /// The interval elapsed: one automatic save.
    Tick,
    /// An explicit ticket is pending: serve it and publish the result.
    Explicit,
    /// Shutdown requested.
    Stop,
}

impl Worker {
    fn run(mut self) {
        loop {
            match self.wait() {
                Wake::Stop => break,
                Wake::Tick => {
                    let _ = self.save_once();
                    if self.stopped_on_fault() {
                        break;
                    }
                }
                Wake::Explicit => {
                    let result = self.save_once();
                    let (lock, cvar) = &*self.control;
                    let mut guard = match lock.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.served = guard.served.saturating_add(1);
                    guard.last = Some(result);
                    cvar.notify_all();
                    if self.stopped_on_fault() {
                        break;
                    }
                }
            }
        }
        // Release anyone still blocked in checkpoint_now.
        let (lock, cvar) = &*self.control;
        let mut guard = match lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.stop = true;
        guard.served = guard.tickets;
        if guard.last.is_none() {
            guard.last = Some(Err(CheckpointError::Io(
                "durability service stopped".into(),
            )));
        }
        cvar.notify_all();
    }

    /// Block until the next tick, an explicit ticket, or shutdown.
    fn wait(&self) -> Wake {
        let (lock, cvar) = &*self.control;
        let mut guard = match lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            if guard.stop {
                return Wake::Stop;
            }
            if guard.tickets > guard.served {
                return Wake::Explicit;
            }
            let (next, timeout) = match cvar.wait_timeout(guard, self.policy.interval) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let (next, timeout) = poisoned.into_inner();
                    (next, timeout)
                }
            };
            guard = next;
            if timeout.timed_out() {
                // Re-check flags before acting on the tick.
                if guard.stop {
                    return Wake::Stop;
                }
                if guard.tickets > guard.served {
                    return Wake::Explicit;
                }
                return Wake::Tick;
            }
        }
    }

    /// One logical save — full or delta per the cadence — with the fault
    /// policy's retry budget around it.
    fn save_once(&mut self) -> Result<u64, CheckpointError> {
        let mut attempt = 0u32;
        loop {
            let result = self.try_save();
            match result {
                Ok(generation) => {
                    self.with_status(|s| s.last_generation = Some(generation));
                    return Ok(generation);
                }
                Err(error) => {
                    self.with_status(|s| s.failed_saves = s.failed_saves.saturating_add(1));
                    attempt = attempt.saturating_add(1);
                    if attempt > self.policy.faults.max_restarts {
                        if self.policy.on_fault == OnFault::Stop {
                            self.with_status(|s| s.stopped_on_fault = true);
                        }
                        return Err(error);
                    }
                    let backoff = self.policy.faults.backoff_for(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    /// One save attempt. Full when there is no live chain or the cadence
    /// says so; delta otherwise. A failed full save drops the chain so no
    /// delta is attempted until a full frame lands.
    fn try_save(&mut self) -> Result<u64, CheckpointError> {
        let compact = self.chain.as_ref().is_some_and(|chain| {
            self.deltas_since_full >= self.policy.full_every
                || chain.length >= self.policy.max_chain_len
        });
        match self.chain {
            Some(ref mut chain) if !compact => {
                let _span = self.trace.as_ref().map(|t| t.span(names::DELTA_SAVE, None));
                let generation =
                    save_delta_over(&self.shards, self.obs.as_deref(), &self.store, chain)?;
                self.deltas_since_full = self.deltas_since_full.saturating_add(1);
                let length = chain.length;
                self.with_status(|s| {
                    s.delta_saves = s.delta_saves.saturating_add(1);
                    s.chain_length = length;
                });
                Ok(generation)
            }
            _ => {
                let site = if compact {
                    "checkpoint::compact"
                } else {
                    "checkpoint::write"
                };
                let span_name = if compact {
                    names::COMPACTION
                } else {
                    names::CHECKPOINT_SAVE
                };
                let _span = self.trace.as_ref().map(|t| t.span(span_name, None));
                let result = save_full_over(
                    &self.shards,
                    self.obs.as_deref(),
                    &self.store,
                    site,
                    compact,
                );
                match result {
                    Ok(chain) => {
                        let generation = chain.base_generation;
                        self.chain = Some(chain);
                        self.deltas_since_full = 0;
                        self.with_status(|s| {
                            s.full_saves = s.full_saves.saturating_add(1);
                            if compact {
                                s.compactions = s.compactions.saturating_add(1);
                            }
                            s.chain_length = 0;
                        });
                        Ok(generation)
                    }
                    Err(error) => {
                        self.chain = None;
                        Err(error)
                    }
                }
            }
        }
    }

    fn stopped_on_fault(&self) -> bool {
        match self.status.lock() {
            Ok(guard) => guard.stopped_on_fault,
            Err(poisoned) => poisoned.into_inner().stopped_on_fault,
        }
    }

    fn with_status(&self, f: impl FnOnce(&mut DurabilityStatus)) {
        let mut guard = match self.status.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LtcConfig;
    use ltc_common::Weights;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("ltc-dur-{}-{}-{}", std::process::id(), tag, n));
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn config() -> LtcConfig {
        LtcConfig::builder()
            .buckets(16)
            .cells_per_bucket(4)
            .weights(Weights::BALANCED)
            .records_per_period(50)
            .seed(11)
            .build()
    }

    /// A policy that never ticks on its own: every save is an explicit
    /// `checkpoint_now`, so tests are deterministic.
    fn manual_policy() -> DurabilityPolicy {
        DurabilityPolicy {
            interval: Duration::from_secs(3_600),
            faults: FaultPolicy::no_backoff(),
            ..DurabilityPolicy::default()
        }
    }

    #[test]
    fn explicit_checkpoints_follow_the_cadence() {
        let scratch = ScratchDir::new("cadence");
        let runtime = ParallelLtc::with_batch_size(config(), 2, 8);
        let policy = DurabilityPolicy {
            full_every: 2,
            ..manual_policy()
        };
        let service =
            DurabilityService::attach(&runtime, Checkpointer::new(scratch.path()).unwrap(), policy)
                .unwrap();
        // full, delta, delta, compaction(full), delta
        for _ in 0..5 {
            service.checkpoint_now().unwrap();
        }
        let status = service.status();
        assert_eq!(status.full_saves, 2);
        assert_eq!(status.delta_saves, 3);
        assert_eq!(status.compactions, 1);
        assert_eq!(status.failed_saves, 0);
        assert_eq!(status.last_generation, Some(5));
        assert_eq!(status.chain_length, 1, "one delta after the compaction");
    }

    #[test]
    fn background_checkpoints_restore_the_acknowledged_stream() {
        let scratch = ScratchDir::new("restore");
        let mut runtime = ParallelLtc::with_batch_size(config(), 2, 8);
        for i in 0..400u64 {
            runtime.insert(i % 30);
        }
        runtime.end_period().unwrap();
        runtime.sync().unwrap();
        let service = DurabilityService::attach(
            &runtime,
            Checkpointer::new(scratch.path()).unwrap(),
            manual_policy(),
        )
        .unwrap();
        service.checkpoint_now().unwrap();
        for i in 0..100u64 {
            runtime.insert(if i % 2 == 0 { 7 } else { 19 });
        }
        runtime.sync().unwrap();
        let generation = service.checkpoint_now().unwrap();
        assert_eq!(generation, 2);
        let expected = runtime.to_checkpoint();
        drop(service);
        runtime.finish().unwrap();
        let mut recovered = ParallelLtc::with_batch_size(config(), 2, 8);
        let store = Checkpointer::new(scratch.path()).unwrap();
        assert_eq!(recovered.restore_from(&store).unwrap(), 2);
        assert_eq!(recovered.to_checkpoint(), expected);
        recovered.finish().unwrap();
    }

    #[test]
    fn keep_limit_is_clamped_for_chain_safety() {
        let scratch = ScratchDir::new("clamp");
        let runtime = ParallelLtc::with_batch_size(config(), 2, 8);
        let policy = DurabilityPolicy {
            max_chain_len: 6,
            ..manual_policy()
        };
        let store = Checkpointer::new(scratch.path()).unwrap(); // default keep = 3
        let service = DurabilityService::attach(&runtime, store, policy).unwrap();
        assert_eq!(service.store().keep_limit(), 8, "max_chain_len + 2");
    }

    #[test]
    fn stopped_service_rejects_checkpoint_requests() {
        let scratch = ScratchDir::new("stopped");
        let runtime = ParallelLtc::with_batch_size(config(), 2, 8);
        let mut service = DurabilityService::attach(
            &runtime,
            Checkpointer::new(scratch.path()).unwrap(),
            manual_policy(),
        )
        .unwrap();
        service.checkpoint_now().unwrap();
        service.stop();
        service.stop(); // idempotent
        assert!(matches!(
            service.checkpoint_now(),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn timed_ticks_checkpoint_without_explicit_requests() {
        let scratch = ScratchDir::new("ticks");
        let mut runtime = ParallelLtc::with_batch_size(config(), 2, 8);
        for i in 0..200u64 {
            runtime.insert(i % 20);
        }
        runtime.sync().unwrap();
        let policy = DurabilityPolicy {
            interval: Duration::from_millis(5),
            faults: FaultPolicy::no_backoff(),
            ..DurabilityPolicy::default()
        };
        let service =
            DurabilityService::attach(&runtime, Checkpointer::new(scratch.path()).unwrap(), policy)
                .unwrap();
        // Wait for the timer (not an explicit request) to publish.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while service.status().last_generation.is_none() {
            assert!(
                std::time::Instant::now() < deadline,
                "timer tick never published a checkpoint"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(service);
        let store = Checkpointer::new(scratch.path()).unwrap();
        assert!(store.latest().unwrap().is_some());
        runtime.finish().unwrap();
    }
}
