//! A single LTC cell: `⟨ID, frequency, persistency⟩` plus CLOCK flags — and
//! the packed struct-of-arrays [`TableStore`] the table keeps them in.
//!
//! The paper's persistency field is "a counter to store the estimated
//! persistency and a flag bit" (two flag bits with the Deviation Eliminator).
//! The store takes that literally: each slot is two 64-bit words — the id,
//! and a *meta* word packing `⟨frequency, persistency, flags⟩` with the
//! flags in the persistency word's spare high bits — 16 bytes per cell,
//! exactly the paper's memory model
//! ([`ltc_common::memory::LTC_CELL_BYTES`]).
//!
//! Layout is bucket-tiled struct-of-arrays: bucket `b` owns one contiguous
//! tile of `2d` words — its `d` ids, then its `d` meta words — so every hot
//! scan (find-match over the id lane, find-empty and find-min over the meta
//! lane) is a straight pass over a contiguous slice that LLVM
//! autovectorizes, *and* a whole probe touches one `16·d`-byte region
//! (two cache lines at `d = 8`) instead of scattering across per-field
//! allocations. An earlier four-`Vec` pure-SoA cut of this layout measured
//! ~0.7× the array-of-structs reference at full scale precisely because
//! each probe paid up to four independent cache misses; the tile brings
//! that below the AoS reference's ~3 lines per probe.
//!
//! [`Cell`] remains the *value* type — the unit of snapshots, merges and
//! queries; [`TableStore::cell`] materialises one from the two words,
//! [`TableStore::set_cell`] packs one back.

use ltc_common::{ItemId, Weights};

/// Flag bit for even-numbered periods (also the only flag the basic,
/// non-Deviation-Eliminator variant uses).
pub const FLAG_EVEN: u8 = 0b01;
/// Flag bit for odd-numbered periods (Deviation Eliminator only).
pub const FLAG_ODD: u8 = 0b10;
/// Occupancy marker. The paper calls a cell empty iff "the ID field is NULL
/// and the significance equals 0"; since a freshly inserted item can
/// legitimately have significance 0 (e.g. α=0 and persistency still 0), we
/// track occupancy explicitly rather than overloading the id.
pub(crate) const FLAG_OCCUPIED: u8 = 0b100;

/// Persistency ceiling: the counter lives in the 29 bits of the packed meta
/// word below the three flag bits. Persistency grows by at most one per
/// period, so 2^29−1 periods is unreachable in practice; [`Cell`] saturates
/// at the same ceiling so the packed store and the array-of-structs
/// reference stay bit-exact.
pub const PERSIST_MAX: u32 = (1 << 29) - 1;

// --- packed meta word -------------------------------------------------------
//
// bits 0..32   frequency  (u32, saturating)
// bits 32..61  persistency (29 bits, saturating at PERSIST_MAX)
// bits 61..64  flags: EVEN (61), ODD (62), OCCUPIED (63)
//
// OCCUPIED deliberately sits in the sign bit: the SIMD scan reads occupancy
// of a whole meta vector with one `movemask`.

const META_FREQ_MASK: u64 = u32::MAX as u64;
const META_PERSIST_SHIFT: u32 = 32;
const META_PERSIST_MASK: u64 = (PERSIST_MAX as u64) << META_PERSIST_SHIFT;
const META_FLAG_SHIFT: u32 = 61;
/// Occupancy bit of a packed meta word (bit 63) — `pub(crate)` for the
/// `simd` module's movemask trick.
pub(crate) const META_OCCUPIED: u64 = (FLAG_OCCUPIED as u64) << META_FLAG_SHIFT;

/// The meta-word bit for the appearance flag of `parity` (0 = even).
#[inline]
fn meta_flag_bit(parity: u8) -> u64 {
    debug_assert!(parity < 2);
    (u64::from(FLAG_EVEN) << META_FLAG_SHIFT) << (parity & 1)
}

/// Pack `⟨freq, persist, flags⟩` into a meta word.
#[inline]
fn pack_meta(freq: u32, persist: u32, flags: u8) -> u64 {
    u64::from(freq)
        | (u64::from(persist.min(PERSIST_MAX)) << META_PERSIST_SHIFT)
        | (u64::from(flags & (FLAG_EVEN | FLAG_ODD | FLAG_OCCUPIED)) << META_FLAG_SHIFT)
}

#[inline]
fn meta_freq(meta: u64) -> u32 {
    (meta & META_FREQ_MASK) as u32
}

#[inline]
fn meta_persist(meta: u64) -> u32 {
    ((meta & META_PERSIST_MASK) >> META_PERSIST_SHIFT) as u32
}

#[inline]
fn meta_flags(meta: u64) -> u8 {
    (meta >> META_FLAG_SHIFT) as u8
}

/// Materialise a [`Cell`] value from a slot's two packed words — the view
/// the table's in-tile iterations use.
#[inline]
pub(crate) fn unpack(id: ItemId, meta: u64) -> Cell {
    Cell {
        id,
        freq: meta_freq(meta),
        persist: meta_persist(meta),
        flags: meta_flags(meta),
    }
}

/// One cell of the lossy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell {
    /// Stored item id (meaningless while unoccupied).
    pub id: ItemId,
    /// Estimated frequency `f̂`.
    pub freq: u32,
    /// Estimated persistency counter `p̂` (the harvested part; flags below
    /// hold the not-yet-harvested current/previous period bits). Saturates
    /// at [`PERSIST_MAX`].
    pub persist: u32,
    flags: u8,
}

impl Cell {
    /// An empty cell.
    pub const EMPTY: Cell = Cell {
        id: 0,
        freq: 0,
        persist: 0,
        flags: 0,
    };

    /// Whether the cell currently holds an item.
    #[inline]
    pub fn occupied(&self) -> bool {
        self.flags & FLAG_OCCUPIED != 0
    }

    /// Occupy the cell with `id`, starting from the given counters, clearing
    /// all period flags.
    #[inline]
    pub fn occupy(&mut self, id: ItemId, freq: u32, persist: u32) {
        self.id = id;
        self.freq = freq;
        self.persist = persist.min(PERSIST_MAX);
        self.flags = FLAG_OCCUPIED;
    }

    /// Expel the item: the cell becomes empty (paper: "the item is expelled
    /// and the cell is made empty").
    #[inline]
    pub fn clear(&mut self) {
        *self = Cell::EMPTY;
    }

    /// Raise the appearance flag for the given period parity (`0` = even,
    /// `1` = odd). The basic variant always passes parity 0.
    #[inline]
    pub fn set_flag(&mut self, parity: u8) {
        debug_assert!(parity < 2);
        self.flags |= FLAG_EVEN << parity;
    }

    /// Whether the appearance flag for `parity` is raised.
    #[inline]
    pub fn flag(&self, parity: u8) -> bool {
        debug_assert!(parity < 2);
        self.flags & (FLAG_EVEN << parity) != 0
    }

    /// CLOCK harvest: if the `parity` flag is raised, consume it and add one
    /// persistency (saturating at [`PERSIST_MAX`]). Returns whether a
    /// harvest happened.
    #[inline]
    pub fn harvest(&mut self, parity: u8) -> bool {
        let bit = FLAG_EVEN << parity;
        if self.flags & bit != 0 {
            self.flags &= !bit;
            self.persist = self.persist.saturating_add(1).min(PERSIST_MAX);
            true
        } else {
            false
        }
    }

    /// The cell's significance under `weights`. Unoccupied cells have
    /// significance 0 by definition.
    #[inline]
    pub fn significance(&self, weights: &Weights) -> f64 {
        if self.occupied() {
            weights.significance(u64::from(self.freq), u64::from(self.persist))
        } else {
            0.0
        }
    }

    /// Exact zero-significance test, avoiding float rounding: `α·f + β·p` is
    /// zero iff each term is zero.
    #[inline]
    pub fn significance_is_zero(&self, weights: &Weights) -> bool {
        (weights.alpha == 0.0 || self.freq == 0) && (weights.beta == 0.0 || self.persist == 0)
    }

    /// Raw flag byte (snapshot support).
    #[inline]
    pub(crate) fn raw_flags(&self) -> u8 {
        self.flags
    }

    /// Rebuild a cell from raw parts (snapshot support). Unknown flag bits
    /// are masked off, out-of-range persistency is clamped, and an
    /// unoccupied cell's id is zeroed (every production path already leaves
    /// empty cells with id 0 — [`Cell::clear`] resets the whole cell — and
    /// the find-match scan's id-only fast path relies on that invariant), so
    /// corrupt snapshots cannot create impossible states.
    #[inline]
    pub(crate) fn from_raw(id: ItemId, freq: u32, persist: u32, flags: u8) -> Self {
        let flags = flags & (FLAG_EVEN | FLAG_ODD | FLAG_OCCUPIED);
        Self {
            id: if flags & FLAG_OCCUPIED != 0 { id } else { 0 },
            freq,
            persist: persist.min(PERSIST_MAX),
            flags,
        }
    }

    /// Significance-Decrementing (paper §III-B1): decrement the persistency
    /// counter, then the frequency, each floored at 0 ("we can avoid such a
    /// case by keeping 0 if it is already 0"). The *caller* expels the cell
    /// if its significance is zero afterwards.
    #[inline]
    pub fn significance_decrement(&mut self) {
        self.persist = self.persist.saturating_sub(1);
        self.freq = self.freq.saturating_sub(1);
    }
}

// ---------------------------------------------------------------------------
// Packed, bucket-tiled struct-of-arrays storage.
// ---------------------------------------------------------------------------

/// Bucket-tiled cell storage: bucket `b` owns the contiguous word tile
/// `b·2d .. (b+1)·2d` — `d` id words followed by `d` packed meta words —
/// so one probe touches one `16·d`-byte region and every scan runs over a
/// contiguous lane slice.
///
/// Two addressings coexist: *slot* indices (`bucket·d + offset`, the order
/// snapshots and the CLOCK use) for the cold accessors, and
/// *(tile base, offset)* pairs for the hot per-bucket operations (no
/// division on the insert path). Out-of-range indices are ignored on writes
/// and report "empty" on reads — the table derives every index from its own
/// hash, so the tolerant behaviour only papers over unreachable states
/// without hiding real bugs (debug builds still assert).
///
/// Invariant: *an unoccupied slot's id word is 0* — established at
/// construction and preserved by every mutator ([`Self::clear_at`] and
/// [`Self::set_cell`] zero the id; occupation writes it fresh). The
/// find-match scan leans on this to decide nonzero probes from the id lane
/// alone (see [`scan_match`]).
///
/// Tiles are cache-line aligned: the allocation carries up to
/// [`TILE_ALIGN_PAD`] words of leading slack and `base` is chosen so tile 0
/// starts on a 64-byte boundary. Production tiles are whole multiples of a
/// line (64 B at `d = 4`, 128 B at `d = 8`, 256 B at `d = 16`), so with an
/// aligned origin *every* tile spans the minimum number of lines — an
/// unaligned `Vec` start would otherwise push each 128-byte `d = 8` tile
/// across three lines instead of two, an allocator-dependent lottery worth
/// a double-digit percentage of probe throughput once the table outgrows
/// L2. The global allocator never guarantees more than 16-byte alignment
/// for `u64` buffers, and the crate forbids `unsafe`, so instead of an
/// aligned allocation the store pads and offsets in safe code. `Clone`,
/// `PartialEq`, and `Debug` are manual for the same reason: a clone's
/// allocation lands at its own address (and must compute its own `base`),
/// and equality and debug output go by the live words so two logically
/// identical tables compare and print the same whatever their slack.
pub(crate) struct TableStore {
    buf: Vec<u64>,
    d: usize,
    /// Number of slots (the allocation is larger by the alignment slack).
    slots: usize,
    /// Word index of tile 0 inside `buf` (0..=[`TILE_ALIGN_PAD`]).
    base: usize,
    /// Per-bucket dirty stamps for delta snapshots: bucket `b` has changed
    /// since the last [`Self::begin_dirty_epoch`] iff `dirty[b] == epoch`.
    /// An epoch bump is the O(1) "clear all" — no per-bucket write on the
    /// snapshot path, and the single stamp store on the mutation path is
    /// plain (non-atomic) because the table is externally synchronised
    /// (each shard lives under its own mutex).
    dirty: Vec<u64>,
    /// Current dirty epoch (starts at 1 with every bucket stamped, so a
    /// fresh table's first delta is a full image).
    epoch: u64,
}

/// Cache-line size the tiles align to, in bytes.
const TILE_ALIGN_BYTES: usize = 64;
/// Leading slack words allocated to guarantee a 64-byte-aligned tile 0.
const TILE_ALIGN_PAD: usize = TILE_ALIGN_BYTES / std::mem::size_of::<u64>() - 1;

impl TableStore {
    /// `total` empty slots in buckets of `d` (`d` is clamped to ≥ 1;
    /// `total` must be a whole number of buckets).
    pub(crate) fn new(total: usize, d: usize) -> Self {
        let d = d.max(1);
        debug_assert_eq!(
            total.checked_rem(d),
            Some(0),
            "total slots must fill whole buckets"
        );
        let words = total.saturating_mul(2);
        let buf = vec![0; words.saturating_add(TILE_ALIGN_PAD)];
        let misalign = (buf.as_ptr() as usize) % TILE_ALIGN_BYTES;
        // `wrapping_sub` never wraps here (`misalign < TILE_ALIGN_BYTES`)
        // and the checked divisors are nonzero constants; the spelled-out
        // forms only state that no overflow or zero check is needed.
        let base = TILE_ALIGN_BYTES
            .wrapping_sub(misalign)
            .checked_rem(TILE_ALIGN_BYTES)
            .and_then(|b| b.checked_div(std::mem::size_of::<u64>()))
            .unwrap_or(0);
        let buckets = total.checked_div(d).unwrap_or(0);
        Self {
            buf,
            d,
            slots: total,
            base,
            // Every bucket starts dirty (stamp 1 == initial epoch): the
            // first delta after construction must carry the whole table.
            dirty: vec![1; buckets],
            epoch: 1,
        }
    }

    /// Number of slots.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.slots
    }

    /// The live word region (tile 0 through the last tile), skipping the
    /// alignment slack.
    #[inline]
    fn words(&self) -> &[u64] {
        let end = self.base.saturating_add(self.slots.saturating_mul(2));
        self.buf.get(self.base..end).unwrap_or(&[])
    }

    /// The word index of bucket `b`'s tile (its id lane; the meta lane
    /// starts `d` words later).
    #[inline]
    pub(crate) fn tile_base(&self, bucket: usize) -> usize {
        self.base
            .saturating_add(bucket.saturating_mul(self.d.saturating_mul(2)))
    }

    /// Stamp bucket `b` dirty in the current epoch. Out-of-range buckets
    /// are ignored (the callers derive `b` from their own hash/tile math).
    #[inline(always)]
    fn mark_dirty_bucket(&mut self, b: usize) {
        if let Some(w) = self.dirty.get_mut(b) {
            *w = self.epoch;
        }
    }

    /// Stamp the bucket whose tile starts at word index `tb` dirty. `D` is
    /// the monomorphised bucket width (0 = use the runtime `d`): for the
    /// production widths the division by `2·D` folds into a shift, so the
    /// per-record cost on the insert path is one compare and one store.
    #[inline(always)]
    pub(crate) fn mark_dirty_tile<const D: usize>(&mut self, tb: usize) {
        let width = if D == 0 { self.d } else { D };
        let bucket = tb
            .saturating_sub(self.base)
            .checked_div(width.saturating_mul(2).max(1))
            .unwrap_or(0);
        self.mark_dirty_bucket(bucket);
    }

    /// Open a new dirty epoch: every bucket is considered clean until its
    /// next mutation. O(1) — the old stamps are invalidated by bumping the
    /// epoch, not rewritten. Call under the same lock that guards the
    /// snapshot read so no mutation can slip between "read buckets" and
    /// "clear dirty".
    pub(crate) fn begin_dirty_epoch(&mut self) {
        // Saturating: if the counter ever pinned at u64::MAX (2^64 epochs),
        // every stamped bucket would simply stay dirty forever — the safe
        // direction (deltas over-report, never under-report).
        self.epoch = self.epoch.saturating_add(1);
    }

    /// Bucket indices dirtied since the last [`Self::begin_dirty_epoch`],
    /// in ascending order.
    pub(crate) fn dirty_buckets(&self) -> impl Iterator<Item = usize> + '_ {
        let epoch = self.epoch;
        self.dirty
            .iter()
            .enumerate()
            .filter_map(move |(b, &w)| (w == epoch).then_some(b))
    }

    /// Number of buckets dirtied since the last [`Self::begin_dirty_epoch`].
    pub(crate) fn dirty_bucket_count(&self) -> usize {
        self.dirty_buckets().count()
    }

    /// Slot `i` → (bucket, in-bucket offset). Production bucket widths are
    /// powers of two, so the hot split is a shift and a mask; the division
    /// only runs for odd widths (merge-era shapes, tests).
    #[inline]
    fn split_slot(&self, i: usize) -> (usize, usize) {
        if self.d.is_power_of_two() {
            (i >> self.d.trailing_zeros(), i & self.d.wrapping_sub(1))
        } else {
            // `d` is clamped ≥ 1 at construction; `checked_*` spells out
            // that the division needs no zero check without risking one.
            (
                i.checked_div(self.d).unwrap_or(0),
                i.checked_rem(self.d).unwrap_or(0),
            )
        }
    }

    /// Slot `i` → (id word index, meta word index).
    #[inline]
    fn indices(&self, i: usize) -> (usize, usize) {
        let (bucket, k) = self.split_slot(i);
        let tb = self.tile_base(bucket);
        (
            tb.saturating_add(k),
            tb.saturating_add(self.d).saturating_add(k),
        )
    }

    /// Materialise slot `i` as a [`Cell`] value.
    #[inline]
    pub(crate) fn cell(&self, i: usize) -> Cell {
        let (ii, mi) = self.indices(i);
        unpack(
            self.buf.get(ii).copied().unwrap_or(0),
            self.buf.get(mi).copied().unwrap_or(0),
        )
    }

    /// Pack a [`Cell`] value into slot `i`'s two words. An unoccupied
    /// cell's id word is written as 0, upholding the store invariant
    /// *unoccupied ⇒ id word is 0* that the find-match scan's id-only fast
    /// path depends on (see [`scan_match`]).
    #[inline]
    pub(crate) fn set_cell(&mut self, i: usize, cell: Cell) {
        let (bucket, _) = self.split_slot(i);
        self.mark_dirty_bucket(bucket);
        let (ii, mi) = self.indices(i);
        if let Some(w) = self.buf.get_mut(ii) {
            *w = if cell.occupied() { cell.id } else { 0 };
        }
        if let Some(w) = self.buf.get_mut(mi) {
            *w = pack_meta(cell.freq, cell.persist, cell.flags);
        }
    }

    /// Iterate every slot as a materialised [`Cell`], in slot order.
    pub(crate) fn iter_cells(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.len()).map(move |i| self.cell(i))
    }

    /// The id and meta lanes of the bucket tile at `tb` — everything any
    /// probe reads. Empty slices when out of range.
    #[inline]
    pub(crate) fn lanes(&self, tb: usize) -> (&[ItemId], &[u64]) {
        let mid = tb.saturating_add(self.d);
        let end = mid.saturating_add(self.d);
        (
            self.buf.get(tb..mid).unwrap_or(&[]),
            self.buf.get(mid..end).unwrap_or(&[]),
        )
    }

    /// The id and meta lanes of the bucket tile at `tb`, mutably — the hot
    /// path splits a tile once and probes *and* mutates through the same
    /// pair, instead of re-deriving word indices (and re-checking bounds)
    /// per mutation. Empty slices when out of range.
    #[inline]
    pub(crate) fn lanes_mut(&mut self, tb: usize) -> (&mut [ItemId], &mut [u64]) {
        let end = tb.saturating_add(self.d.saturating_mul(2));
        match self.buf.get_mut(tb..end) {
            Some(tile) => {
                let mid = self.d.min(tile.len());
                tile.split_at_mut(mid)
            }
            None => (&mut [], &mut []),
        }
    }

    /// Touch the first word of each lane of the bucket tile at `tb` — the
    /// prefetch for the batched insert path. Two demand loads start the
    /// tile's id-lane and meta-lane lines `prefetch_distance` records
    /// early. Both lanes are always needed (even a case-1 hit reads ids
    /// and writes its meta), and at `d ≥ 8` they sit on different cache
    /// lines, so touching only the id lane leaves the meta line's miss on
    /// the critical path once the table outgrows L2. Touching *every*
    /// line instead measured strictly slower: each `black_box` is an
    /// optimisation barrier, and the extra barriers cost more than the
    /// fetches hid.
    #[inline]
    pub(crate) fn prefetch_tile(&self, tb: usize) {
        // Copy the values, not the references: `black_box(&x)` only pins
        // the *address*, letting the optimiser drop the load itself.
        if let Some(&w) = self.buf.get(tb) {
            std::hint::black_box(w);
        }
        if let Some(&w) = self.buf.get(tb.saturating_add(self.d)) {
            std::hint::black_box(w);
        }
    }

    /// Whether slot `i` is occupied (test support; production paths read
    /// occupancy during their lane scans).
    #[cfg(test)]
    pub(crate) fn occupied(&self, i: usize) -> bool {
        let (_, mi) = self.indices(i);
        self.buf.get(mi).copied().unwrap_or(0) & META_OCCUPIED != 0
    }

    /// The meta word index of the tile at `tb`, offset `k` — shared by the
    /// hot mutators below.
    #[inline]
    fn meta_index(&self, tb: usize, k: usize) -> usize {
        tb.saturating_add(self.d).saturating_add(k)
    }

    /// Case 1: count a hit in the tile at `tb`, offset `k` — `freq += 1`
    /// (saturating) and raise the period flag, in one meta-word update.
    /// (Test support: the production hit path is [`Self::lane_record_hit`]
    /// on already-split lanes.)
    #[cfg(test)]
    pub(crate) fn record_hit_at(&mut self, tb: usize, k: usize, parity: u8) {
        let mi = self.meta_index(tb, k);
        if let Some(m) = self.buf.get_mut(mi) {
            debug_assert!(*m & META_OCCUPIED != 0, "hit on an unoccupied slot");
            // +1 stays inside the freq field because the increment is
            // withheld once the field saturates.
            let inc = u64::from(*m & META_FREQ_MASK != META_FREQ_MASK);
            *m = (*m).saturating_add(inc) | meta_flag_bit(parity);
        }
    }

    /// [`Self::record_hit_at`] on an already-split meta lane (see
    /// [`Self::lanes_mut`]): same single meta-word update, no re-indexing.
    #[inline(always)]
    pub(crate) fn lane_record_hit(metas: &mut [u64], k: usize, parity: u8) {
        if let Some(m) = metas.get_mut(k) {
            debug_assert!(*m & META_OCCUPIED != 0, "hit on an unoccupied slot");
            let inc = u64::from(*m & META_FREQ_MASK != META_FREQ_MASK);
            *m = (*m).saturating_add(inc) | meta_flag_bit(parity);
        }
    }

    /// Case-2 fill on already-split lanes: occupy `(k)` with `(id, 1, 0)`
    /// and raise the `parity` flag — one id-word and one meta-word write,
    /// bit-identical to [`Self::occupy_at`] + [`Self::set_flag_at`].
    #[inline(always)]
    pub(crate) fn lane_fill(
        ids: &mut [ItemId],
        metas: &mut [u64],
        k: usize,
        id: ItemId,
        parity: u8,
    ) {
        if let (Some(w), Some(m)) = (ids.get_mut(k), metas.get_mut(k)) {
            *w = id;
            *m = pack_meta(1, 0, FLAG_OCCUPIED) | meta_flag_bit(parity);
        }
    }

    /// Occupy the slot at `(tb, k)` with `id` and the given counters,
    /// clearing stale period flags (mirrors [`Cell::occupy`]).
    #[inline]
    pub(crate) fn occupy_at(&mut self, tb: usize, k: usize, id: ItemId, freq: u32, persist: u32) {
        let mi = self.meta_index(tb, k);
        if let Some(w) = self.buf.get_mut(tb.saturating_add(k)) {
            *w = id;
        }
        if let Some(m) = self.buf.get_mut(mi) {
            *m = pack_meta(freq, persist, FLAG_OCCUPIED);
        }
    }

    /// Expel the slot at `(tb, k)` (mirrors [`Cell::clear`]).
    #[inline]
    pub(crate) fn clear_at(&mut self, tb: usize, k: usize) {
        let mi = self.meta_index(tb, k);
        if let Some(w) = self.buf.get_mut(tb.saturating_add(k)) {
            *w = 0;
        }
        if let Some(m) = self.buf.get_mut(mi) {
            *m = 0;
        }
    }

    /// Raise the appearance flag for `parity` on the slot at `(tb, k)`.
    #[inline]
    pub(crate) fn set_flag_at(&mut self, tb: usize, k: usize, parity: u8) {
        let mi = self.meta_index(tb, k);
        if let Some(m) = self.buf.get_mut(mi) {
            *m |= meta_flag_bit(parity);
        }
    }

    /// Significance-Decrement the slot at `(tb, k)` (mirrors
    /// [`Cell::significance_decrement`]): each counter down by one, floored
    /// at zero, without borrowing across fields.
    #[inline]
    pub(crate) fn significance_decrement_at(&mut self, tb: usize, k: usize) {
        let mi = self.meta_index(tb, k);
        if let Some(m) = self.buf.get_mut(mi) {
            let p_dec = u64::from(*m & META_PERSIST_MASK != 0) << META_PERSIST_SHIFT;
            let f_dec = u64::from(*m & META_FREQ_MASK != 0);
            *m = (*m).saturating_sub(p_dec).saturating_sub(f_dec);
        }
    }

    /// Exact zero-significance test for the slot at `(tb, k)` (mirrors
    /// [`Cell::significance_is_zero`]).
    #[inline]
    pub(crate) fn significance_is_zero_at(&self, tb: usize, k: usize, weights: &Weights) -> bool {
        let meta = self.buf.get(self.meta_index(tb, k)).copied().unwrap_or(0);
        (weights.alpha == 0.0 || meta & META_FREQ_MASK == 0)
            && (weights.beta == 0.0 || meta & META_PERSIST_MASK == 0)
    }

    // Slot-addressed twins of the hot mutators (test support — production
    // paths address by tile to keep the division off the insert path).

    /// [`Self::occupy_at`] by slot index.
    #[cfg(test)]
    pub(crate) fn occupy(&mut self, i: usize, id: ItemId, freq: u32, persist: u32) {
        let tb = self.tile_base(i / self.d);
        self.occupy_at(tb, i % self.d, id, freq, persist);
    }

    /// [`Self::record_hit_at`] by slot index.
    #[cfg(test)]
    pub(crate) fn record_hit(&mut self, i: usize, parity: u8) {
        let tb = self.tile_base(i / self.d);
        self.record_hit_at(tb, i % self.d, parity);
    }

    /// [`Self::set_flag_at`] by slot index.
    #[cfg(test)]
    pub(crate) fn set_flag(&mut self, i: usize, parity: u8) {
        let tb = self.tile_base(i / self.d);
        self.set_flag_at(tb, i % self.d, parity);
    }

    /// [`Self::clear_at`] by slot index.
    #[cfg(test)]
    pub(crate) fn clear(&mut self, i: usize) {
        let tb = self.tile_base(i / self.d);
        self.clear_at(tb, i % self.d);
    }

    /// [`Self::significance_decrement_at`] by slot index.
    #[cfg(test)]
    pub(crate) fn significance_decrement(&mut self, i: usize) {
        let tb = self.tile_base(i / self.d);
        self.significance_decrement_at(tb, i % self.d);
    }

    /// [`Self::significance_is_zero_at`] by slot index.
    #[cfg(test)]
    pub(crate) fn significance_is_zero(&self, i: usize, weights: &Weights) -> bool {
        let tb = self.tile_base(i / self.d);
        self.significance_is_zero_at(tb, i % self.d, weights)
    }

    /// CLOCK harvest over the contiguous *slot* run `start..start+len`: for
    /// every slot whose `parity` flag is raised, consume the flag and add
    /// one persistency (saturating at [`PERSIST_MAX`]). Returns the number
    /// of harvests.
    ///
    /// A slot run maps to one meta-lane run per bucket tile it crosses;
    /// each per-tile pass is a branch-light loop over contiguous meta words
    /// (unoccupied slots carry no flags, so no occupancy test is needed)
    /// that LLVM autovectorizes.
    pub(crate) fn harvest_range(&mut self, start: usize, len: usize, parity: u8) -> u64 {
        let bit = meta_flag_bit(parity);
        let d = self.d;
        let end = start.saturating_add(len).min(self.len());
        let mut s = start.min(end);
        // Split the first slot once (shift/mask for production widths);
        // subsequent tiles continue at offset 0, so the loop itself is
        // division-free — the typical per-record call harvests one short
        // run and must not pay two 64-bit divides per tile.
        let (mut bucket, mut k) = self.split_slot(s);
        let mut harvested = 0u64;
        while s < end {
            // Under the loop invariants (`k < d`, `s < end`) both
            // subtractions are plain and `run ≥ 1`; the saturating forms +
            // `max(1)` keep that true — and the loop terminating — even if
            // an invariant were ever broken.
            let run = d.saturating_sub(k).min(end.saturating_sub(s)).max(1);
            let mb = self.meta_index(self.tile_base(bucket), k);
            let metas = self
                .buf
                .get_mut(mb..mb.saturating_add(run))
                .unwrap_or_default();
            let before = harvested;
            for m in metas {
                let hit = *m & bit != 0;
                *m &= !bit;
                let can_grow = hit && *m & META_PERSIST_MASK != META_PERSIST_MASK;
                *m = (*m).saturating_add(u64::from(can_grow) << META_PERSIST_SHIFT);
                harvested = harvested.saturating_add(u64::from(hit));
            }
            // A meta word changed in this tile iff a flag was consumed
            // (clearing the bit and growing persistency both require it),
            // so "harvests grew" is an exact dirty test for the bucket.
            if harvested != before {
                self.mark_dirty_bucket(bucket);
            }
            s = s.saturating_add(run);
            bucket = bucket.saturating_add(1);
            k = 0;
        }
        harvested
    }
}

impl Clone for TableStore {
    /// Fresh aligned allocation + word copy — the clone's buffer lands at
    /// its own address, so it must compute its own alignment `base` rather
    /// than inherit this one's.
    fn clone(&self) -> Self {
        let mut out = Self::new(self.slots, self.d);
        let end = out.base.saturating_add(out.slots.saturating_mul(2));
        if let Some(dst) = out.buf.get_mut(out.base..end) {
            dst.copy_from_slice(self.words());
        }
        // The clone inherits the dirty state too: a snapshot taken from a
        // worker's period-boundary copy must report the same delta set as
        // the original would have.
        out.dirty.copy_from_slice(&self.dirty);
        out.epoch = self.epoch;
        out
    }
}

/// Logical equality: same shape and same live words, alignment slack
/// excluded (two equal tables may carry different `base` offsets).
impl PartialEq for TableStore {
    fn eq(&self, other: &Self) -> bool {
        self.d == other.d && self.slots == other.slots && self.words() == other.words()
    }
}

impl Eq for TableStore {}

/// Logical debug output: live words only, so the representation (which
/// equivalence tests compare) is independent of the alignment slack.
impl std::fmt::Debug for TableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableStore")
            .field("d", &self.d)
            .field("slots", &self.slots)
            .field("words", &self.words())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Branch-light bucket scans over a tile's lanes.
// ---------------------------------------------------------------------------

/// Find-match: the lane offset of the occupied slot holding `id`, if any.
///
/// No early exit: the table invariant guarantees at most one *occupied*
/// slot per bucket holds a given id, so the whole scan is one branchless
/// mask build — compare the id lane, take the highest set bit ("last
/// occupied match wins"). For a nonzero probe the id lane alone decides
/// occupancy too: the store upholds *unoccupied ⇒ id word is 0* (zeroed at
/// construction, [`TableStore::clear_at`], [`TableStore::set_cell`], and
/// [`Cell::from_raw`]), so a nonzero id can only equal an occupied slot's
/// word — halving the scan's loads. A probe for id 0 takes the
/// occupancy-masked form, since empty slots also carry id word 0.
/// Dispatching on the bucket width first gives the common widths a
/// *compile-time* trip count, which LLVM flattens into straight-line
/// compares and a mask reduction instead of a generic loop with a scalar
/// epilogue. The `simd` feature's [`crate::simd`] module provides an
/// explicit-intrinsics variant with identical semantics and uses this as
/// its runtime fallback.
#[inline(always)]
pub(crate) fn scan_match(ids: &[ItemId], metas: &[u64], id: ItemId) -> Option<usize> {
    match (ids.len(), metas.len()) {
        (4, 4) => scan_match_fixed::<4>(ids, metas, id),
        (8, 8) => scan_match_fixed::<8>(ids, metas, id),
        (16, 16) => scan_match_fixed::<16>(ids, metas, id),
        _ => hit_of(match_mask(ids, metas, id)),
    }
}

#[inline(always)]
fn scan_match_fixed<const D: usize>(ids: &[ItemId], metas: &[u64], id: ItemId) -> Option<usize> {
    match (<&[ItemId; D]>::try_from(ids), <&[u64; D]>::try_from(metas)) {
        (Ok(ids), Ok(metas)) => hit_of(match_mask(ids.as_slice(), metas.as_slice(), id)),
        // Unreachable (the dispatcher checked both lengths), but falling
        // back beats panicking in a scan.
        _ => hit_of(match_mask(ids, metas, id)),
    }
}

/// Bit `k` set iff slot `k` is occupied and holds `id` (`k < 32`: bucket
/// widths are far below that).
#[inline(always)]
fn match_mask(ids: &[ItemId], metas: &[u64], id: ItemId) -> u32 {
    if id != 0 {
        // Id-only compare, sound by the store invariant (see [`scan_match`]).
        // Branchless on purpose: an early-exit `position()` scan measured
        // ~10 % slower end-to-end — the exit slot varies per record, so its
        // branch mispredicts, and 8 unrolled compares from one cache line
        // cost less than one mispredict.
        let mut mask = 0u32;
        for (k, &cid) in ids.iter().enumerate() {
            mask |= u32::from(cid == id) << (k as u32 & 31);
        }
        return mask;
    }
    // Probe id 0 collides with the empty-slot id word: mask with occupancy.
    let mut mask = 0u32;
    for (k, (&cid, &m)) in ids.iter().zip(metas).enumerate() {
        mask |= u32::from((cid == id) & (m & META_OCCUPIED != 0)) << (k as u32 & 31);
    }
    mask
}

/// Highest set bit of a match mask → "last occupied match wins" offset.
#[inline(always)]
fn hit_of(mask: u32) -> Option<usize> {
    (mask != 0).then(|| 31usize.saturating_sub(mask.leading_zeros() as usize))
}

/// Find-empty: the lane offset of the *first* unoccupied slot, if any —
/// the lowest set bit of the vacancy mask, same tie-break as the old
/// first-empty AoS scan, without a data-dependent exit. Same fixed-width
/// dispatch as [`scan_match`].
#[inline(always)]
pub(crate) fn scan_empty(metas: &[u64]) -> Option<usize> {
    match metas.len() {
        4 => scan_empty_fixed::<4>(metas),
        8 => scan_empty_fixed::<8>(metas),
        16 => scan_empty_fixed::<16>(metas),
        _ => empty_of(vacancy_mask(metas)),
    }
}

#[inline(always)]
fn scan_empty_fixed<const D: usize>(metas: &[u64]) -> Option<usize> {
    match <&[u64; D]>::try_from(metas) {
        Ok(metas) => empty_of(vacancy_mask(metas.as_slice())),
        _ => empty_of(vacancy_mask(metas)),
    }
}

/// Bit `k` set iff slot `k` is unoccupied.
#[inline(always)]
fn vacancy_mask(metas: &[u64]) -> u32 {
    let mut mask = 0u32;
    for (k, &m) in metas.iter().enumerate() {
        mask |= u32::from(m & META_OCCUPIED == 0) << (k as u32 & 31);
    }
    mask
}

/// Lowest set bit of a vacancy mask → first-empty offset.
#[inline(always)]
fn empty_of(mask: u32) -> Option<usize> {
    (mask != 0).then(|| mask.trailing_zeros() as usize)
}

/// Find-min-significance over a *full* bucket (every slot occupied — the
/// only state in which the caller consults the minimum): the lane offset of
/// the first slot attaining the minimal `α·f + β·p`, and that minimum.
/// Strict `<` keeps the first minimal slot, matching the AoS scan's
/// tie-break.
#[inline(always)]
pub(crate) fn scan_min(metas: &[u64], weights: &Weights) -> (usize, f64) {
    if metas.is_empty() {
        return (0, f64::INFINITY);
    }
    // Integer fast paths: for the canonical weightings, significance order
    // is the order of an integer key read straight off the meta word —
    // α = β = 1 orders by f + p (exact: f + p < 2³³ so every sum is a f64
    // integer), β = 0 by f, α = 0 by p (strictly monotone for normal
    // weights: consecutive products differ by α ≫ ulp(α·2³²) ≈ α·2⁻²⁰, so
    // rounding never collapses distinct fields — note α = β ≠ 1 does NOT
    // qualify, e.g. α = 0.1 maps (f=1, p=2) above (f=3, p=0)). The key map
    // preserves both order and ties, so the winning slot and first-minimal
    // tie-break are bit-identical to the float scan; only then is the
    // winner's significance materialised (equal to the float minimum by
    // definition).
    let min_k = if weights.alpha == 1.0 && weights.beta == 1.0 {
        argmin_key(metas, |m| {
            (m & META_FREQ_MASK).wrapping_add((m & META_PERSIST_MASK) >> META_PERSIST_SHIFT)
        })
    } else if weights.beta == 0.0 && weights.alpha.is_normal() && weights.alpha > 0.0 {
        argmin_key(metas, |m| m & META_FREQ_MASK)
    } else if weights.alpha == 0.0 && weights.beta.is_normal() && weights.beta > 0.0 {
        argmin_key(metas, |m| (m & META_PERSIST_MASK) >> META_PERSIST_SHIFT)
    } else {
        return match metas.len() {
            4 => scan_min_fixed::<4>(metas, weights),
            8 => scan_min_fixed::<8>(metas, weights),
            16 => scan_min_fixed::<16>(metas, weights),
            _ => scan_min_any(metas, weights),
        };
    };
    let m = metas.get(min_k).copied().unwrap_or(0);
    (
        min_k,
        weights.significance(u64::from(meta_freq(m)), u64::from(meta_persist(m))),
    )
}

/// First-minimal argmin over an integer key of each meta word, with the
/// same fixed-width dispatch as the other scans.
#[inline(always)]
fn argmin_key(metas: &[u64], key: impl Fn(u64) -> u64 + Copy) -> usize {
    match metas.len() {
        4 => argmin_key_fixed::<4>(metas, key),
        8 => argmin_key_fixed::<8>(metas, key),
        16 => argmin_key_fixed::<16>(metas, key),
        _ => argmin_key_any(metas, key),
    }
}

#[inline(always)]
fn argmin_key_fixed<const D: usize>(metas: &[u64], key: impl Fn(u64) -> u64 + Copy) -> usize {
    let Ok(metas) = <&[u64; D]>::try_from(metas) else {
        return argmin_key_any(metas, key);
    };
    let mut keys = [u64::MAX; D];
    for (slot, &m) in keys.iter_mut().zip(metas.iter()) {
        *slot = key(m);
    }
    let mut min = u64::MAX;
    for &x in &keys {
        min = min.min(x);
    }
    let mut min_k = 0usize;
    for (k, &x) in keys.iter().enumerate().rev() {
        if x == min {
            min_k = k;
        }
    }
    min_k
}

#[inline(always)]
fn argmin_key_any(metas: &[u64], key: impl Fn(u64) -> u64 + Copy) -> usize {
    let mut min_k = 0usize;
    let mut min_key = u64::MAX;
    for (k, &m) in metas.iter().enumerate() {
        let x = key(m);
        if x < min_key {
            min_key = x;
            min_k = k;
        }
    }
    min_k
}

/// Runtime-width argmin — the sequential `<` carries a loop dependence, so
/// this form stays scalar; the fixed-width form below restructures it into
/// vectorizable passes.
#[inline(always)]
fn scan_min_any(metas: &[u64], weights: &Weights) -> (usize, f64) {
    let mut min_k = 0usize;
    let mut min_sig = f64::INFINITY;
    for (k, &m) in metas.iter().enumerate() {
        let sig = weights.significance(u64::from(meta_freq(m)), u64::from(meta_persist(m)));
        if sig < min_sig {
            min_sig = sig;
            min_k = k;
        }
    }
    (min_k, min_sig)
}

/// Fixed-width argmin in three data-parallel passes: materialise every
/// slot's significance, fmin-reduce, then take the first slot attaining the
/// minimum — bit-identical to the strict-`<` scan (same values, same
/// first-minimal tie-break) but with no loop-carried select, so each pass
/// vectorizes.
#[inline(always)]
fn scan_min_fixed<const D: usize>(metas: &[u64], weights: &Weights) -> (usize, f64) {
    let Ok(metas) = <&[u64; D]>::try_from(metas) else {
        return scan_min_any(metas, weights);
    };
    let mut sigs = [f64::INFINITY; D];
    for (sig, &m) in sigs.iter_mut().zip(metas.iter()) {
        *sig = weights.significance(u64::from(meta_freq(m)), u64::from(meta_persist(m)));
    }
    let mut min_sig = f64::INFINITY;
    for &s in &sigs {
        min_sig = min_sig.min(s);
    }
    let mut min_k = 0usize;
    for (k, &s) in sigs.iter().enumerate().rev() {
        if s == min_sig {
            min_k = k;
        }
    }
    (min_k, min_sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cell_is_unoccupied_zero_significance() {
        let c = Cell::EMPTY;
        assert!(!c.occupied());
        assert_eq!(c.significance(&Weights::BALANCED), 0.0);
        assert!(c.significance_is_zero(&Weights::BALANCED));
    }

    #[test]
    fn occupy_sets_state_and_clears_flags() {
        let mut c = Cell::EMPTY;
        c.set_flag(0); // stray flag from a previous occupant must not leak
        c.occupy(42, 3, 1);
        assert!(c.occupied());
        assert_eq!((c.id, c.freq, c.persist), (42, 3, 1));
        assert!(!c.flag(0));
        assert!(!c.flag(1));
    }

    #[test]
    fn harvest_consumes_flag_once() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 1, 0);
        c.set_flag(1);
        assert!(c.harvest(1));
        assert_eq!(c.persist, 1);
        assert!(!c.harvest(1), "flag already consumed");
        assert_eq!(c.persist, 1);
    }

    #[test]
    fn harvest_checks_requested_parity_only() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 1, 0);
        c.set_flag(0);
        assert!(!c.harvest(1), "odd harvest must not see even flag");
        assert!(c.flag(0), "even flag untouched");
    }

    #[test]
    fn persistency_saturates_at_packed_ceiling() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 1, PERSIST_MAX);
        c.set_flag(0);
        assert!(c.harvest(0), "the harvest still consumes the flag");
        assert_eq!(c.persist, PERSIST_MAX, "…but the counter is pinned");
        // The packed store agrees bit for bit.
        let mut store = TableStore::new(2, 2);
        store.occupy(0, 1, 1, PERSIST_MAX);
        store.set_flag(0, 0);
        assert_eq!(store.harvest_range(0, 2, 0), 1);
        assert_eq!(store.cell(0), c);
        // Out-of-range restores clamp instead of corrupting neighbours.
        assert_eq!(Cell::from_raw(1, 1, u32::MAX, 0).persist, PERSIST_MAX);
    }

    #[test]
    fn decrement_floors_at_zero() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 2, 0);
        c.significance_decrement();
        assert_eq!((c.freq, c.persist), (1, 0));
        c.significance_decrement();
        assert_eq!((c.freq, c.persist), (0, 0));
        c.significance_decrement();
        assert_eq!((c.freq, c.persist), (0, 0), "never negative");
    }

    #[test]
    fn zero_significance_respects_weights() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 5, 0);
        assert!(!c.significance_is_zero(&Weights::FREQUENT));
        // With α=0 a cell with persistency 0 has significance 0 even at f=5.
        assert!(c.significance_is_zero(&Weights::PERSISTENT));
    }

    #[test]
    fn significance_matches_weights() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 10, 3);
        let w = Weights::new(2.0, 5.0);
        assert_eq!(c.significance(&w), 35.0);
    }

    #[test]
    fn store_cell_roundtrips_through_lanes() {
        // Two buckets of 4 so slot 5 crosses into the second tile.
        let mut store = TableStore::new(8, 4);
        let mut c = Cell::EMPTY;
        c.occupy(42, 3, 1);
        c.set_flag(1);
        store.set_cell(5, c);
        assert_eq!(store.cell(5), c);
        assert!(store.occupied(5));
        assert!(!store.occupied(4));
        let all: Vec<Cell> = store.iter_cells().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[5], c);
        assert_eq!(all[0], Cell::EMPTY);
        // The second tile's lanes see the same state the slot API wrote.
        let (ids, metas) = store.lanes(store.tile_base(1));
        assert_eq!(ids, [0, 42, 0, 0]);
        assert_eq!(scan_match(ids, metas, 42), Some(1));
    }

    #[test]
    fn store_mutators_mirror_cell_methods() {
        let mut store = TableStore::new(4, 2);
        let mut oracle = Cell::EMPTY;
        store.occupy(2, 9, 5, 1);
        oracle.occupy(9, 5, 1);
        assert_eq!(store.cell(2), oracle);
        store.record_hit(2, 1);
        oracle.freq = oracle.freq.saturating_add(1);
        oracle.set_flag(1);
        assert_eq!(store.cell(2), oracle);
        store.significance_decrement(2);
        oracle.significance_decrement();
        assert_eq!(store.cell(2), oracle);
        assert_eq!(
            store.significance_is_zero(2, &Weights::BALANCED),
            oracle.significance_is_zero(&Weights::BALANCED)
        );
        store.clear(2);
        oracle.clear();
        assert_eq!(store.cell(2), oracle);
    }

    #[test]
    fn record_hit_saturates_frequency_within_its_field() {
        let mut store = TableStore::new(2, 2);
        store.occupy(0, 7, u32::MAX, 3);
        store.record_hit(0, 0);
        let c = store.cell(0);
        assert_eq!(c.freq, u32::MAX, "no carry out of the freq field");
        assert_eq!(c.persist, 3, "persistency untouched");
        assert!(c.flag(0), "the flag is still raised");
    }

    #[test]
    fn store_harvest_range_matches_cell_harvest() {
        // Two buckets of 3: the harvest run crosses a tile boundary.
        let mut store = TableStore::new(6, 3);
        let mut oracle: Vec<Cell> = (0..6).map(|_| Cell::EMPTY).collect();
        for i in [0usize, 2, 3] {
            store.occupy(i, i as u64 + 1, 1, 0);
            oracle[i].occupy(i as u64 + 1, 1, 0);
            store.set_flag(i, 1);
            oracle[i].set_flag(1);
        }
        // Slot 3 also carries the even flag, which an odd harvest must keep.
        store.set_flag(3, 0);
        oracle[3].set_flag(0);
        let harvested = store.harvest_range(0, 6, 1);
        let want: u64 = oracle.iter_mut().map(|c| u64::from(c.harvest(1))).sum();
        assert_eq!(harvested, want);
        for (i, c) in oracle.iter().enumerate() {
            assert_eq!(store.cell(i), *c, "slot {i}");
        }
        assert_eq!(store.harvest_range(0, 6, 1), 0, "flags consumed");
    }

    #[test]
    fn scan_match_finds_occupied_id_only() {
        let mut store = TableStore::new(4, 4);
        store.occupy(1, 7, 1, 0);
        store.occupy(3, 9, 1, 0);
        let (ids, metas) = store.lanes(store.tile_base(0));
        assert_eq!(scan_match(ids, metas, 9), Some(3));
        assert_eq!(scan_match(ids, metas, 7), Some(1));
        // Slot 0 holds id 0 but is unoccupied: a probe for 0 must miss.
        assert_eq!(scan_match(ids, metas, 0), None);
        assert_eq!(scan_match(ids, metas, 12345), None);
    }

    #[test]
    fn scan_match_handles_item_id_zero() {
        // Item id 0 is a legitimate stream id whose word collides with the
        // empty-slot sentinel, so its probes take the occupancy-masked path.
        let mut store = TableStore::new(4, 4);
        store.occupy(2, 0, 1, 0);
        let (ids, metas) = store.lanes(store.tile_base(0));
        assert_eq!(scan_match(ids, metas, 0), Some(2));
        store.clear(2);
        let (ids, metas) = store.lanes(store.tile_base(0));
        assert_eq!(scan_match(ids, metas, 0), None);
    }

    #[test]
    fn unoccupied_cells_never_carry_an_id() {
        // The id-only find-match fast path is sound only because every way
        // an unoccupied cell can enter the store zeroes its id word.
        assert_eq!(Cell::from_raw(7, 1, 2, 0).id, 0, "corrupt snapshot cell");
        assert_eq!(Cell::from_raw(7, 1, 2, FLAG_OCCUPIED).id, 7);
        let mut store = TableStore::new(4, 4);
        let mut rogue = Cell::EMPTY;
        rogue.id = 9;
        store.set_cell(1, rogue);
        let (ids, metas) = store.lanes(store.tile_base(0));
        assert_eq!(ids[1], 0);
        assert_eq!(scan_match(ids, metas, 9), None);
        store.occupy(1, 9, 1, 0);
        store.clear(1);
        let (ids, _) = store.lanes(store.tile_base(0));
        assert_eq!(ids[1], 0, "clear must reset the id word");
    }

    #[test]
    fn scan_empty_returns_first_vacancy() {
        let mut store = TableStore::new(4, 4);
        store.occupy(0, 7, 1, 0);
        store.occupy(2, 9, 1, 0);
        let (_, metas) = store.lanes(store.tile_base(0));
        assert_eq!(scan_empty(metas), Some(1), "first of slots 1 and 3");
        let mut full = TableStore::new(2, 2);
        full.occupy(0, 1, 1, 0);
        full.occupy(1, 2, 1, 0);
        let (_, metas) = full.lanes(full.tile_base(0));
        assert_eq!(scan_empty(metas), None);
    }

    #[test]
    fn scan_min_keeps_first_minimal_slot() {
        let mut store = TableStore::new(4, 4);
        for (i, f) in [5u32, 2, 2, 9].into_iter().enumerate() {
            store.occupy(i, i as u64 + 1, f, 0);
        }
        let (_, metas) = store.lanes(store.tile_base(0));
        let (k, sig) = scan_min(metas, &Weights::FREQUENT);
        assert_eq!((k, sig), (1, 2.0), "ties break to the first slot");
    }

    #[test]
    fn fresh_store_is_fully_dirty_and_epoch_clears_it() {
        let mut store = TableStore::new(16, 4);
        assert_eq!(
            store.dirty_buckets().collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "a new table's first delta must cover everything"
        );
        store.begin_dirty_epoch();
        assert_eq!(store.dirty_bucket_count(), 0);
    }

    #[test]
    fn set_cell_and_tile_stamp_mark_only_their_bucket() {
        let mut store = TableStore::new(16, 4);
        store.begin_dirty_epoch();
        store.set_cell(5, Cell::from_raw(42, 1, 0, FLAG_OCCUPIED));
        assert_eq!(store.dirty_buckets().collect::<Vec<_>>(), vec![1]);
        store.begin_dirty_epoch();
        let tb = store.tile_base(3);
        store.mark_dirty_tile::<4>(tb);
        assert_eq!(store.dirty_buckets().collect::<Vec<_>>(), vec![3]);
        // The runtime-width (D = 0) form resolves the same bucket.
        store.begin_dirty_epoch();
        store.mark_dirty_tile::<0>(tb);
        assert_eq!(store.dirty_buckets().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn harvest_marks_exactly_the_buckets_with_consumed_flags() {
        let mut store = TableStore::new(16, 4);
        store.occupy(1, 7, 1, 0);
        store.occupy(9, 8, 1, 0);
        store.set_flag(1, 0); // bucket 0
        store.set_flag(9, 0); // bucket 2
        store.begin_dirty_epoch();
        let harvested = store.harvest_range(0, 16, 0);
        assert_eq!(harvested, 2);
        assert_eq!(
            store.dirty_buckets().collect::<Vec<_>>(),
            vec![0, 2],
            "flag-free buckets stay clean across a sweep"
        );
        store.begin_dirty_epoch();
        assert_eq!(store.harvest_range(0, 16, 0), 0, "flags consumed");
        assert_eq!(store.dirty_bucket_count(), 0, "no-op sweep dirties nothing");
    }

    #[test]
    fn clone_carries_the_dirty_state() {
        let mut store = TableStore::new(8, 4);
        store.begin_dirty_epoch();
        store.set_cell(6, Cell::from_raw(9, 2, 1, FLAG_OCCUPIED));
        let copy = store.clone();
        assert_eq!(copy.dirty_buckets().collect::<Vec<_>>(), vec![1]);
        assert_eq!(copy, store, "dirty state is not part of logical equality");
    }
}
