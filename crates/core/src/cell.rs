//! A single LTC cell: `⟨ID, frequency, persistency⟩` plus CLOCK flags.
//!
//! The paper's persistency field is "a counter to store the estimated
//! persistency and a flag bit" (two flag bits with the Deviation Eliminator).
//! We store the flags in a separate byte for clarity; the *memory-accounting*
//! model still charges the paper's 16 bytes per cell
//! ([`ltc_common::memory::LTC_CELL_BYTES`]) because the flags logically live
//! in two spare bits of the 32-bit persistency word.

use ltc_common::{ItemId, Weights};

/// Flag bit for even-numbered periods (also the only flag the basic,
/// non-Deviation-Eliminator variant uses).
pub const FLAG_EVEN: u8 = 0b01;
/// Flag bit for odd-numbered periods (Deviation Eliminator only).
pub const FLAG_ODD: u8 = 0b10;
/// Occupancy marker. The paper calls a cell empty iff "the ID field is NULL
/// and the significance equals 0"; since a freshly inserted item can
/// legitimately have significance 0 (e.g. α=0 and persistency still 0), we
/// track occupancy explicitly rather than overloading the id.
const FLAG_OCCUPIED: u8 = 0b100;

/// One cell of the lossy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell {
    /// Stored item id (meaningless while unoccupied).
    pub id: ItemId,
    /// Estimated frequency `f̂`.
    pub freq: u32,
    /// Estimated persistency counter `p̂` (the harvested part; flags below
    /// hold the not-yet-harvested current/previous period bits).
    pub persist: u32,
    flags: u8,
}

impl Cell {
    /// An empty cell.
    pub const EMPTY: Cell = Cell {
        id: 0,
        freq: 0,
        persist: 0,
        flags: 0,
    };

    /// Whether the cell currently holds an item.
    #[inline]
    pub fn occupied(&self) -> bool {
        self.flags & FLAG_OCCUPIED != 0
    }

    /// Occupy the cell with `id`, starting from the given counters, clearing
    /// all period flags.
    #[inline]
    pub fn occupy(&mut self, id: ItemId, freq: u32, persist: u32) {
        self.id = id;
        self.freq = freq;
        self.persist = persist;
        self.flags = FLAG_OCCUPIED;
    }

    /// Expel the item: the cell becomes empty (paper: "the item is expelled
    /// and the cell is made empty").
    #[inline]
    pub fn clear(&mut self) {
        *self = Cell::EMPTY;
    }

    /// Raise the appearance flag for the given period parity (`0` = even,
    /// `1` = odd). The basic variant always passes parity 0.
    #[inline]
    pub fn set_flag(&mut self, parity: u8) {
        debug_assert!(parity < 2);
        self.flags |= FLAG_EVEN << parity;
    }

    /// Whether the appearance flag for `parity` is raised.
    #[inline]
    pub fn flag(&self, parity: u8) -> bool {
        debug_assert!(parity < 2);
        self.flags & (FLAG_EVEN << parity) != 0
    }

    /// CLOCK harvest: if the `parity` flag is raised, consume it and add one
    /// persistency. Returns whether a harvest happened.
    #[inline]
    pub fn harvest(&mut self, parity: u8) -> bool {
        let bit = FLAG_EVEN << parity;
        if self.flags & bit != 0 {
            self.flags &= !bit;
            self.persist = self.persist.saturating_add(1);
            true
        } else {
            false
        }
    }

    /// The cell's significance under `weights`. Unoccupied cells have
    /// significance 0 by definition.
    #[inline]
    pub fn significance(&self, weights: &Weights) -> f64 {
        if self.occupied() {
            weights.significance(u64::from(self.freq), u64::from(self.persist))
        } else {
            0.0
        }
    }

    /// Exact zero-significance test, avoiding float rounding: `α·f + β·p` is
    /// zero iff each term is zero.
    #[inline]
    pub fn significance_is_zero(&self, weights: &Weights) -> bool {
        (weights.alpha == 0.0 || self.freq == 0) && (weights.beta == 0.0 || self.persist == 0)
    }

    /// Raw flag byte (snapshot support).
    #[inline]
    pub(crate) fn raw_flags(&self) -> u8 {
        self.flags
    }

    /// Rebuild a cell from raw parts (snapshot support). Unknown flag bits
    /// are masked off so corrupt snapshots cannot create impossible states.
    #[inline]
    pub(crate) fn from_raw(id: ItemId, freq: u32, persist: u32, flags: u8) -> Self {
        Self {
            id,
            freq,
            persist,
            flags: flags & (FLAG_EVEN | FLAG_ODD | FLAG_OCCUPIED),
        }
    }

    /// Significance-Decrementing (paper §III-B1): decrement the persistency
    /// counter, then the frequency, each floored at 0 ("we can avoid such a
    /// case by keeping 0 if it is already 0"). The *caller* expels the cell
    /// if its significance is zero afterwards.
    #[inline]
    pub fn significance_decrement(&mut self) {
        self.persist = self.persist.saturating_sub(1);
        self.freq = self.freq.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cell_is_unoccupied_zero_significance() {
        let c = Cell::EMPTY;
        assert!(!c.occupied());
        assert_eq!(c.significance(&Weights::BALANCED), 0.0);
        assert!(c.significance_is_zero(&Weights::BALANCED));
    }

    #[test]
    fn occupy_sets_state_and_clears_flags() {
        let mut c = Cell::EMPTY;
        c.set_flag(0); // stray flag from a previous occupant must not leak
        c.occupy(42, 3, 1);
        assert!(c.occupied());
        assert_eq!((c.id, c.freq, c.persist), (42, 3, 1));
        assert!(!c.flag(0));
        assert!(!c.flag(1));
    }

    #[test]
    fn harvest_consumes_flag_once() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 1, 0);
        c.set_flag(1);
        assert!(c.harvest(1));
        assert_eq!(c.persist, 1);
        assert!(!c.harvest(1), "flag already consumed");
        assert_eq!(c.persist, 1);
    }

    #[test]
    fn harvest_checks_requested_parity_only() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 1, 0);
        c.set_flag(0);
        assert!(!c.harvest(1), "odd harvest must not see even flag");
        assert!(c.flag(0), "even flag untouched");
    }

    #[test]
    fn decrement_floors_at_zero() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 2, 0);
        c.significance_decrement();
        assert_eq!((c.freq, c.persist), (1, 0));
        c.significance_decrement();
        assert_eq!((c.freq, c.persist), (0, 0));
        c.significance_decrement();
        assert_eq!((c.freq, c.persist), (0, 0), "never negative");
    }

    #[test]
    fn zero_significance_respects_weights() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 5, 0);
        assert!(!c.significance_is_zero(&Weights::FREQUENT));
        // With α=0 a cell with persistency 0 has significance 0 even at f=5.
        assert!(c.significance_is_zero(&Weights::PERSISTENT));
    }

    #[test]
    fn significance_matches_weights() {
        let mut c = Cell::EMPTY;
        c.occupy(1, 10, 3);
        let w = Weights::new(2.0, 5.0);
        assert_eq!(c.significance(&w), 35.0);
    }
}
