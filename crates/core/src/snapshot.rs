//! Checkpointing: serialise an LTC table's cell state to a compact binary
//! snapshot and restore it later.
//!
//! Long-running monitors (the paper's DDoS / congestion use cases run
//! indefinitely) need to survive restarts without losing accumulated
//! frequencies and persistencies. A snapshot captures the cell array plus
//! the period/parity state; the configuration is *not* stored — the caller
//! re-creates the table from its own configuration and the snapshot refuses
//! to load into a table of a different shape (a checksum of the shape is
//! embedded).
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic  "LTC1"        4 bytes
//! shape  w, d           2 × u32
//! state  parity, periods_completed   u8, u64
//! cells  w·d × (id u64, freq u32, persist u32, flags u8)
//! ```

use crate::cell::Cell;
use crate::table::Ltc;

const MAGIC: &[u8; 4] = b"LTC1";

/// Error restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Not an LTC snapshot or unsupported version.
    BadMagic,
    /// Snapshot was taken from a table of a different shape.
    ShapeMismatch {
        /// Shape in the snapshot.
        snapshot: (u32, u32),
        /// Shape of the receiving table.
        table: (u32, u32),
    },
    /// Snapshot is truncated or padded.
    BadLength,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an LTC snapshot (bad magic)"),
            SnapshotError::ShapeMismatch { snapshot, table } => write!(
                f,
                "snapshot shape {}x{} does not match table shape {}x{}",
                snapshot.0, snapshot.1, table.0, table.1
            ),
            SnapshotError::BadLength => write!(f, "snapshot truncated or oversized"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Bytes per serialised cell: id 8 + freq 4 + persist 4 + flags 1.
const CELL_BYTES: usize = 17;
const HEADER_BYTES: usize = 4 + 4 + 4 + 1 + 8;

/// Little-endian u32 at `at`; `None` past the end.
fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let slice: [u8; 4] = bytes.get(at..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(slice))
}

/// Little-endian u64 at `at`; `None` past the end.
fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let slice: [u8; 8] = bytes.get(at..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(slice))
}

/// Decode one serialised cell from a [`CELL_BYTES`]-sized chunk.
fn cell_from_chunk(chunk: &[u8]) -> Option<Cell> {
    let id = read_u64(chunk, 0)?;
    let freq = read_u32(chunk, 8)?;
    let persist = read_u32(chunk, 12)?;
    let flags = *chunk.get(16)?;
    Some(Cell::from_raw(id, freq, persist, flags))
}

impl Ltc {
    /// Serialise the table state. See the module docs for the format.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let w = self.config().buckets as u32;
        let d = self.config().cells_per_bucket as u32;
        let capacity =
            HEADER_BYTES.saturating_add(self.capacity_cells().saturating_mul(CELL_BYTES));
        let mut out = Vec::with_capacity(capacity);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&w.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
        out.push(self.snapshot_parity());
        out.extend_from_slice(&self.periods_completed().to_le_bytes());
        for cell in self.cells() {
            out.extend_from_slice(&cell.id.to_le_bytes());
            out.extend_from_slice(&cell.freq.to_le_bytes());
            out.extend_from_slice(&cell.persist.to_le_bytes());
            out.push(cell.raw_flags());
        }
        out
    }

    /// Restore state from a snapshot into this (same-shaped) table,
    /// replacing its current contents. Every field is bounds-checked: a
    /// truncated, padded or mis-shaped image is rejected without panicking
    /// and without touching the table (a fuzz test pins this).
    ///
    /// # Errors
    /// See [`SnapshotError`].
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        if bytes.get(..4) != Some(MAGIC.as_slice()) {
            return Err(SnapshotError::BadMagic);
        }
        let w = read_u32(bytes, 4).ok_or(SnapshotError::BadLength)?;
        let d = read_u32(bytes, 8).ok_or(SnapshotError::BadLength)?;
        let my_w = self.config().buckets as u32;
        let my_d = self.config().cells_per_bucket as u32;
        if (w, d) != (my_w, my_d) {
            return Err(SnapshotError::ShapeMismatch {
                snapshot: (w, d),
                table: (my_w, my_d),
            });
        }
        let cells = (w as usize)
            .checked_mul(d as usize)
            .ok_or(SnapshotError::BadLength)?;
        let expected = cells
            .checked_mul(CELL_BYTES)
            .and_then(|body| body.checked_add(HEADER_BYTES))
            .ok_or(SnapshotError::BadLength)?;
        if bytes.len() != expected {
            return Err(SnapshotError::BadLength);
        }
        let parity = *bytes.get(12).ok_or(SnapshotError::BadLength)?;
        let periods = read_u64(bytes, 13).ok_or(SnapshotError::BadLength)?;
        let body = bytes.get(HEADER_BYTES..).ok_or(SnapshotError::BadLength)?;
        // Decode every cell before mutating the table, so a bad image
        // leaves the receiver untouched.
        let mut decoded = Vec::with_capacity(cells);
        for chunk in body.chunks_exact(CELL_BYTES) {
            decoded.push(cell_from_chunk(chunk).ok_or(SnapshotError::BadLength)?);
        }
        if decoded.len() != self.capacity_cells() {
            return Err(SnapshotError::BadLength);
        }
        self.load_cells(&decoded);
        self.restore_state(parity, periods);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LtcConfig;
    use ltc_common::{SignificanceQuery, Weights};

    fn table() -> Ltc {
        Ltc::new(
            LtcConfig::builder()
                .buckets(16)
                .cells_per_bucket(4)
                .weights(Weights::BALANCED)
                .records_per_period(50)
                .seed(9)
                .build(),
        )
    }

    fn loaded() -> Ltc {
        let mut ltc = table();
        for period in 0..4u64 {
            for i in 0..50u64 {
                ltc.insert(if i % 5 == 0 { 7 } else { period * 100 + i });
            }
            ltc.end_period();
        }
        ltc
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = loaded();
        let snap = original.to_snapshot();
        let mut restored = table();
        restored.restore_snapshot(&snap).unwrap();
        assert_eq!(restored.frequency_of(7), original.frequency_of(7));
        assert_eq!(restored.persistency_of(7), original.persistency_of(7));
        assert_eq!(restored.periods_completed(), original.periods_completed());
        assert_eq!(restored.top_k(10), original.top_k(10));
    }

    #[test]
    fn restored_table_continues_correctly() {
        // Pending flags and parity survive: continuing the stream after a
        // restore gives the same result as never snapshotting.
        let mut a = loaded();
        let snap = a.to_snapshot();
        let mut b = table();
        b.restore_snapshot(&snap).unwrap();
        for ltc in [&mut a, &mut b] {
            for _ in 0..50 {
                ltc.insert(7);
            }
            ltc.end_period();
            ltc.finalize();
        }
        assert_eq!(a.frequency_of(7), b.frequency_of(7));
        assert_eq!(a.persistency_of(7), b.persistency_of(7));
    }

    #[test]
    fn wrong_shape_rejected() {
        let snap = loaded().to_snapshot();
        let mut other = Ltc::new(
            LtcConfig::builder()
                .buckets(8)
                .cells_per_bucket(4)
                .records_per_period(50)
                .build(),
        );
        assert!(matches!(
            other.restore_snapshot(&snap),
            Err(SnapshotError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn garbage_rejected() {
        let mut t = table();
        assert_eq!(t.restore_snapshot(b"nope"), Err(SnapshotError::BadMagic));
        let mut snap = loaded().to_snapshot();
        snap.truncate(snap.len() - 1);
        assert_eq!(t.restore_snapshot(&snap), Err(SnapshotError::BadLength));
    }

    #[test]
    fn snapshot_size_is_deterministic() {
        let t = loaded();
        assert_eq!(t.to_snapshot().len(), 21 + 16 * 4 * 17);
    }
}
