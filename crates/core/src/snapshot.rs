//! Checkpointing: serialise an LTC table's cell state to a compact binary
//! snapshot and restore it later.
//!
//! Long-running monitors (the paper's DDoS / congestion use cases run
//! indefinitely) need to survive restarts without losing accumulated
//! frequencies and persistencies. A snapshot captures the cell array plus
//! the period/parity state; the configuration is *not* stored — the caller
//! re-creates the table from its own configuration and the snapshot refuses
//! to load into a table of a different shape (a checksum of the shape is
//! embedded).
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic  "LTC1"        4 bytes
//! shape  w, d           2 × u32
//! state  parity, periods_completed   u8, u64
//! cells  w·d × (id u64, freq u32, persist u32, flags u8)
//! ```

// Off the per-record hot path: arithmetic here runs per period, merge or
// snapshot, and the workspace test profile compiles it with overflow
// checks. Migrating these modules to explicit checked/saturating ops is
// tracked as a ROADMAP open item.
#![allow(clippy::arithmetic_side_effects)]

use crate::cell::Cell;
use crate::table::Ltc;

const MAGIC: &[u8; 4] = b"LTC1";

/// Error restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Not an LTC snapshot or unsupported version.
    BadMagic,
    /// Snapshot was taken from a table of a different shape.
    ShapeMismatch {
        /// Shape in the snapshot.
        snapshot: (u32, u32),
        /// Shape of the receiving table.
        table: (u32, u32),
    },
    /// Snapshot is truncated or padded.
    BadLength,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an LTC snapshot (bad magic)"),
            SnapshotError::ShapeMismatch { snapshot, table } => write!(
                f,
                "snapshot shape {}x{} does not match table shape {}x{}",
                snapshot.0, snapshot.1, table.0, table.1
            ),
            SnapshotError::BadLength => write!(f, "snapshot truncated or oversized"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Bytes per serialised cell: id 8 + freq 4 + persist 4 + flags 1.
const CELL_BYTES: usize = 17;
const HEADER_BYTES: usize = 4 + 4 + 4 + 1 + 8;

impl Ltc {
    /// Serialise the table state. See the module docs for the format.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let w = self.config().buckets as u32;
        let d = self.config().cells_per_bucket as u32;
        let mut out = Vec::with_capacity(HEADER_BYTES + self.capacity_cells() * CELL_BYTES);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&w.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
        out.push(self.snapshot_parity());
        out.extend_from_slice(&self.periods_completed().to_le_bytes());
        for cell in self.cells() {
            out.extend_from_slice(&cell.id.to_le_bytes());
            out.extend_from_slice(&cell.freq.to_le_bytes());
            out.extend_from_slice(&cell.persist.to_le_bytes());
            out.push(cell.raw_flags());
        }
        out
    }

    /// Restore state from a snapshot into this (same-shaped) table,
    /// replacing its current contents.
    ///
    /// # Errors
    /// See [`SnapshotError`].
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        if bytes.len() < HEADER_BYTES || &bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let w = u32::from_le_bytes(bytes[4..8].try_into().expect("sized"));
        let d = u32::from_le_bytes(bytes[8..12].try_into().expect("sized"));
        let my_w = self.config().buckets as u32;
        let my_d = self.config().cells_per_bucket as u32;
        if (w, d) != (my_w, my_d) {
            return Err(SnapshotError::ShapeMismatch {
                snapshot: (w, d),
                table: (my_w, my_d),
            });
        }
        let cells = (w as usize) * (d as usize);
        if bytes.len() != HEADER_BYTES + cells * CELL_BYTES {
            return Err(SnapshotError::BadLength);
        }
        let parity = bytes[12];
        let periods = u64::from_le_bytes(bytes[13..21].try_into().expect("sized"));
        let mut offset = HEADER_BYTES;
        for slot in self.cells_mut() {
            let id = u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("sized"));
            let freq =
                u32::from_le_bytes(bytes[offset + 8..offset + 12].try_into().expect("sized"));
            let persist =
                u32::from_le_bytes(bytes[offset + 12..offset + 16].try_into().expect("sized"));
            let flags = bytes[offset + 16];
            *slot = Cell::from_raw(id, freq, persist, flags);
            offset += CELL_BYTES;
        }
        self.restore_state(parity, periods);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LtcConfig;
    use ltc_common::{SignificanceQuery, Weights};

    fn table() -> Ltc {
        Ltc::new(
            LtcConfig::builder()
                .buckets(16)
                .cells_per_bucket(4)
                .weights(Weights::BALANCED)
                .records_per_period(50)
                .seed(9)
                .build(),
        )
    }

    fn loaded() -> Ltc {
        let mut ltc = table();
        for period in 0..4u64 {
            for i in 0..50u64 {
                ltc.insert(if i % 5 == 0 { 7 } else { period * 100 + i });
            }
            ltc.end_period();
        }
        ltc
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = loaded();
        let snap = original.to_snapshot();
        let mut restored = table();
        restored.restore_snapshot(&snap).unwrap();
        assert_eq!(restored.frequency_of(7), original.frequency_of(7));
        assert_eq!(restored.persistency_of(7), original.persistency_of(7));
        assert_eq!(restored.periods_completed(), original.periods_completed());
        assert_eq!(restored.top_k(10), original.top_k(10));
    }

    #[test]
    fn restored_table_continues_correctly() {
        // Pending flags and parity survive: continuing the stream after a
        // restore gives the same result as never snapshotting.
        let mut a = loaded();
        let snap = a.to_snapshot();
        let mut b = table();
        b.restore_snapshot(&snap).unwrap();
        for ltc in [&mut a, &mut b] {
            for _ in 0..50 {
                ltc.insert(7);
            }
            ltc.end_period();
            ltc.finalize();
        }
        assert_eq!(a.frequency_of(7), b.frequency_of(7));
        assert_eq!(a.persistency_of(7), b.persistency_of(7));
    }

    #[test]
    fn wrong_shape_rejected() {
        let snap = loaded().to_snapshot();
        let mut other = Ltc::new(
            LtcConfig::builder()
                .buckets(8)
                .cells_per_bucket(4)
                .records_per_period(50)
                .build(),
        );
        assert!(matches!(
            other.restore_snapshot(&snap),
            Err(SnapshotError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn garbage_rejected() {
        let mut t = table();
        assert_eq!(t.restore_snapshot(b"nope"), Err(SnapshotError::BadMagic));
        let mut snap = loaded().to_snapshot();
        snap.truncate(snap.len() - 1);
        assert_eq!(t.restore_snapshot(&snap), Err(SnapshotError::BadLength));
    }

    #[test]
    fn snapshot_size_is_deterministic() {
        let t = loaded();
        assert_eq!(t.to_snapshot().len(), 21 + 16 * 4 * 17);
    }
}
