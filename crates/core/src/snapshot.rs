//! Checkpointing: serialise an LTC table's cell state to a compact binary
//! snapshot and restore it later.
//!
//! Long-running monitors (the paper's DDoS / congestion use cases run
//! indefinitely) need to survive restarts without losing accumulated
//! frequencies and persistencies. A snapshot captures the cell array plus
//! the period/parity state; the configuration is *not* stored — the caller
//! re-creates the table from its own configuration and the snapshot refuses
//! to load into a table of a different shape (a checksum of the shape is
//! embedded).
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic  "LTC1"        4 bytes
//! shape  w, d           2 × u32
//! state  parity, periods_completed   u8, u64
//! cells  w·d × (id u64, freq u32, persist u32, flags u8)
//! ```
//!
//! A second, *delta* image exists for incremental durability: it carries
//! only the buckets mutated since the table's last
//! [`Ltc::begin_delta_epoch`] call, so steady-state background saves cost
//! proportional to churn, not table size:
//!
//! ```text
//! magic   "LTCD"        4 bytes
//! shape   w, d           2 × u32
//! state   parity, periods_completed   u8, u64
//! count   dirty bucket count          u32
//! entries count × (bucket u32, d × cell)   — buckets strictly ascending
//! ```
//!
//! A delta is *cumulative relative to the epoch's base image*: applying the
//! base full snapshot and then the newest delta reproduces the live table
//! exactly (intermediate deltas are redundant). Dirty-bucket tracking lives
//! in the [`crate::cell`] store (a per-bucket epoch stamp, one compare +
//! store per record, off the probe scans).

use crate::cell::Cell;
use crate::table::Ltc;

const MAGIC: &[u8; 4] = b"LTC1";
/// Magic of the delta (dirty-buckets-only) image.
const DELTA_MAGIC: &[u8; 4] = b"LTCD";

/// Error restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Not an LTC snapshot or unsupported version.
    BadMagic,
    /// Snapshot was taken from a table of a different shape.
    ShapeMismatch {
        /// Shape in the snapshot.
        snapshot: (u32, u32),
        /// Shape of the receiving table.
        table: (u32, u32),
    },
    /// Snapshot is truncated or padded.
    BadLength,
    /// Delta image is structurally invalid (bucket index out of range or
    /// out of order).
    BadDelta,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an LTC snapshot (bad magic)"),
            SnapshotError::ShapeMismatch { snapshot, table } => write!(
                f,
                "snapshot shape {}x{} does not match table shape {}x{}",
                snapshot.0, snapshot.1, table.0, table.1
            ),
            SnapshotError::BadLength => write!(f, "snapshot truncated or oversized"),
            SnapshotError::BadDelta => {
                write!(f, "delta snapshot has out-of-range or unordered buckets")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Bytes per serialised cell: id 8 + freq 4 + persist 4 + flags 1.
const CELL_BYTES: usize = 17;
const HEADER_BYTES: usize = 4 + 4 + 4 + 1 + 8;
/// Delta header: magic + shape + parity/periods + dirty-bucket count.
const DELTA_HEADER_BYTES: usize = HEADER_BYTES + 4;

/// Little-endian u32 at `at`; `None` past the end.
fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let slice: [u8; 4] = bytes.get(at..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(slice))
}

/// Little-endian u64 at `at`; `None` past the end.
fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let slice: [u8; 8] = bytes.get(at..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(slice))
}

/// Decode one serialised cell from a [`CELL_BYTES`]-sized chunk.
fn cell_from_chunk(chunk: &[u8]) -> Option<Cell> {
    let id = read_u64(chunk, 0)?;
    let freq = read_u32(chunk, 8)?;
    let persist = read_u32(chunk, 12)?;
    let flags = *chunk.get(16)?;
    Some(Cell::from_raw(id, freq, persist, flags))
}

/// Serialise one cell in the on-disk layout.
fn push_cell(out: &mut Vec<u8>, cell: &Cell) {
    out.extend_from_slice(&cell.id.to_le_bytes());
    out.extend_from_slice(&cell.freq.to_le_bytes());
    out.extend_from_slice(&cell.persist.to_le_bytes());
    out.push(cell.raw_flags());
}

/// Whether `bytes` start with the delta-image magic (the checkpoint layer
/// routes delta sections to [`Ltc::apply_delta_snapshot`] by this).
pub(crate) fn is_delta_image(bytes: &[u8]) -> bool {
    bytes.get(..4) == Some(DELTA_MAGIC.as_slice())
}

impl Ltc {
    /// Serialise the table state. See the module docs for the format.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let w = self.config().buckets as u32;
        let d = self.config().cells_per_bucket as u32;
        let capacity =
            HEADER_BYTES.saturating_add(self.capacity_cells().saturating_mul(CELL_BYTES));
        let mut out = Vec::with_capacity(capacity);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&w.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
        out.push(self.snapshot_parity());
        out.extend_from_slice(&self.periods_completed().to_le_bytes());
        for cell in self.cells() {
            out.extend_from_slice(&cell.id.to_le_bytes());
            out.extend_from_slice(&cell.freq.to_le_bytes());
            out.extend_from_slice(&cell.persist.to_le_bytes());
            out.push(cell.raw_flags());
        }
        out
    }

    /// Restore state from a snapshot into this (same-shaped) table,
    /// replacing its current contents. Every field is bounds-checked: a
    /// truncated, padded or mis-shaped image is rejected without panicking
    /// and without touching the table (a fuzz test pins this).
    ///
    /// # Errors
    /// See [`SnapshotError`].
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        if bytes.get(..4) != Some(MAGIC.as_slice()) {
            return Err(SnapshotError::BadMagic);
        }
        let w = read_u32(bytes, 4).ok_or(SnapshotError::BadLength)?;
        let d = read_u32(bytes, 8).ok_or(SnapshotError::BadLength)?;
        let my_w = self.config().buckets as u32;
        let my_d = self.config().cells_per_bucket as u32;
        if (w, d) != (my_w, my_d) {
            return Err(SnapshotError::ShapeMismatch {
                snapshot: (w, d),
                table: (my_w, my_d),
            });
        }
        let cells = (w as usize)
            .checked_mul(d as usize)
            .ok_or(SnapshotError::BadLength)?;
        let expected = cells
            .checked_mul(CELL_BYTES)
            .and_then(|body| body.checked_add(HEADER_BYTES))
            .ok_or(SnapshotError::BadLength)?;
        if bytes.len() != expected {
            return Err(SnapshotError::BadLength);
        }
        let parity = *bytes.get(12).ok_or(SnapshotError::BadLength)?;
        let periods = read_u64(bytes, 13).ok_or(SnapshotError::BadLength)?;
        let body = bytes.get(HEADER_BYTES..).ok_or(SnapshotError::BadLength)?;
        // Decode every cell before mutating the table, so a bad image
        // leaves the receiver untouched.
        let mut decoded = Vec::with_capacity(cells);
        for chunk in body.chunks_exact(CELL_BYTES) {
            decoded.push(cell_from_chunk(chunk).ok_or(SnapshotError::BadLength)?);
        }
        if decoded.len() != self.capacity_cells() {
            return Err(SnapshotError::BadLength);
        }
        self.load_cells(&decoded);
        self.restore_state(parity, periods);
        Ok(())
    }

    /// Serialise only the buckets mutated since the last
    /// [`Ltc::begin_delta_epoch`] call (see the module docs for the
    /// format). The dirty set is *not* cleared: deltas are cumulative
    /// relative to the epoch's base image, so the caller clears the epoch
    /// exactly when it takes a new full snapshot.
    pub fn to_delta_snapshot(&self) -> Vec<u8> {
        let w = self.config().buckets as u32;
        let d = self.config().cells_per_bucket;
        let dirty: Vec<usize> = self.dirty_buckets().collect();
        let entry_bytes = 4usize.saturating_add(d.saturating_mul(CELL_BYTES));
        let capacity = DELTA_HEADER_BYTES.saturating_add(dirty.len().saturating_mul(entry_bytes));
        let mut out = Vec::with_capacity(capacity);
        out.extend_from_slice(DELTA_MAGIC);
        out.extend_from_slice(&w.to_le_bytes());
        out.extend_from_slice(&(d as u32).to_le_bytes());
        out.push(self.snapshot_parity());
        out.extend_from_slice(&self.periods_completed().to_le_bytes());
        out.extend_from_slice(&(dirty.len() as u32).to_le_bytes());
        for bucket in dirty {
            out.extend_from_slice(&(bucket as u32).to_le_bytes());
            for cell in self.bucket_cells(bucket.saturating_mul(d), d) {
                push_cell(&mut out, &cell);
            }
        }
        out
    }

    /// Apply a delta image on top of this table's current contents —
    /// normally the base full snapshot the delta's epoch started from.
    /// Dirtied buckets are overwritten wholesale; untouched buckets keep
    /// whatever the base held. Parity and period bookkeeping move to the
    /// delta's (newer) values. Decodes and validates everything before
    /// mutating, so a bad image leaves the receiver untouched.
    ///
    /// # Errors
    /// See [`SnapshotError`]; structurally invalid bucket lists (out of
    /// range, unordered, duplicated) are [`SnapshotError::BadDelta`].
    pub fn apply_delta_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        if !is_delta_image(bytes) {
            return Err(SnapshotError::BadMagic);
        }
        let w = read_u32(bytes, 4).ok_or(SnapshotError::BadLength)?;
        let d = read_u32(bytes, 8).ok_or(SnapshotError::BadLength)?;
        let my_w = self.config().buckets as u32;
        let my_d = self.config().cells_per_bucket as u32;
        if (w, d) != (my_w, my_d) {
            return Err(SnapshotError::ShapeMismatch {
                snapshot: (w, d),
                table: (my_w, my_d),
            });
        }
        let parity = *bytes.get(12).ok_or(SnapshotError::BadLength)?;
        let periods = read_u64(bytes, 13).ok_or(SnapshotError::BadLength)?;
        let count = read_u32(bytes, 21).ok_or(SnapshotError::BadLength)? as usize;
        let d = d as usize;
        let entry_bytes = 4usize
            .checked_add(d.checked_mul(CELL_BYTES).ok_or(SnapshotError::BadLength)?)
            .ok_or(SnapshotError::BadLength)?;
        let expected = count
            .checked_mul(entry_bytes)
            .and_then(|body| body.checked_add(DELTA_HEADER_BYTES))
            .ok_or(SnapshotError::BadLength)?;
        if bytes.len() != expected {
            return Err(SnapshotError::BadLength);
        }
        let body = bytes
            .get(DELTA_HEADER_BYTES..)
            .ok_or(SnapshotError::BadLength)?;
        // Decode every entry before mutating the table.
        let mut decoded: Vec<(usize, Vec<Cell>)> = Vec::with_capacity(count);
        let mut prev: Option<usize> = None;
        for entry in body.chunks_exact(entry_bytes) {
            let bucket = read_u32(entry, 0).ok_or(SnapshotError::BadLength)? as usize;
            if bucket >= w as usize || prev.is_some_and(|p| bucket <= p) {
                return Err(SnapshotError::BadDelta);
            }
            prev = Some(bucket);
            let mut cells = Vec::with_capacity(d);
            for chunk in entry.get(4..).unwrap_or(&[]).chunks_exact(CELL_BYTES) {
                cells.push(cell_from_chunk(chunk).ok_or(SnapshotError::BadLength)?);
            }
            if cells.len() != d {
                return Err(SnapshotError::BadLength);
            }
            decoded.push((bucket, cells));
        }
        if decoded.len() != count {
            return Err(SnapshotError::BadLength);
        }
        for (bucket, cells) in decoded {
            self.replace_bucket(bucket.saturating_mul(d), d, &cells);
        }
        self.restore_state(parity, periods);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LtcConfig;
    use ltc_common::{SignificanceQuery, Weights};

    fn table() -> Ltc {
        Ltc::new(
            LtcConfig::builder()
                .buckets(16)
                .cells_per_bucket(4)
                .weights(Weights::BALANCED)
                .records_per_period(50)
                .seed(9)
                .build(),
        )
    }

    fn loaded() -> Ltc {
        let mut ltc = table();
        for period in 0..4u64 {
            for i in 0..50u64 {
                ltc.insert(if i % 5 == 0 { 7 } else { period * 100 + i });
            }
            ltc.end_period();
        }
        ltc
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = loaded();
        let snap = original.to_snapshot();
        let mut restored = table();
        restored.restore_snapshot(&snap).unwrap();
        assert_eq!(restored.frequency_of(7), original.frequency_of(7));
        assert_eq!(restored.persistency_of(7), original.persistency_of(7));
        assert_eq!(restored.periods_completed(), original.periods_completed());
        assert_eq!(restored.top_k(10), original.top_k(10));
    }

    #[test]
    fn restored_table_continues_correctly() {
        // Pending flags and parity survive: continuing the stream after a
        // restore gives the same result as never snapshotting.
        let mut a = loaded();
        let snap = a.to_snapshot();
        let mut b = table();
        b.restore_snapshot(&snap).unwrap();
        for ltc in [&mut a, &mut b] {
            for _ in 0..50 {
                ltc.insert(7);
            }
            ltc.end_period();
            ltc.finalize();
        }
        assert_eq!(a.frequency_of(7), b.frequency_of(7));
        assert_eq!(a.persistency_of(7), b.persistency_of(7));
    }

    #[test]
    fn wrong_shape_rejected() {
        let snap = loaded().to_snapshot();
        let mut other = Ltc::new(
            LtcConfig::builder()
                .buckets(8)
                .cells_per_bucket(4)
                .records_per_period(50)
                .build(),
        );
        assert!(matches!(
            other.restore_snapshot(&snap),
            Err(SnapshotError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn garbage_rejected() {
        let mut t = table();
        assert_eq!(t.restore_snapshot(b"nope"), Err(SnapshotError::BadMagic));
        let mut snap = loaded().to_snapshot();
        snap.truncate(snap.len() - 1);
        assert_eq!(t.restore_snapshot(&snap), Err(SnapshotError::BadLength));
    }

    #[test]
    fn snapshot_size_is_deterministic() {
        let t = loaded();
        assert_eq!(t.to_snapshot().len(), 21 + 16 * 4 * 17);
    }

    #[test]
    fn base_plus_delta_reproduces_the_live_table() {
        let mut live = loaded();
        let base = live.to_snapshot();
        live.begin_delta_epoch();
        // Mutate past the base: two more periods hammering two hot items,
        // so only their buckets dirty.
        for _ in 0..2u64 {
            for i in 0..50u64 {
                live.insert(if i % 2 == 0 { 7 } else { 900 });
            }
            live.end_period();
        }
        let delta = live.to_delta_snapshot();
        assert!(
            delta.len() < live.to_snapshot().len(),
            "a skewed delta must be smaller than the full image"
        );
        let mut restored = table();
        restored.restore_snapshot(&base).unwrap();
        restored.apply_delta_snapshot(&delta).unwrap();
        // Bit-exact over everything a snapshot carries (cells, parity,
        // periods); cumulative stats are process-local and never restored.
        assert_eq!(
            restored.to_snapshot(),
            live.to_snapshot(),
            "base + newest delta must be bit-exact with the live table"
        );
    }

    #[test]
    fn deltas_are_cumulative_and_epoch_scoped() {
        let mut live = loaded();
        live.begin_delta_epoch();
        assert_eq!(live.dirty_bucket_count(), 0);
        for _ in 0..50u64 {
            live.insert(7);
        }
        live.end_period();
        let early = live.to_delta_snapshot();
        for i in 0..50u64 {
            live.insert(i);
        }
        live.end_period();
        let late = live.to_delta_snapshot();
        // Taking a delta does not clear the epoch: the later delta covers
        // at least everything the earlier one did.
        assert!(late.len() >= early.len());
        // A fresh table is entirely dirty — its "delta" is a full image.
        let fresh = table();
        assert_eq!(
            fresh.dirty_bucket_count(),
            16,
            "all buckets dirty at construction"
        );
    }

    #[test]
    fn bad_delta_images_rejected_without_mutation() {
        let mut live = loaded();
        live.begin_delta_epoch();
        for _ in 0..50u64 {
            live.insert(7);
        }
        live.end_period();
        let delta = live.to_delta_snapshot();

        let mut target = table();
        let before = format!("{target:?}");
        assert_eq!(
            target.apply_delta_snapshot(b"bogus"),
            Err(SnapshotError::BadMagic)
        );
        let mut truncated = delta.clone();
        truncated.truncate(truncated.len() - 1);
        assert_eq!(
            target.apply_delta_snapshot(&truncated),
            Err(SnapshotError::BadLength)
        );
        // Out-of-range bucket index in the first entry.
        let mut rogue = delta.clone();
        rogue[25..29].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            target.apply_delta_snapshot(&rogue),
            Err(SnapshotError::BadDelta)
        );
        // A full image is not a delta and vice versa.
        assert_eq!(
            target.apply_delta_snapshot(&live.to_snapshot()),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(
            target.restore_snapshot(&delta),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(
            format!("{target:?}"),
            before,
            "failed applies mutate nothing"
        );
    }
}
