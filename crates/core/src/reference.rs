//! The retained array-of-structs LTC implementation.
//!
//! [`ReferenceLtc`] is the pre-SoA table — one `Vec<Cell>` of
//! `⟨ID, f, p, flags⟩` structs, probed field-by-field — kept for two jobs:
//!
//! 1. **Differential testing.** The property suite
//!    (`tests/soa_equivalence.rs`) drives this table and [`crate::Ltc`]
//!    with identical streams and requires identical top-k, estimates, and
//!    snapshot bytes. Any semantic drift introduced by the lane layout (or
//!    by the optional `simd` scan) fails loudly.
//! 2. **Benchmark baseline.** The `table_scan` microbench measures
//!    bucket-probe throughput of this layout against the SoA table
//!    (`BENCH_table.json`), so the layout's win is a number, not a claim.
//!
//! It is a faithful port, not a simplification: batched inserts keep the
//! hash-up-front / prefetch / scan-free-run machinery so throughput
//! comparisons measure the layout, and nothing else. It is *not* part of
//! the supported API surface — use [`crate::Ltc`].

use crate::cell::Cell;
use crate::clock::ClockPointer;
use crate::config::{LtcConfig, PeriodMode};
use crate::stats::LtcStats;
use ltc_common::{top_k_of, Estimate, ItemId, Timestamp, Weights};
use ltc_hash::SeededHash;

const SNAPSHOT_MAGIC: &[u8; 4] = b"LTC1";

/// Array-of-structs LTC table (see the module docs). Bit-exact peer of
/// [`crate::Ltc`] under identical input.
#[derive(Debug, Clone)]
pub struct ReferenceLtc {
    config: LtcConfig,
    cells: Vec<Cell>,
    clock: ClockPointer,
    bucket_hash: SeededHash,
    parity: u8,
    periods_completed: u64,
    period_start_time: Timestamp,
    last_time: Timestamp,
    stats: LtcStats,
}

impl ReferenceLtc {
    /// Create a reference table from a configuration.
    pub fn new(config: LtcConfig) -> Self {
        let total = config.total_cells();
        Self {
            config,
            cells: vec![Cell::EMPTY; total],
            clock: ClockPointer::new(total),
            bucket_hash: SeededHash::new(config.seed as u32),
            parity: 0,
            periods_completed: 0,
            period_start_time: 0,
            last_time: 0,
            stats: LtcStats::default(),
        }
    }

    /// Lifetime operation counters — the same bookkeeping [`crate::Ltc`]
    /// pays per record, so throughput comparisons measure the layout and
    /// not one side's accounting.
    pub fn stats(&self) -> LtcStats {
        self.stats
    }

    /// Number of periods ended so far.
    pub fn periods_completed(&self) -> u64 {
        self.periods_completed
    }

    fn set_parity(&self) -> u8 {
        if self.config.variant.deviation_eliminator {
            self.parity
        } else {
            0
        }
    }

    fn harvest_parity(&self) -> u8 {
        if self.config.variant.deviation_eliminator {
            self.parity ^ 1
        } else {
            0
        }
    }

    /// Insert one record (count-driven mode).
    ///
    /// # Panics
    /// Panics if the table was configured time-driven.
    pub fn insert(&mut self, id: ItemId) {
        let n = match self.config.period_mode {
            PeriodMode::ByCount { records_per_period } => records_per_period,
            PeriodMode::ByTime { .. } => {
                panic!("time-driven reference LTC must be fed via insert_at(id, time)")
            }
        };
        self.process(id);
        self.tick(self.cells.len() as u64, n);
    }

    /// Insert a run of records (count-driven mode) — same amortisation as
    /// [`crate::Ltc::insert_batch`] so layout comparisons are fair.
    ///
    /// # Panics
    /// Panics if the table was configured time-driven.
    pub fn insert_batch(&mut self, ids: &[ItemId]) {
        let n = match self.config.period_mode {
            PeriodMode::ByCount { records_per_period } => records_per_period,
            PeriodMode::ByTime { .. } => {
                panic!("time-driven reference LTC must be fed via insert_at(id, time)")
            }
        };
        let m = self.cells.len() as u64;
        let d = self.config.cells_per_bucket;
        let bases: Vec<usize> = ids
            .iter()
            .map(|&id| self.bucket_index(id).saturating_mul(d))
            .collect();
        let mut i = 0;
        while i < ids.len() {
            let free = self
                .clock
                .ticks_before_scan(m, n)
                .min(ids.len().saturating_sub(i) as u64) as usize;
            let scan_free_end = i.saturating_add(free);
            for j in i..scan_free_end {
                self.prefetch_bucket(&bases, j);
                if let (Some(&id), Some(&base)) = (ids.get(j), bases.get(j)) {
                    self.process_at(id, base);
                }
            }
            self.clock.advance_scan_free(free as u64, m, n);
            i = scan_free_end;
            if let (Some(&id), Some(&base)) = (ids.get(i), bases.get(i)) {
                self.prefetch_bucket(&bases, i);
                self.process_at(id, base);
                self.tick(m, n);
                i = i.saturating_add(1);
            }
        }
    }

    /// Insert one record with a timestamp (time-driven mode).
    ///
    /// # Panics
    /// Panics if the table was configured count-driven.
    pub fn insert_at(&mut self, id: ItemId, time: Timestamp) {
        let t = match self.config.period_mode {
            PeriodMode::ByTime { units_per_period } => units_per_period,
            PeriodMode::ByCount { .. } => {
                panic!("count-driven reference LTC must be fed via insert(id)")
            }
        };
        while time >= self.period_start_time.saturating_add(t) {
            self.end_period();
        }
        let reference = self.last_time.max(self.period_start_time);
        let elapsed = time.saturating_sub(reference);
        self.tick(elapsed.saturating_mul(self.cells.len() as u64), t);
        self.last_time = time;
        self.process(id);
    }

    /// End the current period (complete the sweep, flip parity).
    pub fn end_period(&mut self) {
        let hp = self.harvest_parity();
        let cells = &mut self.cells;
        let mut harvested = 0u64;
        self.clock.finish_period(|i| {
            if let Some(c) = cells.get_mut(i) {
                harvested = harvested.saturating_add(u64::from(c.harvest(hp)));
            }
        });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
        if self.config.variant.deviation_eliminator {
            self.parity ^= 1;
        }
        self.periods_completed = self.periods_completed.saturating_add(1);
        self.stats.periods = self.stats.periods.saturating_add(1);
        if let PeriodMode::ByTime { units_per_period } = self.config.period_mode {
            self.period_start_time = self.period_start_time.saturating_add(units_per_period);
        }
    }

    /// Harvest the final period's pending flags (idempotent).
    pub fn finalize(&mut self) {
        let hp = self.harvest_parity();
        let cells = &mut self.cells;
        let mut harvested = 0u64;
        self.clock.full_sweep(|i| {
            if let Some(c) = cells.get_mut(i) {
                harvested = harvested.saturating_add(u64::from(c.harvest(hp)));
            }
        });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
    }

    /// Whether `id` currently occupies a cell.
    pub fn contains(&self, id: ItemId) -> bool {
        self.find(id).is_some()
    }

    /// Estimated frequency of `id`, if tracked.
    pub fn frequency_of(&self, id: ItemId) -> Option<u64> {
        self.find(id).map(|c| u64::from(c.freq))
    }

    /// Estimated persistency of `id`, if tracked.
    pub fn persistency_of(&self, id: ItemId) -> Option<u64> {
        self.find(id).map(|c| u64::from(c.persist))
    }

    /// Estimated significance of `id`, if tracked.
    pub fn estimate(&self, id: ItemId) -> Option<f64> {
        self.find(id).map(|c| c.significance(&self.config.weights))
    }

    /// The `k` most significant tracked items, descending.
    pub fn top_k(&self, k: usize) -> Vec<Estimate> {
        let weights = self.config.weights;
        let candidates = self
            .cells
            .iter()
            .filter(|c| c.occupied())
            .map(|c| Estimate::new(c.id, c.significance(&weights)))
            .collect();
        top_k_of(candidates, k)
    }

    /// Serialise the table state in the same `LTC1` format as
    /// [`crate::Ltc::to_snapshot`] — byte-identical under identical input.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let w = self.config.buckets as u32;
        let d = self.config.cells_per_bucket as u32;
        let mut out =
            Vec::with_capacity(21usize.saturating_add(self.cells.len().saturating_mul(17)));
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&w.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
        out.push(self.parity);
        out.extend_from_slice(&self.periods_completed.to_le_bytes());
        for cell in &self.cells {
            out.extend_from_slice(&cell.id.to_le_bytes());
            out.extend_from_slice(&cell.freq.to_le_bytes());
            out.extend_from_slice(&cell.persist.to_le_bytes());
            out.push(cell.raw_flags());
        }
        out
    }

    #[inline]
    fn bucket_index(&self, id: ItemId) -> usize {
        self.bucket_hash.index(id, self.config.buckets)
    }

    #[inline]
    fn prefetch_bucket(&self, bases: &[usize], j: usize) {
        let distance = self.config.prefetch_distance;
        if distance == 0 {
            return;
        }
        if let Some(&base) = bases.get(j.saturating_add(distance)) {
            // Copy the id so the optimiser cannot drop the load — a bare
            // `black_box(&cell)` pins only the address, fetching nothing.
            if let Some(cell) = self.cells.get(base) {
                std::hint::black_box(cell.id);
            }
        }
    }

    #[inline]
    fn find(&self, id: ItemId) -> Option<&Cell> {
        let d = self.config.cells_per_bucket;
        let base = self.bucket_index(id).saturating_mul(d);
        self.cells
            .get(base..base.saturating_add(d))
            .unwrap_or(&[])
            .iter()
            .find(|c| c.occupied() && c.id == id)
    }

    #[inline]
    fn tick(&mut self, numerator: u64, denominator: u64) {
        let hp = self.harvest_parity();
        let cells = &mut self.cells;
        let mut harvested = 0u64;
        self.clock.tick(numerator, denominator, |i| {
            if let Some(c) = cells.get_mut(i) {
                harvested = harvested.saturating_add(u64::from(c.harvest(hp)));
            }
        });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
    }

    fn process(&mut self, id: ItemId) {
        let base = self
            .bucket_index(id)
            .saturating_mul(self.config.cells_per_bucket);
        self.process_at(id, base);
    }

    /// The insertion state machine, field-probing the struct array — the
    /// exact pre-SoA hot loop.
    fn process_at(&mut self, id: ItemId, base: usize) {
        let weights = self.config.weights;
        let variant = self.config.variant;
        let parity = self.set_parity();
        let d = self.config.cells_per_bucket;
        let end = base.saturating_add(d);

        self.stats.inserts = self.stats.inserts.saturating_add(1);

        let mut hit_slot = None;
        let mut empty_slot = None;
        let mut min_slot = base;
        let mut min_sig = f64::INFINITY;
        for (offset, c) in self.cells.get(base..end).unwrap_or(&[]).iter().enumerate() {
            let i = base.saturating_add(offset);
            if c.occupied() {
                if c.id == id {
                    hit_slot = Some(i);
                    break;
                }
                let sig = c.significance(&weights);
                if sig < min_sig {
                    min_sig = sig;
                    min_slot = i;
                }
            } else if empty_slot.is_none() {
                empty_slot = Some(i);
            }
        }

        if let Some(i) = hit_slot {
            self.stats.hits = self.stats.hits.saturating_add(1);
            if let Some(c) = self.cells.get_mut(i) {
                c.freq = c.freq.saturating_add(1);
                c.set_flag(parity);
            }
            return;
        }

        if let Some(i) = empty_slot {
            self.stats.fills = self.stats.fills.saturating_add(1);
            if let Some(c) = self.cells.get_mut(i) {
                c.occupy(id, 1, 0);
                c.set_flag(parity);
            }
            return;
        }

        let Some(c) = self.cells.get_mut(min_slot) else {
            return;
        };
        c.significance_decrement();
        if !c.significance_is_zero(&weights) {
            self.stats.decrements = self.stats.decrements.saturating_add(1);
            return;
        }
        self.stats.admissions = self.stats.admissions.saturating_add(1);
        if let Some(c) = self.cells.get_mut(min_slot) {
            c.clear();
        }
        let (f0, p0) = if variant.long_tail_replacement {
            self.long_tail_initial(base, d, &weights)
        } else {
            (1, 0)
        };
        if let Some(c) = self.cells.get_mut(min_slot) {
            c.occupy(id, f0, p0);
            c.set_flag(parity);
        }
    }

    fn long_tail_initial(&self, base: usize, d: usize, weights: &Weights) -> (u32, u32) {
        let second = self
            .cells
            .get(base..base.saturating_add(d))
            .unwrap_or(&[])
            .iter()
            .filter(|c| c.occupied())
            .min_by(|a, b| a.significance(weights).total_cmp(&b.significance(weights)));
        match second {
            Some(c) => {
                if weights.alpha > 0.0 {
                    (c.freq.saturating_sub(1).max(1), c.persist)
                } else {
                    (c.freq.max(1), c.persist.saturating_sub(1))
                }
            }
            None => (1, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::Ltc;
    use ltc_common::SignificanceQuery;

    fn config(w: usize, d: usize, n: u64) -> LtcConfig {
        LtcConfig::builder()
            .buckets(w)
            .cells_per_bucket(d)
            .records_per_period(n)
            .weights(Weights::BALANCED)
            .variant(Variant::FULL)
            .seed(7)
            .build()
    }

    #[test]
    fn reference_agrees_with_soa_on_a_smoke_stream() {
        let cfg = config(8, 4, 25);
        let mut aos = ReferenceLtc::new(cfg);
        let mut soa = Ltc::new(cfg);
        for round in 0..4u64 {
            for i in 0..25u64 {
                let id = if i % 3 == 0 { 42 } else { round * 50 + i };
                aos.insert(id);
                soa.insert(id);
            }
            aos.end_period();
            soa.end_period();
        }
        aos.finalize();
        soa.finalize();
        assert_eq!(aos.frequency_of(42), soa.frequency_of(42));
        assert_eq!(aos.persistency_of(42), soa.persistency_of(42));
        assert_eq!(aos.top_k(10), soa.top_k(10));
        assert_eq!(aos.to_snapshot(), soa.to_snapshot());
    }

    #[test]
    fn reference_batch_matches_reference_scalar() {
        let cfg = config(4, 4, 30);
        let ids: Vec<u64> = (0..240u64).map(|i| i * 37 % 23).collect();
        let mut scalar = ReferenceLtc::new(cfg);
        for &id in &ids {
            scalar.insert(id);
        }
        let mut batched = ReferenceLtc::new(cfg);
        batched.insert_batch(&ids);
        assert_eq!(scalar.to_snapshot(), batched.to_snapshot());
    }

    #[test]
    fn reference_snapshot_restores_into_soa_table() {
        let cfg = config(8, 4, 25);
        let mut aos = ReferenceLtc::new(cfg);
        for i in 0..100u64 {
            aos.insert(i % 11);
        }
        aos.end_period();
        let mut soa = Ltc::new(cfg);
        soa.restore_snapshot(&aos.to_snapshot()).unwrap();
        assert_eq!(soa.frequency_of(5), aos.frequency_of(5));
        assert_eq!(soa.periods_completed(), aos.periods_completed());
    }
}
