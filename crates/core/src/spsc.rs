//! Bounded hand-off queues for the parallel pipeline.
//!
//! [`SpscRing`] is the rendezvous between the routing thread and one worker
//! of [`crate::pipeline::ParallelLtc`]: a bounded FIFO ring buffer used
//! single-producer/single-consumer. The bound is the pipeline's
//! backpressure: when a worker falls behind, [`push`](SpscRing::push)
//! blocks the router instead of queueing unbounded memory.
//!
//! The ring is a fixed array of [`MaybeUninit`] slots addressed by two
//! monotonically increasing (wrapping) cursors. The common case — space to
//! push, an item to pop — is lock-free: one atomic load, a slot move, one
//! atomic store. Only the empty/full edges take a mutex, to park on a
//! condvar until the peer makes progress.
//!
//! ## Memory-ordering protocol (verified by `tests/loom_spsc.rs`)
//!
//! * **Data publication** is release/acquire on the cursors: the producer's
//!   slot write is published by its `tail` store, and the consumer reads
//!   the slot only after an acquiring load of `tail`; slot *reuse* is gated
//!   symmetrically on `head`. Weakening either to `Relaxed` makes the loom
//!   model report a data race on the slot `UnsafeCell`.
//! * **Parking** is a Dekker handshake on the `waiting` flag word: the
//!   sleeper sets its bit (`SeqCst` RMW) and then re-reads the cursor
//!   (`SeqCst`); the waker stores the cursor (`SeqCst`, which is why those
//!   stores are not merely `Release`) and then reads `waiting` (`SeqCst`).
//!   The single total order of `SeqCst` operations means the two sides
//!   cannot both miss each other.
//! * The residual window — waker reads `waiting` before the sleeper's RMW,
//!   while the sleeper has checked but not yet slept — is closed by the
//!   sleep mutex: the sleeper re-checks the cursor *under the mutex*, and
//!   the waker locks and unlocks that mutex before notifying. Dropping any
//!   of these steps shows up in the loom model as a deadlock (lost
//!   wakeup).
//!
//! Slot storage is rounded up to a power of two and indexed as
//! `cursor & mask`, so cursor arithmetic stays correct across `usize`
//! wraparound (`wrapping_sub` for length, masked indexing for position).
//!
//! ## Poisoning (worker-death path)
//!
//! A consumer that dies (shard-worker panic) would otherwise strand a
//! producer blocked in [`push`](SpscRing::push) forever. [`poison`]
//! (SpscRing::poison) marks the ring dead and wakes both sides: `push`
//! then refuses the item (returning `false`) and `pop` returns `None` once
//! the queued backlog is gone. The supervisor can salvage that backlog
//! with [`drain`](SpscRing::drain) *after* joining the dead consumer —
//! sequencing that keeps the single-consumer contract intact.

// The SPSC ring is allowed to use `unsafe` (raw slot storage); every block
// carries a SAFETY comment and the whole protocol is model-checked in
// `tests/loom_spsc.rs`. `cargo run -p xtask -- lint` enforces that the
// unsafe allowlist does not silently grow.
#![allow(unsafe_code)]

use crate::obs::Counter;
use crate::shim::atomic::{AtomicUsize, Ordering};
use crate::shim::{Condvar, Mutex, MutexGuard, UnsafeCell};
use std::mem::MaybeUninit;

/// Seeded-weakening seams for the loom refutation tests
/// (`tests/loom_weakening.rs`).
///
/// Each [`Point`] names one ordering-critical store in the ring protocol.
/// In production builds [`publish`] is a compile-time identity — the
/// declared `Ordering` token stays in the call site, so the static
/// `ordering_protocol` lint still checks the real ordering. Under
/// `--features loom-check` a test can *demote* a point to `Release`,
/// seeding exactly the ordering bug the weak-memory explorer must refute
/// (and the SC-value explorer provably cannot see).
#[doc(hidden)]
pub mod seam {
    use super::Ordering;

    /// An ordering-critical store that can be weakened under test.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Point {
        /// `tail.store(…, SeqCst)` in `push` — the producer's publish,
        /// which doubles as its half of the Dekker handshake.
        TailPublish,
        /// `head.store(…, SeqCst)` in `take` — the consumer's slot
        /// release, the mirror half of the handshake.
        HeadPublish,
    }

    #[cfg(feature = "loom-check")]
    mod knobs {
        use std::sync::atomic::AtomicBool;

        // ordering: load=SeqCst, store=SeqCst -- test-only knob, read per publish under loom; strongest ordering is the cheapest correct choice
        pub static TAIL_PUBLISH: AtomicBool = AtomicBool::new(false);
        // ordering: load=SeqCst, store=SeqCst -- test-only knob, read per publish under loom; strongest ordering is the cheapest correct choice
        pub static HEAD_PUBLISH: AtomicBool = AtomicBool::new(false);
    }

    #[cfg(feature = "loom-check")]
    fn knob(point: Point) -> &'static std::sync::atomic::AtomicBool {
        match point {
            Point::TailPublish => &knobs::TAIL_PUBLISH,
            Point::HeadPublish => &knobs::HEAD_PUBLISH,
        }
    }

    /// Demote `point` from its declared ordering to `Release` (`on`) or
    /// restore it (`off`). Process-global: weakening tests serialize on a
    /// lock and restore the knob before releasing it.
    #[cfg(feature = "loom-check")]
    pub fn demote(point: Point, on: bool) {
        knob(point).store(on, std::sync::atomic::Ordering::SeqCst);
    }

    /// The ordering actually used at `point`: the declared one, unless a
    /// weakening test demoted it.
    #[cfg(feature = "loom-check")]
    #[inline]
    pub fn publish(point: Point, declared: Ordering) -> Ordering {
        if knob(point).load(std::sync::atomic::Ordering::SeqCst) {
            Ordering::Release
        } else {
            declared
        }
    }

    /// Production builds: the declared ordering, verbatim.
    #[cfg(not(feature = "loom-check"))]
    #[inline(always)]
    pub fn publish(_point: Point, declared: Ordering) -> Ordering {
        declared
    }
}

/// Bit in [`SpscRing::waiting`]: the consumer is parked (or about to park)
/// waiting for `not_empty`.
const CONSUMER_PARKED: usize = 1;
/// Bit in [`SpscRing::waiting`]: the producer is parked (or about to park)
/// waiting for `not_full`.
const PRODUCER_PARKED: usize = 2;
/// Bit in [`SpscRing::waiting`]: the ring is poisoned (its consumer died
/// or the supervisor closed it); no message will ever be accepted again.
const POISONED: usize = 4;

/// Largest capacity whose slot count (next power of two) fits in `usize`.
const MAX_CAPACITY: usize = (usize::MAX >> 1) + 1;

/// A bounded FIFO hand-off queue. See the module docs for the concurrency
/// protocol; the type is safe for exactly one producer thread and one
/// consumer thread at a time (the pipeline's usage), which is what the
/// loom model checks.
pub struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `slots.len() - 1`, with `slots.len()` a power of two.
    mask: usize,
    capacity: usize,
    /// Next cursor to pop; written only by the consumer.
    // ordering: load=Acquire, store=SeqCst -- producer acquires published slots; the SeqCst store is the consumer's half of the Dekker handshake (audit: Release loses the store/park total order and strands a parked producer)
    head: AtomicUsize,
    /// Next cursor to push; written only by the producer.
    // ordering: load=Acquire, store=SeqCst -- consumer acquires published items; the SeqCst store is the producer's half of the Dekker handshake (audit: Release loses the store/park total order and strands a parked consumer)
    tail: AtomicUsize,
    /// Dekker flag word: which sides are parked ([`CONSUMER_PARKED`] /
    /// [`PRODUCER_PARKED`]).
    // ordering: load=SeqCst, store=SeqCst, rmw=SeqCst -- every access participates in the Dekker total order against the cursor publishes; nothing here may be weakened in isolation
    waiting: AtomicUsize,
    sleep: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Optional backpressure metric: bumped (wait-free, slow path only)
    /// each time the producer parks because the ring is full.
    stalls: Option<Counter>,
}

// SAFETY: the cursor protocol in the module docs makes every slot access
// exclusive-by-construction (producer writes only vacant slots at `tail`,
// consumer reads only published slots at `head`, each cursor has a single
// writer), and the loom model in `tests/loom_spsc.rs` verifies exactly
// that on every explored interleaving. `T: Send` suffices because values
// only move between threads, they are never aliased.
unsafe impl<T: Send> Send for SpscRing<T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring holding at most `capacity` messages.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_base(capacity, 0)
    }

    /// Test seam: a ring whose cursors start at `base` instead of 0, so
    /// unit tests can exercise `usize` cursor wraparound in a few pushes
    /// instead of 2^64 of them. Not part of the public contract.
    #[doc(hidden)]
    pub fn with_capacity_and_base(capacity: usize, base: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(capacity <= MAX_CAPACITY, "ring capacity too large");
        let len = capacity.next_power_of_two();
        let slots: Vec<UnsafeCell<MaybeUninit<T>>> = (0..len)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Self {
            slots: slots.into_boxed_slice(),
            mask: len.wrapping_sub(1),
            capacity,
            head: AtomicUsize::new(base),
            tail: AtomicUsize::new(base),
            waiting: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            stalls: None,
        }
    }

    /// Attach a backpressure counter: each producer park on a full ring
    /// bumps it once. Builder-style, meant for construction time (the
    /// counter handle is a shared cell from [`crate::obs`]); the increment
    /// sits on the park slow path only, never on the lock-free fast path.
    #[must_use]
    pub fn with_stall_counter(mut self, stalls: Counter) -> Self {
        self.stalls = Some(stalls);
        self
    }

    /// Maximum number of queued messages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Messages currently queued (a racy snapshot when the peer is live).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.capacity)
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical slot for logical cursor `seq`. In range by
    /// construction: `mask == slots.len() - 1` with a power-of-two length.
    fn slot(&self, seq: usize) -> &UnsafeCell<MaybeUninit<T>> {
        &self.slots[seq & self.mask] // lint: index-ok (masked by slots.len() - 1)
    }

    fn sleep_lock(&self) -> MutexGuard<'_, ()> {
        // lint:allow(hot_path_purity): backpressure park path — push/pop
        // block by contract when the ring is full/empty; the fast path
        // never takes this lock (Dekker flag checked first)
        match self.sleep.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Lock-then-unlock-then-notify: the lock round-trip orders this wake
    /// after any sleeper's recheck-under-mutex, closing the lost-wakeup
    /// window (module docs, bullet 3).
    fn wake(&self, condvar: &Condvar) {
        drop(self.sleep_lock());
        condvar.notify_one();
    }

    /// Enqueue, blocking while the ring is full (backpressure). Returns
    /// `true` once the message is queued; `false` if the ring is poisoned
    /// (the item is dropped — nobody will ever read it).
    pub fn push(&self, item: T) -> bool {
        // Only the producer writes `tail`, so this plain read is exact.
        // lint:allow(no_relaxed, ordering_protocol): single-writer cursor reading its own writes
        let tail = self.tail.load(Ordering::Relaxed);
        // Deterministic queue-full stall (tests only): force one pass
        // through the park bookkeeping — Dekker flag plus
        // recheck-under-mutex — even when the ring has space.
        let mut forced_slow = matches!(
            crate::failpoint::io_fault("spsc::push"),
            Some(crate::failpoint::FailAction::Stall)
        );
        loop {
            if self.waiting.load(Ordering::SeqCst) & POISONED != 0 {
                return false;
            }
            let head = self.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < self.capacity && !forced_slow {
                break;
            }
            forced_slow = false;
            // Backpressure observed: count the stall (wait-free; we are
            // about to park anyway, so this is never on the fast path).
            if let Some(stalls) = &self.stalls {
                stalls.inc();
            }
            // Full: park. Dekker flag first, then recheck under the mutex.
            self.waiting.fetch_or(PRODUCER_PARKED, Ordering::SeqCst);
            let guard = self.sleep_lock();
            if self.waiting.load(Ordering::SeqCst) & POISONED == 0
                && tail.wrapping_sub(self.head.load(Ordering::SeqCst)) >= self.capacity
            {
                drop(self.wait(&self.not_full, guard));
            }
            self.waiting.fetch_and(!PRODUCER_PARKED, Ordering::SeqCst);
        }
        // SAFETY: `tail` is the producer's exclusive cursor and the loop
        // above observed the slot as vacant via an acquiring load of
        // `head`, so the consumer's last read of this slot happens-before
        // this write and nothing else touches it.
        self.slot(tail).with_mut(|p| unsafe {
            (*p).write(item);
        });
        // SeqCst, not just Release: the store also anchors the Dekker
        // handshake against a consumer concurrently deciding to park.
        // (`seam::publish` is an identity in production builds; weakening
        // tests demote it to seed the exact bug this ordering prevents.)
        self.tail.store(
            tail.wrapping_add(1),
            seam::publish(seam::Point::TailPublish, Ordering::SeqCst),
        );
        if self.waiting.load(Ordering::SeqCst) & CONSUMER_PARKED != 0 {
            self.wake(&self.not_empty);
        }
        true
    }

    /// Dequeue, blocking while the ring is empty. `None` means the ring is
    /// poisoned *and* its backlog is fully drained — nothing will ever
    /// arrive again.
    pub fn pop(&self) -> Option<T> {
        // Only the consumer writes `head`, so this plain read is exact.
        // lint:allow(no_relaxed, ordering_protocol): single-writer cursor reading its own writes
        let head = self.head.load(Ordering::Relaxed);
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            if tail != head {
                break;
            }
            // Empty: deliver the poison verdict only once the backlog is
            // gone, so no queued message is ever lost to a poison race.
            if self.waiting.load(Ordering::SeqCst) & POISONED != 0 {
                // The emptiness observation above may predate a push that
                // completed just before the poison. Re-read the cursor
                // *after* the poison flag (both SeqCst, so the single
                // total order makes a pre-poison publish visible here);
                // only a still-empty ring gets the verdict. The loom
                // model caught exactly this lost-message interleaving.
                if self.tail.load(Ordering::SeqCst) != head {
                    continue;
                }
                return None;
            }
            // Empty: park. Mirror image of the producer side.
            self.waiting.fetch_or(CONSUMER_PARKED, Ordering::SeqCst);
            let guard = self.sleep_lock();
            if self.waiting.load(Ordering::SeqCst) & POISONED == 0
                && self.tail.load(Ordering::SeqCst) == head
            {
                drop(self.wait(&self.not_empty, guard));
            }
            self.waiting.fetch_and(!CONSUMER_PARKED, Ordering::SeqCst);
        }
        Some(self.take(head))
    }

    /// Mark the ring dead and wake both sides. Idempotent.
    ///
    /// A dying worker (consumer) poisons its ring so the router is never
    /// left blocked pushing to a queue nobody reads; the supervisor also
    /// poisons a lane it is tearing down. Messages already queued remain
    /// poppable/drainable — poison stops *future* traffic, it does not
    /// destroy the backlog.
    pub fn poison(&self) {
        self.waiting.fetch_or(POISONED, Ordering::SeqCst);
        // Lock round-trip orders this wake after any sleeper's
        // recheck-under-mutex, exactly like `wake`.
        drop(self.sleep_lock());
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`poison`](SpscRing::poison) has been called.
    pub fn is_poisoned(&self) -> bool {
        self.waiting.load(Ordering::SeqCst) & POISONED != 0
    }

    /// Salvage the queued backlog without blocking.
    ///
    /// Intended for the supervisor after the consumer has died: the
    /// single-consumer contract passes to the caller, which must therefore
    /// have observed the previous consumer's exit (joined its thread)
    /// before draining.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.try_pop() {
            out.push(item);
        }
        out
    }

    /// Dequeue if a message is ready; never blocks.
    pub fn try_pop(&self) -> Option<T> {
        // lint:allow(no_relaxed, ordering_protocol): single-writer cursor reading its own writes
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        Some(self.take(head))
    }

    /// Move the value out of the slot at `head` and publish the free slot.
    fn take(&self, head: usize) -> T {
        // SAFETY: a non-empty ring was observed via an acquiring load of
        // `tail`, so the producer's initialisation of this slot
        // happens-before this read; only the consumer moves values out,
        // and only once per cursor position.
        let item = self.slot(head).with(|p| unsafe { (*p).assume_init_read() });
        // SeqCst for the same Dekker reason as the `tail` store in `push`.
        self.head.store(
            head.wrapping_add(1),
            seam::publish(seam::Point::HeadPublish, Ordering::SeqCst),
        );
        if self.waiting.load(Ordering::SeqCst) & PRODUCER_PARKED != 0 {
            self.wake(&self.not_full);
        }
        item
    }

    fn wait<'a>(&self, condvar: &Condvar, guard: MutexGuard<'a, ()>) -> MutexGuard<'a, ()> {
        // lint:allow(hot_path_purity): parking slow path — blocking while
        // full/empty is the documented contract of push/pop themselves
        match condvar.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        let tail = self.tail.load(Ordering::Acquire);
        let mut seq = self.head.load(Ordering::Acquire);
        while seq != tail {
            // SAFETY: `&mut self` is exclusive, and every slot in
            // `[head, tail)` holds an initialised value that was never
            // moved out.
            self.slot(seq).with_mut(|p| unsafe {
                (*p).assume_init_drop();
            });
            seq = seq.wrapping_add(1);
        }
    }
}

impl<T> std::fmt::Debug for SpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscRing")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let ring = SpscRing::with_capacity(4);
        assert!(ring.push(1));
        assert!(ring.push(2));
        assert!(ring.push(3));
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert!(ring.try_pop().is_none());
    }

    #[test]
    fn blocks_until_capacity_frees() {
        let ring = Arc::new(SpscRing::with_capacity(2));
        ring.push(1);
        ring.push(2);
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(3)) // blocks until a pop
        };
        assert_eq!(ring.pop(), Some(1));
        assert!(producer.join().expect("producer completes after the pop"));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
    }

    #[test]
    fn cross_thread_stream() {
        let ring = Arc::new(SpscRing::with_capacity(8));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut sum = 0u64;
                loop {
                    match ring.pop() {
                        Some(0) | None => return sum,
                        Some(v) => sum += v,
                    }
                }
            })
        };
        for v in 1..=100u64 {
            ring.push(v);
        }
        ring.push(0);
        assert_eq!(consumer.join().unwrap(), 5050);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpscRing::<u32>::with_capacity(0);
    }

    #[test]
    fn capacity_one_alternates_under_backpressure() {
        let ring = Arc::new(SpscRing::with_capacity(1));
        assert_eq!(ring.capacity(), 1);
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || (0..200).map(|_| ring.pop().unwrap()).collect::<Vec<u32>>())
        };
        for v in 0..200u32 {
            ring.push(v); // every push races the single free slot
        }
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn full_queue_reports_len_and_backpressure() {
        let ring = SpscRing::with_capacity(3);
        assert!(ring.is_empty());
        ring.push(10);
        ring.push(11);
        ring.push(12);
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
        // try_pop frees exactly one slot; order is preserved.
        assert_eq!(ring.try_pop(), Some(10));
        assert_eq!(ring.len(), 2);
        ring.push(13);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pop(), Some(11));
        assert_eq!(ring.pop(), Some(12));
        assert_eq!(ring.pop(), Some(13));
        assert!(ring.try_pop().is_none());
    }

    #[test]
    fn survives_usize_cursor_wraparound() {
        // Cursors start 2 below usize::MAX, so they wrap within a few
        // pushes; capacity 3 also exercises non-power-of-two rounding.
        let ring = SpscRing::with_capacity_and_base(3, usize::MAX - 2);
        for round in 0..4u64 {
            ring.push(round * 10);
            ring.push(round * 10 + 1);
            ring.push(round * 10 + 2);
            assert_eq!(ring.len(), 3);
            assert_eq!(ring.pop(), Some(round * 10));
            assert_eq!(ring.pop(), Some(round * 10 + 1));
            assert_eq!(ring.pop(), Some(round * 10 + 2));
        }
        assert!(ring.try_pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn cross_thread_stream_across_wraparound() {
        let ring = Arc::new(SpscRing::with_capacity_and_base(4, usize::MAX - 7));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut sum = 0u64;
                loop {
                    match ring.pop() {
                        Some(0) | None => return sum,
                        Some(v) => sum += v,
                    }
                }
            })
        };
        for v in 1..=100u64 {
            ring.push(v);
        }
        ring.push(0);
        assert_eq!(consumer.join().unwrap(), 5050);
    }

    struct DropCounter(Arc<StdAtomicUsize>);

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, StdOrdering::SeqCst);
        }
    }

    #[test]
    fn dropping_the_ring_drops_items_in_flight() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let ring = SpscRing::with_capacity(4);
        for _ in 0..3 {
            ring.push(DropCounter(Arc::clone(&drops)));
        }
        drop(ring.try_pop().expect("one item popped"));
        assert_eq!(drops.load(StdOrdering::SeqCst), 1, "popped value dropped");
        drop(ring);
        assert_eq!(
            drops.load(StdOrdering::SeqCst),
            3,
            "the two undelivered items must be dropped with the ring"
        );
    }

    #[test]
    fn poison_refuses_new_but_keeps_backlog() {
        let ring = SpscRing::with_capacity(4);
        assert!(ring.push(1));
        assert!(ring.push(2));
        assert!(!ring.is_poisoned());
        ring.poison();
        assert!(ring.is_poisoned());
        assert!(!ring.push(3), "poisoned ring refuses new messages");
        // The backlog queued before the poison is still delivered...
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        // ...and only then does pop report the poison verdict.
        assert_eq!(ring.pop(), None);
        ring.poison(); // idempotent
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn poison_unblocks_a_parked_producer() {
        let ring = Arc::new(SpscRing::with_capacity(1));
        assert!(ring.push(1));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(2)) // blocks: ring full
        };
        // Give the producer a moment to park, then poison instead of pop:
        // it must return false rather than block forever.
        std::thread::sleep(std::time::Duration::from_millis(20));
        ring.poison();
        assert!(!producer.join().unwrap(), "poison released the producer");
    }

    #[test]
    fn poison_unblocks_a_parked_consumer() {
        let ring = Arc::new(SpscRing::<u32>::with_capacity(2));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.pop()) // blocks: ring empty
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        ring.poison();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn drain_salvages_backlog_after_consumer_death() {
        let ring = Arc::new(SpscRing::with_capacity(8));
        for v in 0..5u32 {
            ring.push(v);
        }
        // A consumer that dies mid-stream: pops two, poisons, exits.
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let got = (ring.pop(), ring.pop());
                ring.poison();
                got
            })
        };
        assert_eq!(consumer.join().unwrap(), (Some(0), Some(1)));
        // The supervisor joined the consumer above, so it now owns the
        // consumer role and can salvage the rest.
        assert_eq!(ring.drain(), vec![2, 3, 4]);
        assert_eq!(ring.drain(), Vec::<u32>::new());
    }

    #[test]
    fn stall_counter_counts_producer_parks() {
        use crate::obs::Counter;
        let stalls = Counter::new();
        let ring = Arc::new(SpscRing::with_capacity(1).with_stall_counter(stalls.clone()));
        ring.push(1u32);
        assert_eq!(stalls.get(), 0, "fast-path pushes never count");
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(2)) // full: must park
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ring.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert!(stalls.get() >= 1, "the blocked push counted a stall");
        assert_eq!(ring.pop(), Some(2));
    }

    #[test]
    fn empty_ring_drops_nothing_extra() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let ring = SpscRing::with_capacity(2);
        ring.push(DropCounter(Arc::clone(&drops)));
        drop(ring.pop().unwrap());
        drop(ring);
        assert_eq!(drops.load(StdOrdering::SeqCst), 1);
    }
}
