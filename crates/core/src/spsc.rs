//! Bounded hand-off queues for the parallel pipeline.
//!
//! [`SpscRing`] is the rendezvous between the routing thread and one worker
//! of [`crate::pipeline::ParallelLtc`]: a bounded FIFO ring used
//! single-producer/single-consumer (the type itself is thread-safe for any
//! number of parties; the pipeline simply never shares one ring between two
//! producers). The bound is the pipeline's backpressure: when a worker falls
//! behind, [`push`](SpscRing::push) blocks the router instead of queueing
//! unbounded memory.
//!
//! The core crate forbids `unsafe`, so the ring is a `Mutex<VecDeque>` with
//! two condition variables rather than an atomics-based ring. That costs one
//! uncontended lock per *message* — which is why the pipeline hands off
//! whole batches of records per message, amortising the lock to a fraction
//! of a nanosecond per record.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded FIFO hand-off queue. See the module docs.
#[derive(Debug)]
pub struct SpscRing<T> {
    inner: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> SpscRing<T> {
    /// A ring holding at most `capacity` messages.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued messages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, blocking while the ring is full (backpressure).
    pub fn push(&self, item: T) {
        let mut q = self.inner.lock().expect("ring poisoned");
        while q.len() >= self.capacity {
            q = self.not_full.wait(q).expect("ring poisoned");
        }
        q.push_back(item);
        drop(q);
        self.not_empty.notify_one();
    }

    /// Dequeue, blocking while the ring is empty.
    pub fn pop(&self) -> T {
        let mut q = self.inner.lock().expect("ring poisoned");
        while q.is_empty() {
            q = self.not_empty.wait(q).expect("ring poisoned");
        }
        let item = q.pop_front().expect("non-empty after wait");
        drop(q);
        self.not_full.notify_one();
        item
    }

    /// Dequeue if a message is ready; never blocks.
    pub fn try_pop(&self) -> Option<T> {
        let mut q = self.inner.lock().expect("ring poisoned");
        let item = q.pop_front();
        if item.is_some() {
            drop(q);
            self.not_full.notify_one();
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let ring = SpscRing::with_capacity(4);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        assert_eq!(ring.pop(), 1);
        assert_eq!(ring.pop(), 2);
        assert_eq!(ring.pop(), 3);
        assert!(ring.try_pop().is_none());
    }

    #[test]
    fn blocks_until_capacity_frees() {
        let ring = Arc::new(SpscRing::with_capacity(2));
        ring.push(1);
        ring.push(2);
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(3)) // blocks until a pop
        };
        assert_eq!(ring.pop(), 1);
        producer.join().expect("producer completes after the pop");
        assert_eq!(ring.pop(), 2);
        assert_eq!(ring.pop(), 3);
    }

    #[test]
    fn cross_thread_stream() {
        let ring = Arc::new(SpscRing::with_capacity(8));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut sum = 0u64;
                loop {
                    match ring.pop() {
                        0 => return sum,
                        v => sum += v,
                    }
                }
            })
        };
        for v in 1..=100u64 {
            ring.push(v);
        }
        ring.push(0);
        assert_eq!(consumer.join().unwrap(), 5050);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpscRing::<u32>::with_capacity(0);
    }
}
