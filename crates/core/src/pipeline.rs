//! Multi-threaded sharded ingestion pipeline.
//!
//! [`ParallelLtc`] is the threaded runtime over the hash-sharding scheme of
//! [`crate::sharded`]: `N` worker threads, each owning one [`Ltc`] shard,
//! fed through bounded [`SpscRing`] queues with **batched hand-off** —
//! the routing side accumulates each shard's records into a batch and sends
//! whole batches, so queue synchronisation is paid once per batch while the
//! workers ingest through the bit-exact [`Ltc::insert_batch`] hot path.
//!
//! ## Equivalence to the single-threaded runtime
//!
//! The shard tables are built by [`ShardedLtc::new`] itself (same per-shard
//! seed perturbation) and records are routed by the same
//! [`shard_of_id`] hash in stream order, so after the same records and the
//! same period boundaries every shard is **bit-identical** to the
//! corresponding shard of a single-threaded [`ShardedLtc`] fed the same
//! stream — parallelism changes only who does the work, never the result.
//! An integration test pins this.
//!
//! ## Period coordination
//!
//! [`end_period`](ParallelLtc::end_period) is an epoch barrier: it flushes
//! every pending batch, enqueues an `EndPeriod` message behind them on every
//! queue, and blocks until all workers acknowledge it. Because each queue is
//! FIFO, every record inserted before the call lands in its shard before
//! the period closes — the parallel stream observes exactly the same period
//! boundaries as a sequential one.
//!
//! ## Queries
//!
//! [`estimate`](SignificanceQuery::estimate) and
//! [`top_k`](SignificanceQuery::top_k) first drain the pipeline (flush +
//! barrier), then read the shard tables under their locks and merge, so a
//! query observes every record inserted before it.

use crate::config::LtcConfig;
use crate::sharded::{shard_of_id, ShardedLtc};
use crate::spsc::SpscRing;
use crate::table::Ltc;
use ltc_common::{
    top_k_of, BatchStreamProcessor, Estimate, ItemId, MemoryUsage, SignificanceQuery,
    StreamProcessor,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Records accumulated per shard before a batch is handed to its worker.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Messages queued per worker before the router blocks (backpressure).
const RING_CAPACITY: usize = 8;

/// One unit of work for a shard worker.
enum Msg {
    /// Ingest a run of records (already routed to this shard, in order).
    Batch(Vec<ItemId>),
    /// Close the current period (epoch barrier point).
    EndPeriod,
    /// Stream over: harvest final-period flags.
    Finish,
    /// Exit the worker loop.
    Shutdown,
}

/// Poison-tolerant lock. A worker that panicked is surfaced by the barrier
/// (its progress counter stops advancing) or by `into_sharded`'s join
/// check — not by cascading poison panics through every query path.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Monotone completion counter a worker bumps after every message, with a
/// condvar so the router can wait for a target — the ack half of the epoch
/// barrier.
///
/// Built on [`crate::shim`] primitives and exposed (`#[doc(hidden)]`) so
/// `tests/loom_barrier.rs` can model-check the wait/bump handshake under
/// every bounded interleaving: `wait_for(t)` must never return before `t`
/// bumps happened, and must never miss a wakeup (which the model would
/// report as a deadlock). Not part of the public API.
#[doc(hidden)]
#[derive(Debug)]
pub struct Progress {
    done: crate::shim::Mutex<u64>,
    changed: crate::shim::Condvar,
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

impl Progress {
    /// A counter at zero.
    pub fn new() -> Self {
        Self {
            done: crate::shim::Mutex::new(0),
            changed: crate::shim::Condvar::new(),
        }
    }

    /// Record one completed message and wake any waiting router.
    pub fn bump(&self) {
        let mut done = match self.done.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *done = done.saturating_add(1);
        drop(done);
        self.changed.notify_all();
    }

    /// Block until at least `target` messages have completed. The
    /// predicate is (re)checked under the same lock `bump` holds while
    /// incrementing, so a wakeup between the check and the wait cannot be
    /// lost — `tests/loom_barrier.rs` proves a check-then-wait variant
    /// without that discipline deadlocks.
    pub fn wait_for(&self, target: u64) {
        let mut done = match self.done.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        while *done < target {
            done = match self.changed.wait(done) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// Routing-side state that queries (which only hold `&self`) also need to
/// mutate, so it lives behind one mutex. The insertion hot path reaches it
/// through `Mutex::get_mut` — statically exclusive via `&mut self`, no
/// runtime locking.
#[derive(Debug)]
struct Router {
    /// Per-shard batch under construction.
    pending: Vec<Vec<ItemId>>,
    /// Messages enqueued per worker (the barrier's send-side count).
    sent: Vec<u64>,
}

/// The multi-threaded sharded LTC runtime. See the module docs.
pub struct ParallelLtc {
    router: Mutex<Router>,
    queues: Vec<Arc<SpscRing<Msg>>>,
    progress: Vec<Arc<Progress>>,
    shards: Vec<Arc<Mutex<Ltc>>>,
    workers: Vec<JoinHandle<()>>,
    batch_size: usize,
}

impl std::fmt::Debug for ParallelLtc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelLtc")
            .field("num_shards", &self.shards.len())
            .field("batch_size", &self.batch_size)
            .finish_non_exhaustive()
    }
}

impl ParallelLtc {
    /// Spawn `num_shards` workers, each owning an LTC shard identical to
    /// shard `i` of `ShardedLtc::new(config, num_shards)`.
    pub fn new(config: LtcConfig, num_shards: usize) -> Self {
        Self::with_batch_size(config, num_shards, DEFAULT_BATCH_SIZE)
    }

    /// [`new`](ParallelLtc::new) with an explicit hand-off batch size.
    /// Larger batches amortise queue synchronisation further but delay when
    /// workers see records; [`DEFAULT_BATCH_SIZE`] suits most streams.
    pub fn with_batch_size(config: LtcConfig, num_shards: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        // Delegate shard construction so seeding matches ShardedLtc exactly.
        let shards: Vec<Arc<Mutex<Ltc>>> = ShardedLtc::new(config, num_shards)
            .into_shards()
            .into_iter()
            .map(|ltc| Arc::new(Mutex::new(ltc)))
            .collect();
        let queues: Vec<Arc<SpscRing<Msg>>> = (0..num_shards)
            .map(|_| Arc::new(SpscRing::with_capacity(RING_CAPACITY)))
            .collect();
        let progress: Vec<Arc<Progress>> =
            (0..num_shards).map(|_| Arc::new(Progress::new())).collect();
        let workers = queues
            .iter()
            .zip(&shards)
            .zip(&progress)
            .enumerate()
            .map(|(i, ((queue, shard), progress))| {
                let queue = Arc::clone(queue);
                let shard = Arc::clone(shard);
                let progress = Arc::clone(progress);
                std::thread::Builder::new()
                    .name(format!("ltc-shard-{i}"))
                    .spawn(move || worker_loop(&queue, &shard, &progress))
                    .expect("spawn shard worker") // lint:allow(no_panic): startup-only, cannot be handled locally
            })
            .collect();
        Self {
            router: Mutex::new(Router {
                pending: vec![Vec::with_capacity(batch_size); num_shards],
                sent: vec![0; num_shards],
            }),
            queues,
            progress,
            shards,
            workers,
            batch_size,
        }
    }

    /// Number of shards (= worker threads).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Hand-off batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Route one record to its shard's pending batch; hand the batch off
    /// when it fills. The hot path: one shard hash, one push, no locks.
    #[inline]
    pub fn insert(&mut self, id: ItemId) {
        let n = self.shards.len();
        let batch_size = self.batch_size;
        let shard = shard_of_id(id, n);
        let router = match self.router.get_mut() {
            Ok(router) => router,
            Err(poisoned) => poisoned.into_inner(),
        };
        // `shard_of_id` returns a value below `n`, so the lookups succeed.
        if let (Some(pending), Some(sent), Some(queue)) = (
            router.pending.get_mut(shard),
            router.sent.get_mut(shard),
            self.queues.get(shard),
        ) {
            route_one(pending, sent, queue, batch_size, id);
        }
    }

    /// Route a whole run of records — one routing pass, then per-shard
    /// hand-off of every batch that filled.
    pub fn insert_batch(&mut self, ids: &[ItemId]) {
        let n = self.shards.len();
        let batch_size = self.batch_size;
        let queues = &self.queues;
        let router = match self.router.get_mut() {
            Ok(router) => router,
            Err(poisoned) => poisoned.into_inner(),
        };
        for &id in ids {
            let shard = shard_of_id(id, n);
            if let (Some(pending), Some(sent), Some(queue)) = (
                router.pending.get_mut(shard),
                router.sent.get_mut(shard),
                queues.get(shard),
            ) {
                route_one(pending, sent, queue, batch_size, id);
            }
        }
    }

    /// Epoch barrier: every record routed so far reaches its shard, all
    /// shards close the period, and the call returns only once every worker
    /// has acknowledged — the parallel stream sees the same period boundary
    /// on every shard.
    pub fn end_period(&mut self) {
        self.broadcast_and_wait(|| Msg::EndPeriod);
    }

    /// Flush + finalize every shard (harvest last-period CLOCK flags), with
    /// the same barrier semantics as [`end_period`](ParallelLtc::end_period).
    pub fn finish(&mut self) {
        self.broadcast_and_wait(|| Msg::Finish);
    }

    /// Drain the pipeline: flush pending batches and wait until every
    /// worker has processed everything sent. Queries call this first.
    pub fn sync(&self) {
        let targets: Vec<u64> = {
            let mut router = lock_recover(&self.router);
            flush_pending(&mut router, &self.queues, self.batch_size);
            router.sent.clone()
        };
        for (progress, &target) in self.progress.iter().zip(&targets) {
            progress.wait_for(target);
        }
    }

    /// Flush, enqueue a control message (built by `make`) on every queue,
    /// and wait for full acknowledgment.
    fn broadcast_and_wait(&mut self, make: impl Fn() -> Msg) {
        let queues = &self.queues;
        let router = match self.router.get_mut() {
            Ok(router) => router,
            Err(poisoned) => poisoned.into_inner(),
        };
        flush_pending(router, queues, self.batch_size);
        for (sent, queue) in router.sent.iter_mut().zip(queues) {
            *sent = sent.saturating_add(1);
            queue.push(make());
        }
        let targets = router.sent.clone();
        for (progress, &target) in self.progress.iter().zip(&targets) {
            progress.wait_for(target);
        }
    }

    /// Stop the workers (after draining everything queued) and reassemble
    /// the shards into a single-threaded [`ShardedLtc`] for further use —
    /// the inverse of spinning the runtime up.
    pub fn into_sharded(mut self) -> ShardedLtc {
        self.broadcast_and_wait(|| Msg::Shutdown);
        let mut panicked = false;
        for worker in self.workers.drain(..) {
            panicked |= worker.join().is_err();
        }
        assert!(!panicked, "shard worker panicked");
        let shards = self
            .shards
            .drain(..)
            .map(|arc| match Arc::try_unwrap(arc) {
                Ok(mutex) => match mutex.into_inner() {
                    Ok(shard) => shard,
                    Err(poisoned) => poisoned.into_inner(),
                },
                // Unreachable once the workers (the only other handle
                // owners) have exited; cloning keeps this total anyway.
                Err(arc) => lock_recover(&arc).clone(),
            })
            .collect();
        ShardedLtc::from_shards(shards)
    }
}

impl Drop for ParallelLtc {
    fn drop(&mut self) {
        // `into_sharded` already drained and joined; otherwise stop cleanly.
        if !self.workers.is_empty() {
            self.broadcast_and_wait(|| Msg::Shutdown);
            for worker in self.workers.drain(..) {
                // A panicked worker already surfaced its state as poisoned;
                // don't double-panic in drop.
                let _ = worker.join();
            }
        }
    }
}

/// Push `id` onto a shard's pending batch, handing the whole batch to the
/// shard's queue once it fills.
#[inline]
fn route_one(
    pending: &mut Vec<ItemId>,
    sent: &mut u64,
    queue: &SpscRing<Msg>,
    batch_size: usize,
    id: ItemId,
) {
    pending.push(id);
    if pending.len() >= batch_size {
        let batch = std::mem::replace(pending, Vec::with_capacity(batch_size));
        *sent = sent.saturating_add(1);
        queue.push(Msg::Batch(batch));
    }
}

/// Hand off every non-empty pending batch to its worker's queue.
fn flush_pending(router: &mut Router, queues: &[Arc<SpscRing<Msg>>], batch_size: usize) {
    let batches = router.pending.iter_mut().zip(router.sent.iter_mut());
    for ((pending, sent), queue) in batches.zip(queues) {
        if !pending.is_empty() {
            let batch = std::mem::replace(pending, Vec::with_capacity(batch_size));
            *sent = sent.saturating_add(1);
            queue.push(Msg::Batch(batch));
        }
    }
}

fn worker_loop(queue: &SpscRing<Msg>, shard: &Mutex<Ltc>, progress: &Progress) {
    loop {
        let msg = queue.pop();
        let stop = matches!(msg, Msg::Shutdown);
        match msg {
            Msg::Batch(ids) => lock_recover(shard).insert_batch(&ids),
            Msg::EndPeriod => lock_recover(shard).end_period(),
            Msg::Finish => lock_recover(shard).finalize(),
            Msg::Shutdown => {}
        }
        progress.bump();
        if stop {
            return;
        }
    }
}

impl StreamProcessor for ParallelLtc {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        ParallelLtc::insert(self, id);
    }

    fn end_period(&mut self) {
        ParallelLtc::end_period(self);
    }

    fn finish(&mut self) {
        ParallelLtc::finish(self);
    }

    fn name(&self) -> &'static str {
        "LTC-parallel"
    }
}

impl BatchStreamProcessor for ParallelLtc {
    #[inline]
    fn insert_batch(&mut self, ids: &[ItemId]) {
        ParallelLtc::insert_batch(self, ids);
    }
}

impl SignificanceQuery for ParallelLtc {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.sync();
        let shard = shard_of_id(id, self.shards.len());
        self.shards
            .get(shard)
            .and_then(|shard| lock_recover(shard).estimate(id))
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        self.sync();
        let candidates: Vec<Estimate> = self
            .shards
            .iter()
            .flat_map(|shard| lock_recover(shard).top_k(k))
            .collect();
        top_k_of(candidates, k)
    }
}

impl MemoryUsage for ParallelLtc {
    fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| lock_recover(shard).memory_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_common::Weights;

    fn config() -> LtcConfig {
        LtcConfig::builder()
            .buckets(32)
            .cells_per_bucket(4)
            .weights(Weights::BALANCED)
            .records_per_period(100)
            .seed(7)
            .build()
    }

    #[test]
    fn single_shard_roundtrip() {
        let mut p = ParallelLtc::new(config(), 1);
        for i in 0..500u64 {
            p.insert(i % 25);
        }
        p.end_period();
        p.finish();
        assert_eq!(p.top_k(5).len(), 5);
    }

    #[test]
    fn matches_sharded_ltc_exactly() {
        // The core equivalence: same records, same boundaries → every shard
        // bit-identical to the single-threaded ShardedLtc (compared via the
        // full Debug rendering, which covers cells, CLOCK and stats).
        let shards = 4;
        let mut reference = ShardedLtc::new(config(), shards);
        let mut parallel = ParallelLtc::with_batch_size(config(), shards, 16);
        for period in 0..5u64 {
            for i in 0..200u64 {
                let id = period * 7 + i * 3;
                reference.insert(id);
                parallel.insert(id);
            }
            reference.end_period();
            parallel.end_period();
        }
        reference.finalize();
        parallel.finish();
        let reassembled = parallel.into_sharded();
        for s in 0..shards {
            assert_eq!(
                format!("{:?}", reference.shard(s)),
                format!("{:?}", reassembled.shard(s)),
                "shard {s} diverged"
            );
        }
    }

    #[test]
    fn queries_observe_all_prior_inserts() {
        let mut p = ParallelLtc::with_batch_size(config(), 3, 64);
        for _ in 0..10 {
            p.insert(42);
        }
        // 42's batch is still pending; the query must flush + drain first.
        assert_eq!(p.estimate(42), Some(10.0));
    }

    #[test]
    fn drop_without_finish_is_clean() {
        let mut p = ParallelLtc::new(config(), 2);
        for i in 0..100u64 {
            p.insert(i);
        }
        drop(p); // must not hang or leak threads
    }

    #[test]
    fn memory_sums_over_shards() {
        let p = ParallelLtc::new(config(), 3);
        assert_eq!(p.memory_bytes(), 3 * 32 * 4 * 16);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let _ = ParallelLtc::with_batch_size(config(), 2, 0);
    }
}
