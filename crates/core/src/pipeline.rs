//! Multi-threaded sharded ingestion pipeline with supervised workers.
//!
//! [`ParallelLtc`] is the threaded runtime over the hash-sharding scheme of
//! [`crate::sharded`]: `N` worker threads, each owning one [`Ltc`] shard,
//! fed through bounded [`SpscRing`] queues with **batched hand-off** —
//! the routing side accumulates each shard's records into a batch and sends
//! whole batches, so queue synchronisation is paid once per batch while the
//! workers ingest through the bit-exact [`Ltc::insert_batch`] hot path.
//!
//! ## Equivalence to the single-threaded runtime
//!
//! The shard tables are built by [`ShardedLtc::new`] itself (same per-shard
//! seed perturbation) and records are routed by the same
//! [`shard_of_id`] hash in stream order, so after the same records and the
//! same period boundaries every shard is **bit-identical** to the
//! corresponding shard of a single-threaded [`ShardedLtc`] fed the same
//! stream — parallelism changes only who does the work, never the result
//! (on the fault-free path). An integration test pins this.
//!
//! ## Period coordination
//!
//! [`end_period`](ParallelLtc::end_period) is an epoch barrier: it flushes
//! every pending batch, enqueues an `EndPeriod` message behind them on every
//! queue, and blocks until all workers acknowledge it. Because each queue is
//! FIFO, every record inserted before the call lands in its shard before
//! the period closes — the parallel stream observes exactly the same period
//! boundaries as a sequential one.
//!
//! ## Fault model and supervision
//!
//! A shard worker that panics (a bug, a poisoned input, an injected
//! failpoint) no longer aborts the process. The worker catches the unwind,
//! reports a typed [`WorkerFault`] to the coordinator, poisons its queue
//! (so the router can never block on it) and marks its [`Progress`] barrier
//! dead (so a waiting `end_period` returns instead of deadlocking). The
//! coordinator then *supervises* the lane:
//!
//! 1. the dead worker is joined and its fault collected;
//! 2. the shard table is rolled back to its **last checkpoint** — a
//!    snapshot the worker captures at every period boundary (configurable
//!    via [`FaultPolicy::checkpoint_every_periods`]);
//! 3. within the retry budget ([`FaultPolicy::max_restarts`]) a fresh
//!    worker is spawned on a fresh queue after an exponential backoff, and
//!    any barrier message still in flight is re-sent so the epoch
//!    boundary completes;
//! 4. once the budget is exhausted the shard is marked **lossy**: records
//!    routed to it are dropped (and counted), while queries keep serving
//!    the shard's last-good state alongside the healthy shards.
//!
//! Records between the last checkpoint and the fault are lost — that is the
//! documented recovery semantic (at-most-once per shard epoch), and
//! [`ShardHealth`] reports both the restarts and a lower bound on the loss.
//! Operations that can observe a degraded runtime return
//! `Result<_, RuntimeError>`; the [`StreamProcessor`]/[`SignificanceQuery`]
//! trait impls stay infallible by design and serve best-effort degraded
//! answers instead.
//!
//! ## Queries
//!
//! [`estimate`](SignificanceQuery::estimate) and
//! [`top_k`](SignificanceQuery::top_k) first drain the pipeline (flush +
//! barrier), then read the shard tables under their locks and merge, so a
//! query observes every record inserted before it.

use crate::config::{FaultPolicy, LtcConfig};
use crate::obs::audit::HealthAuditor;
use crate::obs::trace::{names, SpanCtx, TraceTrack};
use crate::obs::{RuntimeObs, ShardObs};
use crate::sharded::{shard_of_id, ShardedLtc};
use crate::spsc::SpscRing;
use crate::stats::LtcStats;
use crate::table::Ltc;
use ltc_common::{
    top_k_of, BatchStreamProcessor, Estimate, ItemId, MemoryUsage, SignificanceQuery,
    StreamProcessor,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Nanoseconds elapsed since `start`, clamped into `u64` (580 years — the
/// clamp is for the type, not a reachable value).
#[inline]
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Records accumulated per shard before a batch is handed to its worker.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Messages queued per worker before the router blocks (backpressure).
const RING_CAPACITY: usize = 8;

/// One unit of work for a shard worker. Each message carries the trace
/// context of the router-side span that produced it (`None` when tracing
/// is off), so the worker's apply span joins the same causal tree across
/// the SPSC boundary.
enum Msg {
    /// Ingest a run of records (already routed to this shard, in order).
    /// The context is the router's `batch_enqueue` span.
    Batch(Vec<ItemId>, Option<SpanCtx>),
    /// Close the current period (epoch barrier point). The context is the
    /// router's `barrier_wait` span.
    EndPeriod(Option<SpanCtx>),
    /// Stream over: harvest final-period flags.
    Finish(Option<SpanCtx>),
    /// Exit the worker loop.
    Shutdown,
}

/// Control messages the barrier can (re-)broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctrl {
    EndPeriod,
    Finish,
    Shutdown,
}

impl Ctrl {
    /// The queue message for this control, carrying the barrier span's
    /// context (re-sends after a restart pass `None`: the original barrier
    /// span has already closed by then).
    fn to_msg(self, ctx: Option<SpanCtx>) -> Msg {
        match self {
            Ctrl::EndPeriod => Msg::EndPeriod(ctx),
            Ctrl::Finish => Msg::Finish(ctx),
            Ctrl::Shutdown => Msg::Shutdown,
        }
    }
}

/// How a worker died — the typed half of a [`WorkerFault`], also used as
/// the `kind` label of the `ltc_worker_faults_total` metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The worker's message handler panicked (caught by `catch_unwind`).
    Panic,
    /// The OS refused to spawn a replacement thread.
    SpawnFailed,
    /// The worker exited without leaving a fault report (should not
    /// happen; kept typed so it is visible if it ever does).
    Silent,
}

impl FaultKind {
    /// Stable lowercase name, used as a metric label value.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::SpawnFailed => "spawn_failed",
            FaultKind::Silent => "silent",
        }
    }

    /// Stable numeric code, carried in journal events' `detail` word.
    pub fn code(self) -> u64 {
        match self {
            FaultKind::Panic => 0,
            FaultKind::SpawnFailed => 1,
            FaultKind::Silent => 2,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed report of one worker death, surfaced to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Which shard's worker died.
    pub shard: usize,
    /// How it died.
    pub kind: FaultKind,
    /// The panic message (or a description of the spawn failure).
    pub message: String,
}

impl std::fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} worker died ({}): {}",
            self.shard, self.kind, self.message
        )
    }
}

/// Error surface of the supervised runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// One or more shards exhausted their restart budget and are lossy:
    /// they serve their last-good state but accept no new records. The
    /// runtime remains usable in this degraded mode.
    ShardsLost {
        /// The terminal fault of every lossy shard, in shard order.
        faults: Vec<WorkerFault>,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ShardsLost { faults } => {
                write!(
                    f,
                    "{} shard(s) lossy after exhausting restarts:",
                    faults.len()
                )?;
                for fault in faults {
                    write!(f, " [{fault}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Per-shard health as reported by [`ParallelLtc::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardHealth {
    /// The worker is live (possibly after supervised restarts).
    Healthy {
        /// Restarts consumed so far (0 = never faulted).
        restarts: u32,
        /// Lower bound on records dropped during past recoveries.
        records_lost: u64,
        /// Journal sequence number of this shard's most recent
        /// [`crate::obs::EventKind::WorkerFault`] event — correlate with
        /// drained journal events. `None` until the shard first faults
        /// (or when the runtime was built without observability).
        last_fault_seq: Option<u64>,
    },
    /// The restart budget is exhausted; the shard serves its last-good
    /// state and drops new records.
    Lossy {
        /// The terminal fault.
        fault: WorkerFault,
        /// Restarts consumed before the budget ran out.
        restarts: u32,
        /// Lower bound on records dropped (recoveries + post-degradation).
        records_lost: u64,
        /// Journal sequence number of the most recent fault event (see
        /// the `Healthy` variant).
        last_fault_seq: Option<u64>,
    },
}

impl ShardHealth {
    /// Restarts consumed, whatever the state.
    pub fn restarts(&self) -> u32 {
        match self {
            ShardHealth::Healthy { restarts, .. } | ShardHealth::Lossy { restarts, .. } => {
                *restarts
            }
        }
    }

    /// Journal seq of the most recent fault event on this shard, if any.
    pub fn last_fault_seq(&self) -> Option<u64> {
        match self {
            ShardHealth::Healthy { last_fault_seq, .. }
            | ShardHealth::Lossy { last_fault_seq, .. } => *last_fault_seq,
        }
    }
}

/// Poison-tolerant lock. A worker that panicked is surfaced by the typed
/// fault path (its queue is poisoned and its barrier marked dead) — not by
/// cascading poison panics through every query path.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Returned by [`Progress::wait_for`] when the worker behind the barrier
/// died before reaching the target: the waiter must run supervision
/// instead of blocking forever.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

#[derive(Debug)]
struct ProgressState {
    done: u64,
    dead: bool,
}

/// Monotone completion counter a worker bumps after every message, with a
/// condvar so the router can wait for a target — the ack half of the epoch
/// barrier — plus a `dead` flag the worker raises when it dies, so the
/// router's wait returns [`BarrierPoisoned`] instead of deadlocking.
///
/// Built on [`crate::shim`] primitives and exposed (`#[doc(hidden)]`) so
/// `tests/loom_barrier.rs` can model-check the wait/bump/mark-dead
/// handshake under every bounded interleaving: `wait_for(t)` must never
/// return `Ok` before `t` bumps happened, must never miss a wakeup, and
/// must return `Err` in every interleaving where the worker dies short of
/// the target. Not part of the public API.
#[doc(hidden)]
#[derive(Debug)]
pub struct Progress {
    state: crate::shim::Mutex<ProgressState>,
    changed: crate::shim::Condvar,
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

impl Progress {
    /// A counter at zero.
    pub fn new() -> Self {
        Self {
            state: crate::shim::Mutex::new(ProgressState {
                done: 0,
                dead: false,
            }),
            changed: crate::shim::Condvar::new(),
        }
    }

    fn lock(&self) -> crate::shim::MutexGuard<'_, ProgressState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record one completed message and wake any waiting router.
    pub fn bump(&self) {
        let mut state = self.lock();
        state.done = state.done.saturating_add(1);
        drop(state);
        self.changed.notify_all();
    }

    /// Raise the dead flag (the worker is exiting on a fault) and wake any
    /// waiting router so it can supervise instead of blocking forever.
    pub fn mark_dead(&self) {
        let mut state = self.lock();
        state.dead = true;
        drop(state);
        self.changed.notify_all();
    }

    /// Block until at least `target` messages have completed (`Ok`), or
    /// until the worker is marked dead short of the target (`Err`). The
    /// predicate is (re)checked under the same lock `bump` and `mark_dead`
    /// hold while mutating, so a wakeup between the check and the wait
    /// cannot be lost — `tests/loom_barrier.rs` proves a check-then-wait
    /// variant without that discipline deadlocks.
    pub fn wait_for(&self, target: u64) -> Result<(), BarrierPoisoned> {
        let mut state = self.lock();
        while state.done < target {
            if state.dead {
                return Err(BarrierPoisoned);
            }
            state = match self.changed.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        Ok(())
    }
}

/// Everything a worker thread needs, bundled so respawning is one call.
struct WorkerCtx {
    shard_index: usize,
    queue: Arc<SpscRing<Msg>>,
    shard: Arc<Mutex<Ltc>>,
    progress: Arc<Progress>,
    fault: Arc<Mutex<Option<WorkerFault>>>,
    last_good: Arc<Mutex<Vec<u8>>>,
    checkpoint_every: u32,
    /// Wait-free metric handles for this shard (`None` = metrics off).
    obs: Option<ShardObs>,
    /// This shard's span ring (`None` = tracing off). Wait-free record
    /// path; drained by the router behind the epoch barrier.
    trace: Option<TraceTrack>,
}

/// One shard's routing lane: the batch under construction, the channel to
/// its worker, the barrier state, and the supervision bookkeeping.
struct Lane {
    /// Per-shard batch under construction.
    pending: Vec<ItemId>,
    /// Messages enqueued to the *current* worker (the barrier's send-side
    /// count; reset on restart).
    sent: u64,
    queue: Arc<SpscRing<Msg>>,
    progress: Arc<Progress>,
    /// The worker's fault report slot, written before `mark_dead`.
    fault: Arc<Mutex<Option<WorkerFault>>>,
    /// The shard's last checkpoint (raw [`Ltc::to_snapshot`] bytes),
    /// refreshed by the worker at period boundaries.
    last_good: Arc<Mutex<Vec<u8>>>,
    worker: Option<JoinHandle<()>>,
    /// Restarts consumed from the budget.
    restarts: u32,
    /// `Some(fault)` once the budget is exhausted.
    lossy: Option<WorkerFault>,
    /// Lower bound on records dropped (salvaged batches + lossy routing).
    records_lost: u64,
    /// Wait-free metric handles for this shard (`None` = metrics off).
    obs: Option<ShardObs>,
    /// The shard worker's span ring; cloned into every respawned worker so
    /// restarted workers keep recording into the same ring.
    trace: Option<TraceTrack>,
    /// Journal seq of this shard's most recent fault event.
    last_fault_seq: Option<u64>,
}

/// The router's tracing state: its own span ring plus the contexts that
/// stitch the causal tree together — each batch's `batch_enqueue` span is
/// a tree root, the next `barrier_wait` span parents under the most recent
/// enqueue, and a checkpoint publish parents under the most recent
/// barrier, so one batch's enqueue → process → barrier → checkpoint chain
/// shares one `trace_id`.
struct RouterTrace {
    track: TraceTrack,
    /// Context of the most recent `batch_enqueue` span.
    last_enqueue: Option<SpanCtx>,
    /// Context of the most recent `barrier_wait` span.
    last_barrier: Option<SpanCtx>,
}

struct Inner {
    lanes: Vec<Lane>,
    /// Router-side tracing state (`None` = tracing off).
    trace: Option<RouterTrace>,
}

/// The multi-threaded sharded LTC runtime with supervised workers. See the
/// module docs.
pub struct ParallelLtc {
    inner: Mutex<Inner>,
    shards: Vec<Arc<Mutex<Ltc>>>,
    batch_size: usize,
    policy: FaultPolicy,
    /// Shared observability state (`None` = metrics off, for overhead
    /// comparison; the default constructors enable it).
    obs: Option<Arc<RuntimeObs>>,
    /// Per-period algorithm-health auditor (`None` = metrics off).
    auditor: Option<HealthAuditor>,
    /// Periods completed (drives the rollover journal events).
    periods: u64,
    /// Checkpoint restores performed (feeds the auditor's rollback drift
    /// signal alongside the per-lane restart counts).
    restores: u64,
}

impl std::fmt::Debug for ParallelLtc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelLtc")
            .field("num_shards", &self.shards.len())
            .field("batch_size", &self.batch_size)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// Spawn a worker thread over `ctx`. Returns the fault (not a panic) if
/// the OS refuses the thread, so supervision can degrade gracefully.
fn spawn_worker(ctx: WorkerCtx) -> Result<JoinHandle<()>, WorkerFault> {
    let shard_index = ctx.shard_index;
    std::thread::Builder::new()
        .name(format!("ltc-shard-{shard_index}"))
        .spawn(move || worker_loop(&ctx))
        .map_err(|e| WorkerFault {
            shard: shard_index,
            kind: FaultKind::SpawnFailed,
            message: format!("spawn failed: {e}"),
        })
}

/// Extract a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    // Periods completed since the last checkpoint capture.
    let mut epochs_since_checkpoint: u32 = 0;
    loop {
        let Some(msg) = ctx.queue.pop() else {
            // Poisoned and drained: the supervisor tore this lane down.
            return;
        };
        let stop = matches!(msg, Msg::Shutdown);
        // Pre-derive the apply span's identity from the shipped context
        // *before* entering `catch_unwind`: a panicking handler still
        // records its (partial) span via the guard's `Drop`, and the fault
        // event below parents under the same context.
        let span_plan = ctx.trace.as_ref().and_then(|t| {
            let plan = |parent: Option<SpanCtx>, name: u64| {
                let span = t.child_or_root(parent);
                let parent_id = parent.map(|p| p.span_id).unwrap_or(0);
                (span, parent_id, name)
            };
            match &msg {
                Msg::Batch(_, enqueue) => Some(plan(*enqueue, names::BATCH_PROCESS)),
                Msg::EndPeriod(barrier) => Some(plan(*barrier, names::END_PERIOD_APPLY)),
                Msg::Finish(barrier) => Some(plan(*barrier, names::FINISH_APPLY)),
                Msg::Shutdown => None,
            }
        });
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _apply_span = match (&ctx.trace, &span_plan) {
                (Some(t), Some((span, parent_id, name))) => {
                    Some(t.span_at(*span, *name, *parent_id))
                }
                _ => None,
            };
            match msg {
                Msg::Batch(ids, _) => {
                    fail_point!("worker::batch");
                    // Per-batch timing only — the per-record path inside
                    // `insert_batch` stays untouched, so the instrumentation
                    // cost is two clock reads amortised over the whole batch.
                    let start = ctx.obs.as_ref().map(|_| Instant::now());
                    lock_recover(&ctx.shard).insert_batch(&ids);
                    if let (Some(obs), Some(start)) = (&ctx.obs, start) {
                        obs.batch_insert_ns.record(elapsed_ns(start));
                        obs.batches.inc();
                        obs.records.add(ids.len() as u64);
                        // `queue_depth` is deliberately NOT updated here: the
                        // producer already refreshes it on every push, and a
                        // second writer on this side would ping-pong the gauge's
                        // cache line between cores on every batch.
                    }
                }
                Msg::EndPeriod(_) => {
                    fail_point!("worker::end_period");
                    let mut shard = lock_recover(&ctx.shard);
                    shard.end_period();
                    epochs_since_checkpoint = epochs_since_checkpoint.saturating_add(1);
                    if epochs_since_checkpoint >= ctx.checkpoint_every.max(1) {
                        epochs_since_checkpoint = 0;
                        let snapshot = shard.to_snapshot();
                        drop(shard);
                        *lock_recover(&ctx.last_good) = snapshot;
                    }
                }
                Msg::Finish(_) => {
                    let mut shard = lock_recover(&ctx.shard);
                    shard.finalize();
                    let snapshot = shard.to_snapshot();
                    drop(shard);
                    *lock_recover(&ctx.last_good) = snapshot;
                }
                Msg::Shutdown => {}
            }
        }));
        if let Err(payload) = outcome {
            // Mark the fault in the trace first: a zero-duration
            // `worker_fault` span parented under the apply span that died,
            // so the panic shows up inside the batch's causal tree.
            if let (Some(t), Some((span, _, _))) = (&ctx.trace, &span_plan) {
                t.event(names::WORKER_FAULT, Some(*span));
            }
            // Typed fault next, then poison + mark dead: the router
            // observes `dead` only after the report is in place.
            *lock_recover(&ctx.fault) = Some(WorkerFault {
                shard: ctx.shard_index,
                kind: FaultKind::Panic,
                message: panic_message(payload.as_ref()),
            });
            ctx.queue.poison();
            ctx.progress.mark_dead();
            return;
        }
        ctx.progress.bump();
        if stop {
            return;
        }
    }
}

/// Push `id` onto a lane's pending batch, handing the whole batch to the
/// worker's queue once it fills. Returns `false` when the push found the
/// queue poisoned (worker death) — the caller must supervise the lane.
#[inline]
fn route_one(
    lane: &mut Lane,
    batch_size: usize,
    id: ItemId,
    trace: Option<&mut RouterTrace>,
) -> bool {
    if lane.lossy.is_some() {
        // Degraded: the record is dropped, but counted.
        lane.records_lost = lane.records_lost.saturating_add(1);
        if let Some(obs) = &lane.obs {
            obs.records_lost.inc();
        }
        return true;
    }
    lane.pending.push(id);
    if lane.pending.len() >= batch_size {
        return flush_lane(lane, batch_size, trace);
    }
    true
}

/// Hand a lane's pending batch (if any) to its worker's queue, opening a
/// root `batch_enqueue` span around the hand-off (the batch's causal tree
/// grows from it). Returns `false` on a poisoned queue (worker death).
fn flush_lane(lane: &mut Lane, batch_size: usize, trace: Option<&mut RouterTrace>) -> bool {
    if lane.pending.is_empty() || lane.lossy.is_some() {
        return true;
    }
    let batch = std::mem::replace(&mut lane.pending, Vec::with_capacity(batch_size));
    let len = batch.len() as u64;
    lane.sent = lane.sent.saturating_add(1);
    let pending_span = trace.as_ref().map(|t| t.track.begin(None));
    let enqueue_ctx = pending_span.as_ref().map(|p| p.ctx);
    if lane.queue.push(Msg::Batch(batch, enqueue_ctx)) {
        if let (Some(t), Some(p)) = (trace, pending_span) {
            t.track.finish(&p, names::BATCH_ENQUEUE);
            t.last_enqueue = Some(p.ctx);
        }
        if let Some(obs) = &lane.obs {
            obs.queue_depth.set(lane.queue.len() as u64);
        }
        true
    } else {
        // The ring dropped the batch: the worker is dead and those
        // records die with the rollback anyway. Count them.
        lane.records_lost = lane.records_lost.saturating_add(len);
        if let Some(obs) = &lane.obs {
            obs.records_lost.add(len);
        }
        false
    }
}

/// A fresh lane ring, with the shard's stall counter attached when the
/// runtime is observable (so restarted lanes keep counting backpressure
/// into the same cell).
fn fresh_ring(obs: Option<&ShardObs>) -> SpscRing<Msg> {
    let ring = SpscRing::with_capacity(RING_CAPACITY);
    match obs {
        Some(shard_obs) => ring.with_stall_counter(shard_obs.queue_stalls.clone()),
        None => ring,
    }
}

/// Count + journal a shard's degradation to lossy mode.
fn note_degradation(lane: &Lane, shard_index: usize, obs: Option<&RuntimeObs>) {
    if let Some(shard_obs) = &lane.obs {
        shard_obs.degradations.inc();
    }
    if let Some(o) = obs {
        o.note_degradation(shard_index as u64, lane.records_lost);
    }
}

/// Supervise a lane whose worker died: join it, salvage what the queue
/// still holds, roll the shard back to its last checkpoint, and restart
/// the worker (within the budget, after backoff) or mark the lane lossy.
/// `resend` is the control message the current barrier still needs acked;
/// it is re-enqueued to the restarted worker.
fn supervise_lane(
    lane: &mut Lane,
    shard: &Arc<Mutex<Ltc>>,
    shard_index: usize,
    policy: &FaultPolicy,
    resend: Option<Ctrl>,
    obs: Option<&RuntimeObs>,
) {
    if lane.lossy.is_some() {
        return;
    }
    // 1. The worker is gone (it poisoned the queue / marked the barrier
    //    dead on its way out); joining cannot block.
    if let Some(handle) = lane.worker.take() {
        let _ = handle.join();
    }
    let fault = lock_recover(&lane.fault)
        .take()
        .unwrap_or_else(|| WorkerFault {
            shard: shard_index,
            kind: FaultKind::Silent,
            message: "worker exited without reporting a fault".to_string(),
        });
    // Observe the fault before acting on it, so the journal seq exists by
    // the time health() can report the new state.
    if let Some(o) = obs {
        if let Some(seq) = o.note_fault(shard_index as u64, fault.kind.name(), fault.kind.code()) {
            lane.last_fault_seq = Some(seq);
        }
    }
    // 2. Salvage the backlog. These batches were never applied; they are
    //    part of the rollback loss, so count them. (Joining the worker
    //    first transferred the consumer role to this thread.)
    let mut salvaged: u64 = 0;
    for msg in lane.queue.drain() {
        if let Msg::Batch(ids, _) = msg {
            salvaged = salvaged.saturating_add(ids.len() as u64);
        }
    }
    lane.records_lost = lane.records_lost.saturating_add(salvaged);
    if let Some(shard_obs) = &lane.obs {
        shard_obs.records_lost.add(salvaged);
    }
    // 3. Roll the shard back to the last checkpoint (a period boundary).
    //    The snapshot was produced by `to_snapshot` on this very table
    //    shape, so restore cannot fail; tolerate it anyway.
    {
        let mut table = lock_recover(shard);
        let snapshot = lock_recover(&lane.last_good);
        let _ = table.restore_snapshot(&snapshot);
    }
    if let Some(o) = obs {
        o.note_rollback(shard_index as u64, lane.restarts as u64);
    }
    // 4. Budget check: degrade to lossy once restarts are exhausted.
    if lane.restarts >= policy.max_restarts {
        lane.queue.poison();
        lane.sent = 0;
        lane.lossy = Some(fault);
        note_degradation(lane, shard_index, obs);
        return;
    }
    lane.restarts = lane.restarts.saturating_add(1);
    if let Some(shard_obs) = &lane.obs {
        shard_obs.restarts.inc();
    }
    let backoff = policy.backoff_for(lane.restarts);
    if !backoff.is_zero() {
        std::thread::sleep(backoff);
    }
    // 5. Fresh channel, barrier and fault slot; respawn from the restored
    //    shard state.
    lane.queue = Arc::new(fresh_ring(lane.obs.as_ref()));
    lane.progress = Arc::new(Progress::new());
    lane.fault = Arc::new(Mutex::new(None));
    lane.sent = 0;
    let ctx = WorkerCtx {
        shard_index,
        queue: Arc::clone(&lane.queue),
        shard: Arc::clone(shard),
        progress: Arc::clone(&lane.progress),
        fault: Arc::clone(&lane.fault),
        last_good: Arc::clone(&lane.last_good),
        checkpoint_every: policy.checkpoint_every_periods,
        obs: lane.obs.clone(),
        trace: lane.trace.clone(),
    };
    match spawn_worker(ctx) {
        Ok(handle) => lane.worker = Some(handle),
        Err(fault) => {
            if let Some(o) = obs {
                if let Some(seq) =
                    o.note_fault(shard_index as u64, fault.kind.name(), fault.kind.code())
                {
                    lane.last_fault_seq = Some(seq);
                }
            }
            lane.queue.poison();
            lane.lossy = Some(fault);
            note_degradation(lane, shard_index, obs);
            return;
        }
    }
    // 6. Re-send the barrier message still in flight so the epoch closes
    //    on the restored state.
    if let Some(ctrl) = resend {
        lane.sent = lane.sent.saturating_add(1);
        // The original barrier span has already closed; the re-sent apply
        // starts a fresh tree on the worker's side.
        if !lane.queue.push(ctrl.to_msg(None)) {
            // The replacement died instantly; the wait loop will
            // re-supervise (and burn budget) on the next pass.
        }
    }
}

impl ParallelLtc {
    /// Spawn `num_shards` workers, each owning an LTC shard identical to
    /// shard `i` of `ShardedLtc::new(config, num_shards)`, under the
    /// default [`FaultPolicy`]. Workers receive batches over the
    /// lock-free [`spsc`](crate::spsc) rings and probe their tables
    /// through the [`simd`](crate::simd) scan.
    pub fn new(config: LtcConfig, num_shards: usize) -> Self {
        Self::with_batch_size(config, num_shards, DEFAULT_BATCH_SIZE)
    }

    /// [`new`](ParallelLtc::new) with an explicit hand-off batch size.
    /// Larger batches amortise queue synchronisation further but delay when
    /// workers see records; [`DEFAULT_BATCH_SIZE`] suits most streams.
    /// Spawns workers on the [`spsc`](crate::spsc) rings with
    /// [`simd`](crate::simd)-probed shard tables.
    pub fn with_batch_size(config: LtcConfig, num_shards: usize, batch_size: usize) -> Self {
        Self::with_fault_policy(config, num_shards, batch_size, FaultPolicy::default())
    }

    /// Full-control constructor: explicit batch size and supervision
    /// policy (retry budget, backoff, checkpoint cadence). Observability
    /// is on (a fresh [`RuntimeObs`]); use
    /// [`with_observability`](ParallelLtc::with_observability) to share a
    /// registry or to turn metrics off. Spawns workers on the
    /// [`spsc`](crate::spsc) rings with [`simd`](crate::simd)-probed
    /// shard tables.
    pub fn with_fault_policy(
        config: LtcConfig,
        num_shards: usize,
        batch_size: usize,
        policy: FaultPolicy,
    ) -> Self {
        Self::with_observability(
            config,
            num_shards,
            batch_size,
            policy,
            Some(Arc::new(RuntimeObs::new())),
        )
    }

    /// [`with_fault_policy`](ParallelLtc::with_fault_policy) with explicit
    /// observability: pass a shared [`RuntimeObs`] to aggregate several
    /// runtimes into one registry, or `None` to run with metrics off (the
    /// mode the `obs_overhead` bench compares against). Spawns workers on
    /// the [`spsc`](crate::spsc) rings with [`simd`](crate::simd)-probed
    /// shard tables.
    pub fn with_observability(
        config: LtcConfig,
        num_shards: usize,
        batch_size: usize,
        policy: FaultPolicy,
        obs: Option<Arc<RuntimeObs>>,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        // Delegate shard construction so seeding matches ShardedLtc exactly.
        let shards: Vec<Arc<Mutex<Ltc>>> = ShardedLtc::new(config, num_shards)
            .into_shards()
            .into_iter()
            .map(|ltc| Arc::new(Mutex::new(ltc)))
            .collect();
        let tracer = obs.as_ref().and_then(|o| o.tracer()).cloned();
        let lanes = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let shard_obs = obs.as_ref().map(|o| o.shard(i as u64));
                let lane_trace = tracer.as_ref().map(|t| t.register(names::TRACK_SHARD));
                let queue = Arc::new(fresh_ring(shard_obs.as_ref()));
                let progress = Arc::new(Progress::new());
                let fault = Arc::new(Mutex::new(None));
                // The initial checkpoint is the pristine shard: a worker
                // that dies before its first period boundary rolls back
                // to an empty (but correctly configured) table.
                let last_good = Arc::new(Mutex::new(lock_recover(shard).to_snapshot()));
                let ctx = WorkerCtx {
                    shard_index: i,
                    queue: Arc::clone(&queue),
                    shard: Arc::clone(shard),
                    progress: Arc::clone(&progress),
                    fault: Arc::clone(&fault),
                    last_good: Arc::clone(&last_good),
                    checkpoint_every: policy.checkpoint_every_periods,
                    obs: shard_obs.clone(),
                    trace: lane_trace.clone(),
                };
                let worker = spawn_worker(ctx).expect("spawn shard worker"); // lint:allow(no_panic): startup-only, cannot be handled locally
                Lane {
                    pending: Vec::with_capacity(batch_size),
                    sent: 0,
                    queue,
                    progress,
                    fault,
                    last_good,
                    worker: Some(worker),
                    restarts: 0,
                    lossy: None,
                    records_lost: 0,
                    obs: shard_obs,
                    trace: lane_trace,
                    last_fault_seq: None,
                }
            })
            .collect();
        let trace = tracer.as_ref().map(|t| RouterTrace {
            track: t.register(names::TRACK_ROUTER),
            last_enqueue: None,
            last_barrier: None,
        });
        let auditor = obs.as_ref().map(|o| HealthAuditor::new(o));
        Self {
            inner: Mutex::new(Inner { lanes, trace }),
            shards,
            batch_size,
            policy,
            obs,
            auditor,
            periods: 0,
            restores: 0,
        }
    }

    /// Number of shards (= worker threads).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Hand-off batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The supervision policy this runtime was built with.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.policy
    }

    /// The runtime's observability state (registry + journal), or `None`
    /// when built with metrics off. Render exports with
    /// [`RuntimeObs::render_prometheus`] / [`RuntimeObs::render_json`];
    /// drain events with `obs.journal().drain()`.
    pub fn obs(&self) -> Option<&Arc<RuntimeObs>> {
        self.obs.as_ref()
    }

    /// Merged operational counters across every shard table, after
    /// draining the pipeline (so the counters cover every record routed
    /// before the call). Lossy shards contribute their last-good state.
    /// `periods` reports the stream's period count (see
    /// [`ShardedLtc::stats`]). The drain rides the [`spsc`](crate::spsc)
    /// rings; restarted workers replay through the
    /// [`simd`](crate::simd)-probed tables.
    pub fn stats(&self) -> LtcStats {
        let _ = self.sync();
        let mut merged: LtcStats = self
            .shards
            .iter()
            .map(|shard| lock_recover(shard).stats())
            .sum();
        merged.periods = merged
            .periods
            .checked_div(self.shards.len() as u64)
            .unwrap_or(0);
        merged
    }

    /// Statically exclusive access to the lanes (no runtime locking).
    fn inner_mut(&mut self) -> &mut Inner {
        match self.inner.get_mut() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Route one record to its shard's pending batch; hand the batch off
    /// when it fills. The hot path: one shard hash, one push, no locks.
    /// A dead worker is supervised transparently; records routed to a
    /// lossy shard are dropped and counted. Hand-off goes over the
    /// lock-free [`spsc`](crate::spsc) ring; the worker probes its table
    /// through the [`simd`](crate::simd) scan.
    #[inline]
    pub fn insert(&mut self, id: ItemId) {
        let n = self.shards.len();
        let batch_size = self.batch_size;
        let shard_index = shard_of_id(id, n);
        let policy = self.policy;
        let obs = self.obs.clone();
        let shards = &self.shards;
        let inner = match self.inner.get_mut() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        let Inner { lanes, trace } = inner;
        // `shard_of_id` returns a value below `n`, so the lookups succeed.
        if let (Some(lane), Some(shard)) = (lanes.get_mut(shard_index), shards.get(shard_index)) {
            if !route_one(lane, batch_size, id, trace.as_mut()) {
                supervise_lane(lane, shard, shard_index, &policy, None, obs.as_deref());
            }
        }
    }

    /// Route a whole run of records — one routing pass, then per-shard
    /// hand-off of every batch that filled, over the
    /// [`spsc`](crate::spsc) rings into the
    /// [`simd`](crate::simd)-probed shard tables.
    pub fn insert_batch(&mut self, ids: &[ItemId]) {
        let n = self.shards.len();
        let batch_size = self.batch_size;
        let policy = self.policy;
        let obs = self.obs.clone();
        let shards = &self.shards;
        let inner = match self.inner.get_mut() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        let Inner { lanes, trace } = inner;
        for &id in ids {
            let shard_index = shard_of_id(id, n);
            if let (Some(lane), Some(shard)) = (lanes.get_mut(shard_index), shards.get(shard_index))
            {
                if !route_one(lane, batch_size, id, trace.as_mut()) {
                    supervise_lane(lane, shard, shard_index, &policy, None, obs.as_deref());
                }
            }
        }
    }

    /// Epoch barrier: every record routed so far reaches its shard, all
    /// shards close the period, and the call returns only once every live
    /// worker has acknowledged — the parallel stream sees the same period
    /// boundary on every shard. Worker deaths during the barrier are
    /// supervised (restart + re-send, or degradation). Control messages
    /// ride the [`spsc`](crate::spsc) rings; replay goes through the
    /// [`simd`](crate::simd)-probed tables.
    ///
    /// # Errors
    /// [`RuntimeError::ShardsLost`] if any shard is lossy (the period
    /// still closed on every live shard; the runtime stays usable).
    pub fn end_period(&mut self) -> Result<(), RuntimeError> {
        let result = self.broadcast_and_wait(Ctrl::EndPeriod);
        // The period closed on every live shard even when some are lossy,
        // so the rollover is journalled in both cases.
        self.periods = self.periods.saturating_add(1);
        if let Some(obs) = &self.obs {
            obs.note_period_rollover(self.periods);
        }
        // The barrier just completed: every table is quiescent, so the
        // health audit reads consistent per-period state.
        self.run_audit();
        result
    }

    /// Run the per-period health audit (no-op with metrics off). The
    /// tables are quiescent here — `end_period` calls this right after its
    /// barrier — so the audit's brief table locks contend with nothing.
    fn run_audit(&mut self) {
        let Some(obs) = self.obs.clone() else {
            return;
        };
        let period = self.periods;
        let mut rollbacks = self.restores;
        let audit_span = {
            let inner = match self.inner.get_mut() {
                Ok(inner) => inner,
                Err(poisoned) => poisoned.into_inner(),
            };
            for lane in &inner.lanes {
                rollbacks = rollbacks.saturating_add(u64::from(lane.restarts));
                if lane.lossy.is_some() {
                    // The terminal rollback before degradation never
                    // consumed a restart from the budget.
                    rollbacks = rollbacks.saturating_add(1);
                }
            }
            inner
                .trace
                .as_ref()
                .map(|t| (t.track.clone(), t.last_barrier))
        };
        let shards = &self.shards;
        if let Some(auditor) = self.auditor.as_mut() {
            let _span = audit_span
                .as_ref()
                .map(|(track, parent)| track.span(names::AUDIT, *parent));
            auditor.audit(shards, period, rollbacks, &obs);
        }
    }

    /// Flush + finalize every shard (harvest last-period CLOCK flags), with
    /// the same barrier semantics as [`end_period`](ParallelLtc::end_period)
    /// — control over the [`spsc`](crate::spsc) rings, replay through the
    /// [`simd`](crate::simd)-probed tables.
    ///
    /// # Errors
    /// [`RuntimeError::ShardsLost`] if any shard is lossy.
    pub fn finish(&mut self) -> Result<(), RuntimeError> {
        self.broadcast_and_wait(Ctrl::Finish)
    }

    /// Drain the pipeline: flush pending batches and wait until every live
    /// worker has processed everything sent. Queries call this first.
    /// Flushing pushes onto the [`spsc`](crate::spsc) rings; restarted
    /// workers replay through the [`simd`](crate::simd)-probed tables.
    ///
    /// # Errors
    /// [`RuntimeError::ShardsLost`] if any shard is lossy — the drain
    /// itself still completed on every live shard, so degraded queries may
    /// proceed (the trait impls do exactly that).
    pub fn sync(&self) -> Result<(), RuntimeError> {
        let mut inner = lock_recover(&self.inner);
        let Inner { lanes, trace } = &mut *inner;
        for (shard_index, lane) in lanes.iter_mut().enumerate() {
            if let Some(shard) = self.shards.get(shard_index) {
                if !flush_lane(lane, self.batch_size, trace.as_mut()) {
                    supervise_lane(
                        lane,
                        shard,
                        shard_index,
                        &self.policy,
                        None,
                        self.obs.as_deref(),
                    );
                }
            }
        }
        // The barrier span parents under the most recent enqueue, so the
        // drained batch's tree contains the wait that drained it.
        let barrier = trace
            .as_ref()
            .map(|t| (t.track.clone(), t.track.begin(t.last_enqueue)));
        let start = self.obs.as_ref().map(|_| Instant::now());
        self.wait_all(lanes, None);
        if let (Some(obs), Some(start)) = (&self.obs, start) {
            obs.barrier_wait_ns.record(elapsed_ns(start));
        }
        if let Some((track, pending)) = barrier {
            track.finish(&pending, names::BARRIER_WAIT);
            if let Some(t) = trace.as_mut() {
                t.last_barrier = Some(pending.ctx);
            }
        }
        runtime_result(lanes)
    }

    /// Per-shard supervision state: restarts consumed, records lost, the
    /// terminal fault of a lossy shard, and the journal sequence number of
    /// the shard's most recent fault event (so operators can line health
    /// up with drained [`crate::obs::Event`]s).
    pub fn health(&self) -> Vec<ShardHealth> {
        let inner = lock_recover(&self.inner);
        inner
            .lanes
            .iter()
            .map(|lane| match &lane.lossy {
                Some(fault) => ShardHealth::Lossy {
                    fault: fault.clone(),
                    restarts: lane.restarts,
                    records_lost: lane.records_lost,
                    last_fault_seq: lane.last_fault_seq,
                },
                None => ShardHealth::Healthy {
                    restarts: lane.restarts,
                    records_lost: lane.records_lost,
                    last_fault_seq: lane.last_fault_seq,
                },
            })
            .collect()
    }

    /// Wait for every live lane to ack everything sent, supervising lanes
    /// whose worker dies while we wait. `resend` is re-broadcast to a
    /// restarted worker so an in-flight barrier completes.
    fn wait_all(&self, lanes: &mut [Lane], resend: Option<Ctrl>) {
        for (shard_index, lane) in lanes.iter_mut().enumerate() {
            let Some(shard) = self.shards.get(shard_index) else {
                continue;
            };
            loop {
                if lane.lossy.is_some() {
                    break;
                }
                let target = lane.sent;
                match lane.progress.wait_for(target) {
                    Ok(()) => break,
                    Err(BarrierPoisoned) => {
                        supervise_lane(
                            lane,
                            shard,
                            shard_index,
                            &self.policy,
                            resend,
                            self.obs.as_deref(),
                        );
                    }
                }
            }
        }
    }

    /// Flush, enqueue a control message on every live queue, and wait for
    /// full acknowledgment (supervising any deaths along the way). The
    /// barrier's `barrier_wait` span opens after the flush pass (parented
    /// under the last `batch_enqueue`, so the batch's tree contains it),
    /// ships its context inside the control messages, and closes once
    /// every worker has acknowledged.
    fn broadcast_and_wait(&mut self, ctrl: Ctrl) -> Result<(), RuntimeError> {
        let policy = self.policy;
        let batch_size = self.batch_size;
        let obs = self.obs.clone();
        let shards = &self.shards;
        let inner = match self.inner.get_mut() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        let Inner { lanes, trace } = inner;
        // Pass 1: flush every lane's pending batch.
        for (shard_index, lane) in lanes.iter_mut().enumerate() {
            let Some(shard) = shards.get(shard_index) else {
                continue;
            };
            if !flush_lane(lane, batch_size, trace.as_mut()) {
                supervise_lane(lane, shard, shard_index, &policy, None, obs.as_deref());
            }
        }
        // The barrier span covers enqueueing the control messages and the
        // wait for acknowledgment.
        let barrier = trace
            .as_ref()
            .map(|t| (t.track.clone(), t.track.begin(t.last_enqueue)));
        let barrier_ctx = barrier.as_ref().map(|(_, p)| p.ctx);
        // Pass 2: enqueue the control message on every live queue.
        for (shard_index, lane) in lanes.iter_mut().enumerate() {
            let Some(shard) = shards.get(shard_index) else {
                continue;
            };
            if lane.lossy.is_some() {
                continue;
            }
            lane.sent = lane.sent.saturating_add(1);
            if !lane.queue.push(ctrl.to_msg(barrier_ctx)) {
                supervise_lane(
                    lane,
                    shard,
                    shard_index,
                    &policy,
                    Some(ctrl),
                    obs.as_deref(),
                );
            }
        }
        let start = obs.as_ref().map(|_| Instant::now());
        self.wait_all_mut(ctrl);
        if let (Some(obs), Some(start)) = (&obs, start) {
            obs.barrier_wait_ns.record(elapsed_ns(start));
        }
        let inner = self.inner_mut();
        if let Some((track, pending)) = barrier {
            track.finish(&pending, names::BARRIER_WAIT);
            if let Some(t) = inner.trace.as_mut() {
                t.last_barrier = Some(pending.ctx);
            }
        }
        runtime_result(&inner.lanes)
    }

    /// `wait_all` over `&mut self` (avoids borrowing `self.shards` and
    /// `self.inner` through the same reference).
    fn wait_all_mut(&mut self, ctrl: Ctrl) {
        let policy = self.policy;
        let obs = self.obs.clone();
        let shards = &self.shards;
        let inner = match self.inner.get_mut() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        for (shard_index, lane) in inner.lanes.iter_mut().enumerate() {
            let Some(shard) = shards.get(shard_index) else {
                continue;
            };
            loop {
                if lane.lossy.is_some() {
                    break;
                }
                let target = lane.sent;
                match lane.progress.wait_for(target) {
                    Ok(()) => break,
                    Err(BarrierPoisoned) => {
                        supervise_lane(
                            lane,
                            shard,
                            shard_index,
                            &policy,
                            Some(ctrl),
                            obs.as_deref(),
                        );
                    }
                }
            }
        }
    }

    /// Stop the workers (after draining everything queued) and reassemble
    /// the shards into a single-threaded [`ShardedLtc`] for further use —
    /// the inverse of spinning the runtime up. The shutdown barrier rides
    /// the [`spsc`](crate::spsc) rings; replay goes through the
    /// [`simd`](crate::simd)-probed tables.
    ///
    /// # Errors
    /// [`RuntimeError::ShardsLost`] if any shard degraded to lossy; use
    /// [`into_sharded_lossy`](ParallelLtc::into_sharded_lossy) to recover
    /// the (partially stale) tables anyway.
    pub fn into_sharded(self) -> Result<ShardedLtc, RuntimeError> {
        let (sharded, faults) = self.into_sharded_lossy();
        if faults.is_empty() {
            Ok(sharded)
        } else {
            Err(RuntimeError::ShardsLost { faults })
        }
    }

    /// [`into_sharded`](ParallelLtc::into_sharded) that always returns the
    /// tables: lossy shards contribute their last-good (rolled-back)
    /// state, and their terminal faults ride along. The shutdown barrier
    /// rides the [`spsc`](crate::spsc) rings; replay goes through the
    /// [`simd`](crate::simd)-probed tables.
    pub fn into_sharded_lossy(mut self) -> (ShardedLtc, Vec<WorkerFault>) {
        let _ = self.broadcast_and_wait(Ctrl::Shutdown);
        let inner = self.inner_mut();
        let mut faults = Vec::new();
        for lane in &mut inner.lanes {
            if let Some(handle) = lane.worker.take() {
                let _ = handle.join();
            }
            if let Some(fault) = lane.lossy.clone() {
                faults.push(fault);
            }
        }
        let shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|arc| match Arc::try_unwrap(arc) {
                Ok(mutex) => match mutex.into_inner() {
                    Ok(shard) => shard,
                    Err(poisoned) => poisoned.into_inner(),
                },
                // Unreachable once the workers (the only other handle
                // owners) have exited; cloning keeps this total anyway.
                Err(arc) => lock_recover(&arc).clone(),
            })
            .collect();
        (ShardedLtc::from_shards(shards), faults)
    }

    /// Strict query: drain (over the [`spsc`](crate::spsc) rings), then
    /// estimate `id`'s significance via the [`simd`](crate::simd)-probed
    /// tables.
    ///
    /// # Errors
    /// [`RuntimeError::ShardsLost`] if any shard is lossy. For best-effort
    /// degraded answers use the [`SignificanceQuery`] impl instead.
    pub fn try_estimate(&self, id: ItemId) -> Result<Option<f64>, RuntimeError> {
        self.sync()?;
        Ok(self.read_estimate(id))
    }

    /// Strict query: drain (over the [`spsc`](crate::spsc) rings), then
    /// merge the global top-k from the [`simd`](crate::simd)-probed
    /// tables.
    ///
    /// # Errors
    /// [`RuntimeError::ShardsLost`] if any shard is lossy. For best-effort
    /// degraded answers use the [`SignificanceQuery`] impl instead.
    pub fn try_top_k(&self, k: usize) -> Result<Vec<Estimate>, RuntimeError> {
        self.sync()?;
        Ok(self.read_top_k(k))
    }

    fn read_estimate(&self, id: ItemId) -> Option<f64> {
        let shard = shard_of_id(id, self.shards.len());
        self.shards
            .get(shard)
            .and_then(|shard| lock_recover(shard).estimate(id))
    }

    fn read_top_k(&self, k: usize) -> Vec<Estimate> {
        let candidates: Vec<Estimate> = self
            .shards
            .iter()
            .flat_map(|shard| lock_recover(shard).top_k(k))
            .collect();
        top_k_of(candidates, k)
    }

    /// Shared access to the shard tables for the checkpoint layer.
    pub(crate) fn shard_tables(&self) -> &[Arc<Mutex<Ltc>>] {
        &self.shards
    }

    /// Router trace track plus the context of the most recent barrier
    /// span, for the checkpoint layer to parent its `checkpoint_save`
    /// span under (keeps save spans inside the batch's causal tree).
    pub(crate) fn trace_handle(&self) -> Option<(TraceTrack, Option<SpanCtx>)> {
        let inner = lock_recover(&self.inner);
        inner
            .trace
            .as_ref()
            .map(|t| (t.track.clone(), t.last_barrier))
    }

    /// After a checkpoint restore rewrote every shard table: refresh each
    /// lane's last-good snapshot to the restored state so a future
    /// rollback lands on it, and revive lossy lanes with a fresh worker
    /// and a full retry budget (the operator restored on purpose).
    pub(crate) fn reset_after_restore(&mut self) {
        self.restores = self.restores.saturating_add(1);
        let policy = self.policy;
        let batch_size = self.batch_size;
        let obs = self.obs.clone();
        let shards = &self.shards;
        let inner = match self.inner.get_mut() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        for (shard_index, lane) in inner.lanes.iter_mut().enumerate() {
            let Some(shard) = shards.get(shard_index) else {
                continue;
            };
            *lock_recover(&lane.last_good) = lock_recover(shard).to_snapshot();
            lane.restarts = 0;
            lane.records_lost = 0;
            lane.last_fault_seq = None;
            lane.pending = Vec::with_capacity(batch_size);
            if lane.lossy.take().is_some() {
                lane.queue = Arc::new(fresh_ring(lane.obs.as_ref()));
                lane.progress = Arc::new(Progress::new());
                lane.fault = Arc::new(Mutex::new(None));
                lane.sent = 0;
                let ctx = WorkerCtx {
                    shard_index,
                    queue: Arc::clone(&lane.queue),
                    shard: Arc::clone(shard),
                    progress: Arc::clone(&lane.progress),
                    fault: Arc::clone(&lane.fault),
                    last_good: Arc::clone(&lane.last_good),
                    checkpoint_every: policy.checkpoint_every_periods,
                    obs: lane.obs.clone(),
                    trace: lane.trace.clone(),
                };
                match spawn_worker(ctx) {
                    Ok(handle) => lane.worker = Some(handle),
                    Err(fault) => {
                        if let Some(o) = &obs {
                            if let Some(seq) = o.note_fault(
                                shard_index as u64,
                                fault.kind.name(),
                                fault.kind.code(),
                            ) {
                                lane.last_fault_seq = Some(seq);
                            }
                        }
                        lane.queue.poison();
                        lane.lossy = Some(fault);
                    }
                }
            }
        }
    }
}

/// `Err(ShardsLost)` iff any lane is lossy; the runtime remains usable.
fn runtime_result(lanes: &[Lane]) -> Result<(), RuntimeError> {
    let faults: Vec<WorkerFault> = lanes.iter().filter_map(|lane| lane.lossy.clone()).collect();
    if faults.is_empty() {
        Ok(())
    } else {
        Err(RuntimeError::ShardsLost { faults })
    }
}

impl Drop for ParallelLtc {
    fn drop(&mut self) {
        // `into_sharded_lossy` already drained and joined (lanes emptied of
        // workers); otherwise stop cleanly without asserting — a dead
        // worker's queue refuses the message, which is fine.
        let inner = match self.inner.get_mut() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        for lane in &mut inner.lanes {
            if lane.worker.is_some() {
                let _ = lane.queue.push(Msg::Shutdown);
            }
        }
        for lane in &mut inner.lanes {
            if let Some(handle) = lane.worker.take() {
                let _ = handle.join();
            }
        }
    }
}

impl StreamProcessor for ParallelLtc {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        ParallelLtc::insert(self, id);
    }

    fn end_period(&mut self) {
        // Best-effort: a degraded runtime still closes the period on
        // every live shard; `health()` exposes the loss.
        let _ = ParallelLtc::end_period(self);
    }

    fn finish(&mut self) {
        let _ = ParallelLtc::finish(self);
    }

    fn name(&self) -> &'static str {
        "LTC-parallel"
    }
}

impl BatchStreamProcessor for ParallelLtc {
    #[inline]
    fn insert_batch(&mut self, ids: &[ItemId]) {
        ParallelLtc::insert_batch(self, ids);
    }
}

impl SignificanceQuery for ParallelLtc {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        // Best-effort: serve the degraded view (lossy shards answer from
        // their last-good state).
        let _ = self.sync();
        self.read_estimate(id)
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        let _ = self.sync();
        self.read_top_k(k)
    }
}

impl MemoryUsage for ParallelLtc {
    fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| lock_recover(shard).memory_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_common::Weights;

    fn config() -> LtcConfig {
        LtcConfig::builder()
            .buckets(32)
            .cells_per_bucket(4)
            .weights(Weights::BALANCED)
            .records_per_period(100)
            .seed(7)
            .build()
    }

    #[test]
    fn single_shard_roundtrip() {
        let mut p = ParallelLtc::new(config(), 1);
        for i in 0..500u64 {
            p.insert(i % 25);
        }
        p.end_period().unwrap();
        p.finish().unwrap();
        assert_eq!(p.top_k(5).len(), 5);
    }

    #[test]
    fn matches_sharded_ltc_exactly() {
        // The core equivalence: same records, same boundaries → every shard
        // bit-identical to the single-threaded ShardedLtc (compared via the
        // full Debug rendering, which covers cells, CLOCK and stats).
        let shards = 4;
        let mut reference = ShardedLtc::new(config(), shards);
        let mut parallel = ParallelLtc::with_batch_size(config(), shards, 16);
        for period in 0..5u64 {
            for i in 0..200u64 {
                let id = period * 7 + i * 3;
                reference.insert(id);
                parallel.insert(id);
            }
            reference.end_period();
            parallel.end_period().unwrap();
        }
        reference.finalize();
        parallel.finish().unwrap();
        let reassembled = parallel.into_sharded().unwrap();
        for s in 0..shards {
            assert_eq!(
                format!("{:?}", reference.shard(s)),
                format!("{:?}", reassembled.shard(s)),
                "shard {s} diverged"
            );
        }
    }

    #[test]
    fn queries_observe_all_prior_inserts() {
        let mut p = ParallelLtc::with_batch_size(config(), 3, 64);
        for _ in 0..10 {
            p.insert(42);
        }
        // 42's batch is still pending; the query must flush + drain first.
        assert_eq!(p.estimate(42), Some(10.0));
        assert_eq!(p.try_estimate(42).unwrap(), Some(10.0));
    }

    #[test]
    fn drop_without_finish_is_clean() {
        let mut p = ParallelLtc::new(config(), 2);
        for i in 0..100u64 {
            p.insert(i);
        }
        drop(p); // must not hang or leak threads
    }

    #[test]
    fn memory_sums_over_shards() {
        let p = ParallelLtc::new(config(), 3);
        assert_eq!(p.memory_bytes(), 3 * 32 * 4 * 16);
    }

    #[test]
    fn health_starts_clean() {
        let p = ParallelLtc::new(config(), 2);
        assert_eq!(
            p.health(),
            vec![
                ShardHealth::Healthy {
                    restarts: 0,
                    records_lost: 0,
                    last_fault_seq: None,
                };
                2
            ]
        );
        for h in p.health() {
            assert_eq!(h.restarts(), 0);
            assert_eq!(h.last_fault_seq(), None);
        }
    }

    #[test]
    fn fault_policy_is_exposed() {
        let policy = FaultPolicy {
            max_restarts: 7,
            ..FaultPolicy::default()
        };
        let p = ParallelLtc::with_fault_policy(config(), 2, 8, policy);
        assert_eq!(p.fault_policy().max_restarts, 7);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let _ = ParallelLtc::with_batch_size(config(), 2, 0);
    }

    #[test]
    fn progress_wait_errs_when_marked_dead() {
        let progress = Progress::new();
        progress.bump();
        progress.mark_dead();
        assert_eq!(progress.wait_for(1), Ok(()), "reached targets still ack");
        assert_eq!(progress.wait_for(2), Err(BarrierPoisoned));
    }

    #[test]
    fn worker_fault_displays_shard_kind_and_message() {
        let fault = WorkerFault {
            shard: 3,
            kind: FaultKind::Panic,
            message: "boom".to_string(),
        };
        assert_eq!(fault.to_string(), "shard 3 worker died (panic): boom");
        let err = RuntimeError::ShardsLost {
            faults: vec![fault],
        };
        assert!(err.to_string().contains("1 shard(s) lossy"));
        assert!(err
            .to_string()
            .contains("shard 3 worker died (panic): boom"));
    }

    #[test]
    fn fault_kinds_have_stable_names_and_codes() {
        let kinds = [FaultKind::Panic, FaultKind::SpawnFailed, FaultKind::Silent];
        let mut seen = std::collections::HashSet::new();
        for kind in kinds {
            assert!(seen.insert(kind.code()), "codes are distinct");
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn observability_is_on_by_default_and_sees_traffic() {
        let mut p = ParallelLtc::with_batch_size(config(), 2, 16);
        for i in 0..300u64 {
            p.insert(i % 30);
        }
        p.end_period().unwrap();
        p.sync().unwrap();
        let obs = Arc::clone(p.obs().expect("default constructors enable obs"));
        let text = obs.render_prometheus();
        crate::obs::validate_exposition(&text).unwrap();
        assert!(
            text.contains("ltc_shard_records_total"),
            "per-shard record counters registered: {text}"
        );
        assert_eq!(obs.periods.get(), 1);
        // Both shards together saw all 300 records.
        let recorded: u64 = obs
            .registry()
            .snapshot()
            .into_iter()
            .filter(|f| f.name == "ltc_shard_records_total")
            .flat_map(|f| f.series)
            .map(|s| match s.value {
                crate::obs::MetricValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(recorded, 300);
        // The barrier wait was measured at least twice (end_period + sync).
        assert!(obs.barrier_wait_ns.count() >= 2);
        // Rollover event is in the journal.
        let events = obs.journal().drain();
        assert!(events
            .iter()
            .any(|e| e.kind == crate::obs::EventKind::PeriodRollover));
    }

    #[test]
    fn observability_off_runs_without_metrics() {
        let mut p = ParallelLtc::with_observability(config(), 2, 16, FaultPolicy::default(), None);
        for i in 0..200u64 {
            p.insert(i);
        }
        p.end_period().unwrap();
        assert!(p.obs().is_none());
        assert_eq!(p.stats().inserts, 200, "stats work without obs");
    }

    #[test]
    fn stats_aggregate_across_shards_after_drain() {
        let mut p = ParallelLtc::with_batch_size(config(), 3, 32);
        for i in 0..500u64 {
            p.insert(i % 50);
        }
        p.end_period().unwrap();
        // 500 routed records are visible even though batches were pending
        // when stats() was called (it drains first).
        let stats = p.stats();
        assert_eq!(stats.inserts, 500);
        assert_eq!(stats.periods, 1);
        // Sharded reference sees identical merged counters.
        let reference = {
            let mut r = ShardedLtc::new(config(), 3);
            for i in 0..500u64 {
                r.insert(i % 50);
            }
            r.end_period();
            r.stats()
        };
        assert_eq!(stats, reference);
    }

    #[test]
    fn shared_registry_aggregates_two_runtimes() {
        let obs = Arc::new(RuntimeObs::new());
        let mut a = ParallelLtc::with_observability(
            config(),
            1,
            8,
            FaultPolicy::default(),
            Some(Arc::clone(&obs)),
        );
        let mut b = ParallelLtc::with_observability(
            config(),
            1,
            8,
            FaultPolicy::default(),
            Some(Arc::clone(&obs)),
        );
        for i in 0..64u64 {
            a.insert(i);
            b.insert(i);
        }
        a.sync().unwrap();
        b.sync().unwrap();
        let text = obs.render_prometheus();
        crate::obs::validate_exposition(&text).unwrap();
        assert!(text.contains("ltc_shard_records_total{shard=\"0\"} 128"));
    }
}
