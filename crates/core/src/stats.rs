//! Operational counters for an LTC table.
//!
//! A production deployment wants to see *why* the structure behaves the way
//! it does: how much of the stream hits tracked items, how hard the
//! Significance-Decrementing churn is working, how often the CLOCK actually
//! harvests. These counters cost one branch-free `u64` increment on paths
//! that already touch the cell, and they power the `ablation_bucket_width`
//! analysis (a d=2 table shows its LTR pathology directly in
//! `admissions` × inherited values).

/// Counters accumulated over the table's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LtcStats {
    /// Records processed.
    pub inserts: u64,
    /// Case 1: record matched a tracked item.
    pub hits: u64,
    /// Case 2: record took an empty cell.
    pub fills: u64,
    /// Case 3 arrivals that only decremented (no admission).
    pub decrements: u64,
    /// Case 3 arrivals that expelled the smallest cell and moved in.
    pub admissions: u64,
    /// CLOCK harvests (persistency increments).
    pub harvests: u64,
    /// Periods completed.
    pub periods: u64,
}

impl LtcStats {
    /// Counter-wise saturating sum of two stat blocks — the merged view of
    /// two tables (or shards) treated as one structure. `periods` is
    /// summed like every other counter; for shards driven through the same
    /// period boundaries, divide by the shard count to recover the stream
    /// period count (the sharded runtimes' `stats()` do this).
    #[must_use]
    pub fn merge(&self, other: &LtcStats) -> LtcStats {
        LtcStats {
            inserts: self.inserts.saturating_add(other.inserts),
            hits: self.hits.saturating_add(other.hits),
            fills: self.fills.saturating_add(other.fills),
            decrements: self.decrements.saturating_add(other.decrements),
            admissions: self.admissions.saturating_add(other.admissions),
            harvests: self.harvests.saturating_add(other.harvests),
            periods: self.periods.saturating_add(other.periods),
        }
    }

    /// Fraction of records that hit a tracked item (`hits / inserts`).
    pub fn hit_rate(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.hits as f64 / self.inserts as f64
        }
    }

    /// Average decrements paid per admission — how expensive evicting the
    /// resident minimum is (`decrements / admissions`).
    pub fn churn_cost(&self) -> f64 {
        if self.admissions == 0 {
            0.0
        } else {
            self.decrements as f64 / self.admissions as f64
        }
    }
}

impl std::iter::Sum for LtcStats {
    fn sum<I: Iterator<Item = LtcStats>>(iter: I) -> LtcStats {
        iter.fold(LtcStats::default(), |acc, s| acc.merge(&s))
    }
}

impl std::fmt::Display for LtcStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "inserts={} hits={} ({:.1}%) fills={} decrements={} admissions={} (churn {:.1}) harvests={} periods={}",
            self.inserts,
            self.hits,
            100.0 * self.hit_rate(),
            self.fills,
            self.decrements,
            self.admissions,
            self.churn_cost(),
            self.harvests,
            self.periods,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = LtcStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.churn_cost(), 0.0);
    }

    #[test]
    fn merge_sums_every_counter_saturating() {
        let a = LtcStats {
            inserts: 10,
            hits: 5,
            fills: 2,
            decrements: 6,
            admissions: 3,
            harvests: 4,
            periods: 1,
        };
        let b = LtcStats {
            inserts: u64::MAX,
            hits: 1,
            ..LtcStats::default()
        };
        let merged = a.merge(&b);
        assert_eq!(merged.inserts, u64::MAX, "saturates");
        assert_eq!(merged.hits, 6);
        assert_eq!(merged.periods, 1);
        let summed: LtcStats = [a, a, LtcStats::default()].into_iter().sum();
        assert_eq!(summed.inserts, 20);
        assert_eq!(summed.harvests, 8);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = LtcStats {
            inserts: 10,
            hits: 5,
            fills: 2,
            decrements: 6,
            admissions: 3,
            harvests: 4,
            periods: 1,
        };
        let text = s.to_string();
        for needle in [
            "inserts=10",
            "hits=5",
            "fills=2",
            "admissions=3",
            "harvests=4",
        ] {
            assert!(text.contains(needle), "{text}");
        }
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.churn_cost() - 2.0).abs() < 1e-12);
    }
}
