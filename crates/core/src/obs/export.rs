//! Renderers for registry snapshots: Prometheus text exposition format and
//! JSON. Zero dependencies — both formats are written by hand, with the
//! escaping each requires.
//!
//! Rendering operates on a [`MetricsRegistry::snapshot`], so it holds the
//! registry lock only long enough to copy the cells; the string building
//! happens lock-free and off the hot path.

use std::fmt::Write as _;

use super::journal::Event;
use super::metrics::{bucket_bound, HistogramSnapshot, HISTOGRAM_BUCKETS};
use super::registry::{FamilySnapshot, MetricValue, MetricsRegistry};

/// Escape a Prometheus label *value*: backslash, double quote and newline
/// must be backslash-escaped per the exposition format.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escape Prometheus `# HELP` text: backslash and newline only (quotes are
/// legal in help text).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render a label set as `{k="v",k2="v2"}`, or the empty string for no
/// labels. `extra` is appended last (used for histogram `le`).
fn render_labels(labels: &super::registry::Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Append one histogram series in exposition form: cumulative `_bucket`
/// lines ending at `le="+Inf"`, then `_sum` and `_count`.
fn render_histogram_prometheus(
    out: &mut String,
    name: &str,
    labels: &super::registry::Labels,
    snap: &HistogramSnapshot,
) {
    let mut cumulative: u64 = 0;
    for (i, bucket) in snap.buckets.iter().enumerate() {
        cumulative = cumulative.saturating_add(*bucket);
        let le = if i >= HISTOGRAM_BUCKETS {
            "+Inf".to_string()
        } else {
            bucket_bound(i).to_string()
        };
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            render_labels(labels, Some(("le", &le)))
        );
    }
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        render_labels(labels, None),
        snap.sum
    );
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        render_labels(labels, None),
        snap.count
    );
}

/// Render families in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` headers per family, one sample line per
/// series, histograms expanded to cumulative `_bucket`/`_sum`/`_count`.
pub fn render_prometheus_snapshot(families: &[FamilySnapshot]) -> String {
    let mut out = String::new();
    for family in families {
        if !family.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
        }
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        for series in &family.series {
            match &series.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {v}",
                        family.name,
                        render_labels(&series.labels, None)
                    );
                }
                MetricValue::Histogram(snap) => {
                    render_histogram_prometheus(&mut out, &family.name, &series.labels, snap);
                }
            }
        }
    }
    out
}

/// Escape a string for a JSON string literal (quotes, backslash, control
/// characters).
fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

/// Append a histogram value as JSON: total count, sum, interpolated
/// percentile estimates, and the cumulative buckets keyed by upper bound
/// (matching the Prometheus rendering).
fn render_histogram_json(out: &mut String, snap: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"p50\":{:.3},\"p99\":{:.3},\"p999\":{:.3},\"buckets\":[",
        snap.count,
        snap.sum,
        snap.p50(),
        snap.p99(),
        snap.p999()
    );
    let mut cumulative: u64 = 0;
    for (i, bucket) in snap.buckets.iter().enumerate() {
        cumulative = cumulative.saturating_add(*bucket);
        if i > 0 {
            out.push(',');
        }
        let le = if i >= HISTOGRAM_BUCKETS {
            "+Inf".to_string()
        } else {
            bucket_bound(i).to_string()
        };
        let _ = write!(out, "{{\"le\":\"{le}\",\"count\":{cumulative}}}");
    }
    out.push_str("]}");
}

/// Render families as a JSON document:
/// `{"families":[{"name":…,"kind":…,"help":…,"series":[{"labels":{…},"value":…}]}]}`.
/// Counter/gauge values are JSON numbers; histograms are objects with
/// `count`, `sum` and cumulative `buckets`.
pub fn render_json_snapshot(families: &[FamilySnapshot]) -> String {
    let mut out = String::from("{\"families\":[");
    for (fi, family) in families.iter().enumerate() {
        if fi > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\",\"series\":[",
            escape_json(&family.name),
            family.kind.as_str(),
            escape_json(&family.help)
        );
        for (si, series) in family.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str("{\"labels\":{");
            for (li, (k, v)) in series.labels.iter().enumerate() {
                if li > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            out.push_str("},\"value\":");
            match &series.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Histogram(snap) => render_histogram_json(&mut out, snap),
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Render drained journal events as a JSON array:
/// `[{"seq":…,"kind":"worker_fault","shard":2,"detail":7},…]` (shard is
/// `null` for process-wide events).
pub fn render_events_json(events: &[Event]) -> String {
    let mut out = String::from("[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"kind\":\"{}\",\"shard\":",
            event.seq,
            event.kind.name()
        );
        match event.shard {
            Some(s) => {
                let _ = write!(out, "{s}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"detail\":{}}}", event.detail);
    }
    out.push(']');
    out
}

/// Convenience: snapshot `registry` and render Prometheus text.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    render_prometheus_snapshot(&registry.snapshot())
}

/// Convenience: snapshot `registry` and render JSON.
pub fn render_json(registry: &MetricsRegistry) -> String {
    render_json_snapshot(&registry.snapshot())
}

/// Check that `text` is well-formed Prometheus text exposition format:
/// every line is a comment, blank, or a `name{labels} value` sample with a
/// parseable value; `# TYPE` appears at most once per metric and precedes
/// its samples; histogram `_bucket` series are cumulative in `le` order
/// and end with `le="+Inf"` matching `_count`. Returns the first problem
/// found. Used by the test suites and `obs_dump --check`.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut typed: BTreeSet<String> = BTreeSet::new();
    // (metric base name, labels-without-le) -> (last cumulative count, last le)
    let mut buckets: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno.saturating_add(1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            if name.is_empty()
                || !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                )
            {
                return Err(format!("line {n}: malformed TYPE line: {line}"));
            }
            if !typed.insert(name.to_string()) {
                return Err(format!("line {n}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(format!("line {n}: no value: {line}")),
        };
        let value: f64 = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| format!("line {n}: unparseable value {v:?}"))?,
        };
        let (name, labels_str) = match name_part.split_once('{') {
            Some((name, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set: {line}"))?;
                (name, rest)
            }
            None => (name_part, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        // Parse labels respecting escapes inside quoted values.
        let mut labels: Vec<(String, String)> = Vec::new();
        let mut chars = labels_str.chars().peekable();
        while chars.peek().is_some() {
            let mut key = String::new();
            for c in chars.by_ref() {
                if c == '=' {
                    break;
                }
                key.push(c);
            }
            if chars.next() != Some('"') {
                return Err(format!("line {n}: label value not quoted: {line}"));
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        other => {
                            return Err(format!("line {n}: bad escape \\{other:?} in label"));
                        }
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    other => value.push(other),
                }
            }
            if !closed {
                return Err(format!("line {n}: unterminated label value: {line}"));
            }
            labels.push((key, value));
            if chars.peek() == Some(&',') {
                chars.next();
            }
        }
        // Histogram bookkeeping: cumulative buckets, +Inf == _count.
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("line {n}: _bucket without le label"))?;
            let le_value: f64 = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|_| format!("line {n}: unparseable le {le:?}"))?
            };
            let rest: String = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v};"))
                .collect();
            let key = (base.to_string(), rest);
            let sample = value as u64;
            if let Some((prev_count, prev_le)) = buckets.get(&key) {
                if le_value <= *prev_le {
                    return Err(format!("line {n}: le values not increasing for {base}"));
                }
                if sample < *prev_count {
                    return Err(format!("line {n}: bucket counts not cumulative for {base}"));
                }
            }
            buckets.insert(key, (sample, le_value));
        } else if let Some(base) = name.strip_suffix("_count") {
            let rest: String = labels.iter().map(|(k, v)| format!("{k}={v};")).collect();
            counts.insert((base.to_string(), rest), value as u64);
        }
    }
    for (key, (cumulative, last_le)) in &buckets {
        if !last_le.is_infinite() {
            return Err(format!("histogram {} does not end at le=\"+Inf\"", key.0));
        }
        if let Some(count) = counts.get(key) {
            if count != cumulative {
                return Err(format!(
                    "histogram {}: +Inf bucket {} != _count {}",
                    key.0, cumulative, count
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::registry::{labels, Labels};
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let reg = MetricsRegistry::new();
        reg.counter("ltc_inserts_total", "Inserts.", labels([("shard", "0")]))
            .add(5);
        reg.gauge("ltc_depth", "Queue depth.", Labels::new()).set(3);
        let text = render_prometheus(&reg);
        assert!(text.contains("# HELP ltc_depth Queue depth."));
        assert!(text.contains("# TYPE ltc_depth gauge"));
        assert!(text.contains("ltc_depth 3\n"));
        assert!(text.contains("ltc_inserts_total{shard=\"0\"} 5\n"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("m_total", "", labels([("path", "a\\b\"c\nd")]))
            .inc();
        let text = render_prometheus(&reg);
        assert!(text.contains(r#"path="a\\b\"c\nd""#), "got: {text}");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "Latency.", Labels::new());
        h.record(1);
        h.record(2);
        h.record(u64::MAX);
        let text = render_prometheus(&reg);
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_count 3\n"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn empty_registry_renders_empty_and_valid() {
        let reg = MetricsRegistry::new();
        let text = render_prometheus(&reg);
        assert!(text.is_empty());
        validate_exposition(&text).unwrap();
        assert_eq!(render_json(&reg), "{\"families\":[]}");
    }

    #[test]
    fn json_escapes_strings() {
        let reg = MetricsRegistry::new();
        reg.counter("m_total", "say \"hi\"\\", labels([("k", "v\n")]))
            .inc();
        let json = render_json(&reg);
        assert!(json.contains(r#""help":"say \"hi\"\\""#), "got: {json}");
        assert!(json.contains(r#""k":"v\n""#), "got: {json}");
    }

    #[test]
    fn events_render_as_json() {
        use super::super::journal::{EventJournal, EventKind};
        let j = EventJournal::new();
        j.publish(EventKind::WorkerFault, Some(2), 7);
        j.publish(EventKind::CheckpointPublish, None, 4);
        let json = render_events_json(&j.drain());
        assert_eq!(
            json,
            "[{\"seq\":0,\"kind\":\"worker_fault\",\"shard\":2,\"detail\":7},\
             {\"seq\":1,\"kind\":\"checkpoint_publish\",\"shard\":null,\"detail\":4}]"
        );
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_exposition("no_value_here\n").is_err());
        assert!(validate_exposition("1bad_name 3\n").is_err());
        assert!(validate_exposition("m{l=unquoted} 3\n").is_err());
        assert!(validate_exposition("# TYPE m counter\n# TYPE m counter\n").is_err());
        // Non-cumulative buckets.
        let bad = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n";
        assert!(validate_exposition(bad).is_err());
        // Missing +Inf terminator.
        let bad = "h_bucket{le=\"1\"} 1\n";
        assert!(validate_exposition(bad).is_err());
    }
}
