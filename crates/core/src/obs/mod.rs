//! Zero-dependency observability layer: wait-free metrics, a lock-free
//! structured event journal, and Prometheus/JSON export.
//!
//! Three tiers, by how hot the touching code path is:
//!
//! 1. [`metrics`] — `Relaxed`-atomic [`Counter`]/[`Gauge`]/[`Histogram`]
//!    handles. These are the only types the per-batch / per-record paths
//!    may touch, and every update is wait-free. Enforced by the
//!    `obs_hot_path` rule of `cargo run -p xtask -- lint`.
//! 2. [`journal`] — a bounded lock-free MPMC [`EventJournal`] for rare
//!    structured events (faults, rollbacks, checkpoints, period
//!    rollovers), publishable from workers without blocking and drainable
//!    without stopping them.
//! 3. [`registry`] + [`export`] — the `Mutex`-guarded [`MetricsRegistry`]
//!    and renderers, touched only at construction and export time.
//!
//! Two further modules ride the same tiers: [`trace`] — wait-free span
//! rings (tier 1 on the record side, externally synchronized drains) with
//! Chrome-trace/folded-stack rendering in [`trace_export`] — and
//! [`audit`] — a per-period algorithm-health auditor publishing gauges
//! (tier 1 cells, written off the hot path) and
//! [`EventKind::HealthReport`] journal events (tier 2).
//!
//! [`RuntimeObs`] bundles all of it for the parallel runtime: one registry,
//! journal, and (optional) tracer, pre-registered process-wide handles, and
//! per-shard handle bundles ([`ShardObs`]) for the worker threads.

pub mod audit;
pub mod export;
pub mod journal;
pub mod metrics;
pub mod registry;
pub mod trace;
pub mod trace_export;

pub use audit::{HealthAuditor, HealthReport};
pub use export::{
    render_events_json, render_json, render_json_snapshot, render_prometheus,
    render_prometheus_snapshot, validate_exposition,
};
pub use journal::{Event, EventJournal, EventKind, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{bucket_bound, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{
    labels, FamilySnapshot, Labels, MetricKind, MetricValue, MetricsRegistry, SeriesSnapshot,
};
pub use trace::{Span, SpanCtx, SpanGuard, TraceTrack, Tracer};
pub use trace_export::{render_chrome_trace, render_folded, validate_chrome_trace};

use std::sync::Arc;

/// Wait-free metric handles for one shard of the parallel runtime. Handed
/// to the producer (queue side) and worker (table side) at spawn;
/// re-created handles after a worker restart share the same cells because
/// registration is idempotent.
#[derive(Debug, Clone)]
pub struct ShardObs {
    /// Shard index these handles are labeled with.
    pub shard: u64,
    /// `ltc_shard_queue_depth` — batches currently queued in the shard's
    /// SPSC ring (producer-side estimate).
    pub queue_depth: Gauge,
    /// `ltc_shard_queue_stalls_total` — times the producer had to park
    /// because the shard's ring was full (backpressure).
    pub queue_stalls: Counter,
    /// `ltc_shard_batches_total` — batches the worker has applied.
    pub batches: Counter,
    /// `ltc_shard_records_total` — records the worker has applied.
    pub records: Counter,
    /// `ltc_shard_batch_insert_ns` — per-batch `insert_batch` wall time.
    pub batch_insert_ns: Histogram,
    /// `ltc_worker_restarts_total` — times this shard's worker was
    /// respawned after a fault.
    pub restarts: Counter,
    /// `ltc_worker_degradations_total` — times this shard exhausted its
    /// restart budget and went lossy.
    pub degradations: Counter,
    /// `ltc_shard_records_lost_total` — records dropped on this shard
    /// (salvage drains + lossy mode).
    pub records_lost: Counter,
}

/// Shared observability state for one runtime: a metric registry, an event
/// journal, and pre-registered process-wide handles. Cheap to share via
/// `Arc`; all hot-path access goes through wait-free handles, never the
/// registry lock.
#[derive(Debug)]
pub struct RuntimeObs {
    registry: MetricsRegistry,
    journal: EventJournal,
    tracer: Option<Arc<Tracer>>,
    /// `ltc_journal_dropped_events` — events the journal refused because
    /// its ring was full (drop-newest). Synced from the journal at render
    /// time.
    journal_dropped: Gauge,
    /// `ltc_trace_dropped_spans` — spans the tracer refused because a ring
    /// was full (drop-newest). Synced from the tracer at render time.
    trace_dropped: Gauge,
    /// `ltc_trace_queued_spans` — spans currently buffered awaiting a
    /// drain. Synced from the tracer at render time.
    trace_queued: Gauge,
    /// `ltc_periods_total` — period rollovers completed by the runtime.
    pub periods: Counter,
    /// `ltc_barrier_wait_ns` — wall time `end_period`/`finish` spent
    /// waiting on the worker barrier.
    pub barrier_wait_ns: Histogram,
    /// `ltc_checkpoint_save_ns` — wall time of checkpoint serialisation +
    /// atomic publish.
    pub checkpoint_save_ns: Histogram,
    /// `ltc_checkpoint_restore_ns` — wall time of checkpoint restore.
    pub checkpoint_restore_ns: Histogram,
    /// `ltc_checkpoint_publishes_total` — checkpoint generations published.
    pub checkpoint_publishes: Counter,
    /// `ltc_checkpoint_fallbacks_total` — restores that had to skip a
    /// newest generation (corrupt/truncated) and fall back to an older one.
    pub checkpoint_fallbacks: Counter,
    /// `ltc_delta_save_ns` — wall time of delta-frame serialisation +
    /// atomic publish (background durability service).
    pub delta_save_ns: Histogram,
    /// `ltc_delta_publishes_total` — delta checkpoint generations
    /// published.
    pub delta_publishes: Counter,
    /// `ltc_compactions_total` — delta chains compacted into fresh full
    /// frames.
    pub compactions: Counter,
    /// `ltc_chain_fallbacks_total` — restores that found a delta whose
    /// base was missing or damaged and fell back past the chain.
    pub chain_fallbacks: Counter,
    /// `ltc_delta_chain_length` — deltas published since the current base
    /// full frame.
    pub chain_length: Gauge,
}

impl Default for RuntimeObs {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeObs {
    /// A fresh registry + journal + tracer with the process-wide families
    /// registered. Tracing is on by default (its record path is wait-free
    /// and bounded); use [`RuntimeObs::without_tracing`] to opt out.
    pub fn new() -> Self {
        Self::build(true)
    }

    /// A fresh registry + journal with span tracing disabled (metrics and
    /// journal only).
    pub fn without_tracing() -> Self {
        Self::build(false)
    }

    fn build(tracing: bool) -> Self {
        let registry = MetricsRegistry::new();
        let periods = registry.counter(
            "ltc_periods_total",
            "Period rollovers completed by the runtime.",
            Labels::new(),
        );
        let barrier_wait_ns = registry.histogram(
            "ltc_barrier_wait_ns",
            "Wall time end_period/finish spent waiting on the worker barrier (ns).",
            Labels::new(),
        );
        let checkpoint_save_ns = registry.histogram(
            "ltc_checkpoint_save_ns",
            "Wall time of checkpoint serialisation and atomic publish (ns).",
            Labels::new(),
        );
        let checkpoint_restore_ns = registry.histogram(
            "ltc_checkpoint_restore_ns",
            "Wall time of checkpoint restore (ns).",
            Labels::new(),
        );
        let checkpoint_publishes = registry.counter(
            "ltc_checkpoint_publishes_total",
            "Checkpoint generations published.",
            Labels::new(),
        );
        let checkpoint_fallbacks = registry.counter(
            "ltc_checkpoint_fallbacks_total",
            "Restores that skipped a damaged newest generation.",
            Labels::new(),
        );
        let delta_save_ns = registry.histogram(
            "ltc_delta_save_ns",
            "Wall time of delta-frame serialisation and atomic publish (ns).",
            Labels::new(),
        );
        let delta_publishes = registry.counter(
            "ltc_delta_publishes_total",
            "Delta checkpoint generations published.",
            Labels::new(),
        );
        let compactions = registry.counter(
            "ltc_compactions_total",
            "Delta chains compacted into fresh full frames.",
            Labels::new(),
        );
        let chain_fallbacks = registry.counter(
            "ltc_chain_fallbacks_total",
            "Restores that fell back past a delta chain with a damaged base.",
            Labels::new(),
        );
        let chain_length = registry.gauge(
            "ltc_delta_chain_length",
            "Deltas published since the current base full frame.",
            Labels::new(),
        );
        let journal_dropped = registry.gauge(
            "ltc_journal_dropped_events",
            "Events refused by the full journal ring (drop-newest).",
            Labels::new(),
        );
        let trace_dropped = registry.gauge(
            "ltc_trace_dropped_spans",
            "Spans refused by a full trace ring (drop-newest).",
            Labels::new(),
        );
        let trace_queued = registry.gauge(
            "ltc_trace_queued_spans",
            "Spans buffered in trace rings awaiting a drain.",
            Labels::new(),
        );
        Self {
            registry,
            journal: EventJournal::new(),
            tracer: tracing.then(|| Arc::new(Tracer::new())),
            journal_dropped,
            trace_dropped,
            trace_queued,
            periods,
            barrier_wait_ns,
            checkpoint_save_ns,
            checkpoint_restore_ns,
            checkpoint_publishes,
            checkpoint_fallbacks,
            delta_save_ns,
            delta_publishes,
            compactions,
            chain_fallbacks,
            chain_length,
        }
    }

    /// The underlying registry (for export or extra registrations).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The event journal (drain with [`EventJournal::drain`]).
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The span tracer, if tracing is enabled for this runtime.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Drain every trace ring's buffered spans (empty when tracing is
    /// disabled). Call only where all recording threads are quiescent or
    /// joined — see [`Tracer::drain`].
    pub fn drain_spans(&self) -> Vec<Span> {
        self.tracer
            .as_deref()
            .map(Tracer::drain)
            .unwrap_or_default()
    }

    /// Sync the drop/queue-depth gauges from the journal and tracer (done
    /// automatically by the render methods).
    fn sync_loss_gauges(&self) {
        self.journal_dropped.set(self.journal.dropped());
        if let Some(tracer) = self.tracer.as_deref() {
            self.trace_dropped.set(tracer.dropped());
            self.trace_queued.set(tracer.queued());
        }
    }

    /// Register (idempotently) and return the wait-free handle bundle for
    /// one shard. Called at spawn/restart time, never on the hot path.
    pub fn shard(&self, shard: u64) -> ShardObs {
        let l = || labels([("shard", shard.to_string())]);
        ShardObs {
            shard,
            queue_depth: self.registry.gauge(
                "ltc_shard_queue_depth",
                "Batches queued in the shard's SPSC ring.",
                l(),
            ),
            queue_stalls: self.registry.counter(
                "ltc_shard_queue_stalls_total",
                "Producer parks due to a full shard ring (backpressure).",
                l(),
            ),
            batches: self.registry.counter(
                "ltc_shard_batches_total",
                "Batches applied by the shard worker.",
                l(),
            ),
            records: self.registry.counter(
                "ltc_shard_records_total",
                "Records applied by the shard worker.",
                l(),
            ),
            batch_insert_ns: self.registry.histogram(
                "ltc_shard_batch_insert_ns",
                "Per-batch insert_batch wall time (ns).",
                l(),
            ),
            restarts: self.registry.counter(
                "ltc_worker_restarts_total",
                "Worker respawns after a fault.",
                l(),
            ),
            degradations: self.registry.counter(
                "ltc_worker_degradations_total",
                "Shards degraded to lossy mode after exhausting restarts.",
                l(),
            ),
            records_lost: self.registry.counter(
                "ltc_shard_records_lost_total",
                "Records dropped on this shard (salvage drains + lossy mode).",
                l(),
            ),
        }
    }

    /// Register (idempotently) the fault counter for one fault kind:
    /// `ltc_worker_faults_total{kind="…"}`. Supervisor path — may take the
    /// registry lock.
    pub fn fault_counter(&self, kind: &str) -> Counter {
        self.registry.counter(
            "ltc_worker_faults_total",
            "Worker faults by kind.",
            labels([("kind", kind)]),
        )
    }

    /// Record a worker fault: bumps the per-kind counter and journals a
    /// [`EventKind::WorkerFault`] event. Returns the event's sequence
    /// number (if the journal had room).
    pub fn note_fault(&self, shard: u64, kind: &str, kind_code: u64) -> Option<u64> {
        self.fault_counter(kind).inc();
        self.journal
            .publish(EventKind::WorkerFault, Some(shard), kind_code)
    }

    /// Record a rollback-to-snapshot during recovery.
    pub fn note_rollback(&self, shard: u64, restarts: u64) -> Option<u64> {
        self.journal
            .publish(EventKind::Rollback, Some(shard), restarts)
    }

    /// Record a shard degrading to lossy mode.
    pub fn note_degradation(&self, shard: u64, records_lost: u64) -> Option<u64> {
        self.journal
            .publish(EventKind::Degradation, Some(shard), records_lost)
    }

    /// Record a completed period rollover (runtime-wide).
    pub fn note_period_rollover(&self, periods: u64) -> Option<u64> {
        self.periods.inc();
        self.journal
            .publish(EventKind::PeriodRollover, None, periods)
    }

    /// Record a published checkpoint generation.
    pub fn note_checkpoint_publish(&self, generation: u64, elapsed_ns: u64) -> Option<u64> {
        self.checkpoint_publishes.inc();
        self.checkpoint_save_ns.record(elapsed_ns);
        self.journal
            .publish(EventKind::CheckpointPublish, None, generation)
    }

    /// Record a completed restore (from `generation`, after any fallback).
    pub fn note_checkpoint_restore(&self, generation: u64, elapsed_ns: u64) -> Option<u64> {
        self.checkpoint_restore_ns.record(elapsed_ns);
        self.journal
            .publish(EventKind::CheckpointRestore, None, generation)
    }

    /// Record a published delta generation (`chain_length` deltas since the
    /// current base).
    pub fn note_delta_publish(
        &self,
        generation: u64,
        elapsed_ns: u64,
        chain_length: u64,
    ) -> Option<u64> {
        self.delta_publishes.inc();
        self.delta_save_ns.record(elapsed_ns);
        self.chain_length.set(chain_length);
        self.journal
            .publish(EventKind::DeltaPublish, None, generation)
    }

    /// Record a delta chain compacted into a fresh full frame at
    /// `generation`.
    pub fn note_compaction(&self, generation: u64, elapsed_ns: u64) -> Option<u64> {
        self.compactions.inc();
        self.checkpoint_publishes.inc();
        self.checkpoint_save_ns.record(elapsed_ns);
        self.chain_length.set(0);
        self.journal
            .publish(EventKind::Compaction, None, generation)
    }

    /// Record a restore skipping a delta generation whose base was missing
    /// or damaged.
    pub fn note_chain_fallback(&self, generation: u64) -> Option<u64> {
        self.chain_fallbacks.inc();
        self.journal
            .publish(EventKind::ChainFallback, None, generation)
    }

    /// Render the registry in Prometheus text exposition format (syncs the
    /// journal/trace loss gauges first).
    pub fn render_prometheus(&self) -> String {
        self.sync_loss_gauges();
        render_prometheus(&self.registry)
    }

    /// Render the registry as a JSON document (syncs the journal/trace
    /// loss gauges first).
    pub fn render_json(&self) -> String {
        self.sync_loss_gauges();
        render_json(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_obs_registers_expected_families() {
        let obs = RuntimeObs::new();
        let shard = obs.shard(3);
        shard.batches.inc();
        shard.records.add(256);
        obs.note_fault(3, "panic", 0);
        obs.note_period_rollover(1);
        let text = obs.render_prometheus();
        assert!(text.contains("ltc_shard_batches_total{shard=\"3\"} 1"));
        assert!(text.contains("ltc_shard_records_total{shard=\"3\"} 256"));
        assert!(text.contains("ltc_worker_faults_total{kind=\"panic\"} 1"));
        assert!(text.contains("ltc_periods_total 1"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn shard_handles_are_idempotent_across_restart() {
        let obs = RuntimeObs::new();
        let first = obs.shard(0);
        first.restarts.inc();
        let respawned = obs.shard(0);
        respawned.restarts.inc();
        assert_eq!(first.restarts.get(), 2, "same cells after respawn");
    }

    #[test]
    fn note_helpers_journal_events_with_seqs() {
        let obs = RuntimeObs::new();
        let a = obs.note_fault(1, "panic", 0).unwrap();
        let b = obs.note_rollback(1, 1).unwrap();
        let c = obs.note_degradation(1, 42).unwrap();
        assert!(a < b && b < c, "monotonic seqs");
        let events = obs.journal().drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::WorkerFault);
        assert_eq!(events[1].kind, EventKind::Rollback);
        assert_eq!(events[2].kind, EventKind::Degradation);
        assert_eq!(events[2].detail, 42);
    }
}
