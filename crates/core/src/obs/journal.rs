//! Bounded lock-free journal of structured runtime events.
//!
//! The journal is a fixed-capacity MPMC ring in the style of Vyukov's
//! bounded queue, built entirely from per-slot atomics (stamp + payload
//! words) so it needs no `unsafe` and no locks. Producers — shard workers,
//! the supervisor, the checkpoint layer — publish events with a single CAS
//! claim plus a release-store of the slot stamp; consumers drain with the
//! symmetric CAS, so the runtime never stops to be observed.
//!
//! **Sequence numbers** are the ring's claim positions: every *published*
//! event gets the next integer, in publication order, so a reader can
//! detect reordering or correlate an event with [`ShardHealth`]'s
//! `last_fault_seq` (see `pipeline.rs`). **Drop semantics**: when the ring
//! is full the *newest* event is dropped — publishing never blocks and
//! never overwrites history a drainer is about to read — and the drop is
//! counted in [`EventJournal::dropped`]. Because a dropped event never
//! claims a position, the sequence numbers of published events stay
//! contiguous: a gap in drained seqs means events were drained by someone
//! else, not silently lost.
//!
//! [`ShardHealth`]: crate::pipeline::ShardHealth

use crate::shim::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Default journal capacity (events). Power of two; plenty for the rare
/// fault/rollover cadence the runtime produces between drains.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Sentinel for "no shard" in the packed shard word.
const NO_SHARD: u64 = u64::MAX;

/// What happened. Each kind's `detail` word (see [`Event::detail`]) carries
/// the kind-specific datum noted here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A period boundary was crossed; `detail` = the period count after
    /// the rollover.
    PeriodRollover,
    /// A worker died; `detail` = the numeric code of the fault kind
    /// (`FaultKind::code`).
    WorkerFault,
    /// A shard's table was rolled back to its last period-boundary
    /// snapshot during recovery; `detail` = restarts so far on that shard.
    Rollback,
    /// A shard exhausted its restart budget and degraded to lossy mode;
    /// `detail` = records lost on that shard at the moment of degradation.
    Degradation,
    /// A checkpoint generation was atomically published; `detail` = the
    /// generation number.
    CheckpointPublish,
    /// State was restored from a checkpoint; `detail` = the generation
    /// restored from (after any newest-first fallback).
    CheckpointRestore,
    /// A delta checkpoint generation was published; `detail` = the
    /// generation number.
    DeltaPublish,
    /// A delta chain was compacted into a fresh full frame; `detail` = the
    /// new base generation.
    Compaction,
    /// A restore found a delta whose base frame was missing or damaged and
    /// fell back past the chain; `detail` = the broken delta's generation.
    ChainFallback,
    /// The per-period algorithm-health auditor published a report;
    /// `detail` = the report's drift-flag bits (see `obs::audit::drift`).
    HealthReport,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::PeriodRollover => 0,
            EventKind::WorkerFault => 1,
            EventKind::Rollback => 2,
            EventKind::Degradation => 3,
            EventKind::CheckpointPublish => 4,
            EventKind::CheckpointRestore => 5,
            EventKind::DeltaPublish => 6,
            EventKind::Compaction => 7,
            EventKind::ChainFallback => 8,
            EventKind::HealthReport => 9,
        }
    }

    fn from_code(code: u64) -> Self {
        match code {
            0 => EventKind::PeriodRollover,
            1 => EventKind::WorkerFault,
            2 => EventKind::Rollback,
            3 => EventKind::Degradation,
            4 => EventKind::CheckpointPublish,
            6 => EventKind::DeltaPublish,
            7 => EventKind::Compaction,
            8 => EventKind::ChainFallback,
            9 => EventKind::HealthReport,
            _ => EventKind::CheckpointRestore,
        }
    }

    /// Stable lowercase name, used as a label value in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PeriodRollover => "period_rollover",
            EventKind::WorkerFault => "worker_fault",
            EventKind::Rollback => "rollback",
            EventKind::Degradation => "degradation",
            EventKind::CheckpointPublish => "checkpoint_publish",
            EventKind::CheckpointRestore => "checkpoint_restore",
            EventKind::DeltaPublish => "delta_publish",
            EventKind::Compaction => "compaction",
            EventKind::ChainFallback => "chain_fallback",
            EventKind::HealthReport => "health_report",
        }
    }
}

/// One published runtime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic publication sequence number (0-based, contiguous across
    /// published events; see the module docs for drop semantics).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The shard it happened on, if shard-scoped.
    pub shard: Option<u64>,
    /// Kind-specific datum — see [`EventKind`] for each kind's meaning.
    pub detail: u64,
}

/// One ring slot: a Vyukov stamp plus the event payload as plain atomic
/// words. The stamp is the synchronisation point (release-published,
/// acquire-read); payload words only need to be written before the stamp
/// release and read after the stamp acquire.
#[derive(Debug)]
struct Slot {
    // ordering: load=Acquire, store=Release -- the Vyukov stamp is the slot's publication point: payload words are written before the release store and read after the acquire load
    stamp: AtomicUsize,
    // ordering: load=Relaxed, store=Relaxed -- payload word, ordered solely by the stamp edge
    seq: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed -- payload word, ordered solely by the stamp edge
    kind: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed -- payload word, ordered solely by the stamp edge
    shard: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed -- payload word, ordered solely by the stamp edge
    detail: AtomicU64,
}

/// Bounded lock-free MPMC journal of [`Event`]s. See the module docs for
/// the publication protocol and drop semantics.
#[derive(Debug)]
pub struct EventJournal {
    slots: Vec<Slot>,
    mask: usize,
    /// Next claim position for producers; doubles as the seq counter.
    // ordering: load=Relaxed, rmw=Relaxed -- claim counter; the CAS only needs atomicity, publication rides the stamp edge
    enqueue_pos: AtomicUsize,
    // ordering: load=Relaxed, rmw=Relaxed -- claim counter; the CAS only needs atomicity, recycling rides the stamp edge
    dequeue_pos: AtomicUsize,
    // ordering: load=Relaxed, rmw=Relaxed -- statistic; no ordering obligations
    dropped: AtomicU64,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// A journal holding up to [`DEFAULT_JOURNAL_CAPACITY`] undrained
    /// events.
    pub fn new() -> Self {
        Self::default()
    }

    /// A journal with the given capacity, rounded up to a power of two
    /// (minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                seq: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                shard: AtomicU64::new(NO_SHARD),
                detail: AtomicU64::new(0),
            })
            .collect();
        Self {
            slots,
            mask: cap.wrapping_sub(1),
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of events the ring can hold undrained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped because the ring was full at publication time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publish an event. Lock-free: a bounded CAS loop to claim a slot,
    /// payload stores, and one release store. Returns the event's sequence
    /// number, or `None` if the ring was full (the event is dropped and
    /// counted — publishing never blocks).
    pub fn publish(&self, kind: EventKind, shard: Option<u64>, detail: u64) -> Option<u64> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = self.slots.get(pos & self.mask)?;
            let stamp = slot.stamp.load(Ordering::Acquire);
            // Vyukov stamp discipline: == pos means free to claim, < pos
            // means the consumer has not yet recycled it (ring full).
            if stamp == pos {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let seq = pos as u64;
                        slot.seq.store(seq, Ordering::Relaxed);
                        slot.kind.store(kind.code(), Ordering::Relaxed);
                        slot.shard
                            .store(shard.unwrap_or(NO_SHARD), Ordering::Relaxed);
                        slot.detail.store(detail, Ordering::Relaxed);
                        // Publish: consumers acquire this stamp before
                        // reading the payload words above.
                        slot.stamp.store(pos.wrapping_add(1), Ordering::Release);
                        return Some(seq);
                    }
                    Err(actual) => pos = actual,
                }
            } else if stamp.wrapping_sub(pos) > self.mask {
                // Stamp lags pos by a full lap: ring is full. Drop-newest.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return None;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest undrained event, if any. Lock-free; safe to call
    /// concurrently with publishers and other drainers.
    pub fn pop(&self) -> Option<Event> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = self.slots.get(pos & self.mask)?;
            let stamp = slot.stamp.load(Ordering::Acquire);
            let expected = pos.wrapping_add(1);
            if stamp == expected {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let event = Event {
                            seq: slot.seq.load(Ordering::Relaxed),
                            kind: EventKind::from_code(slot.kind.load(Ordering::Relaxed)),
                            shard: match slot.shard.load(Ordering::Relaxed) {
                                NO_SHARD => None,
                                s => Some(s),
                            },
                            detail: slot.detail.load(Ordering::Relaxed),
                        };
                        // Recycle: mark the slot free for the producer one
                        // lap ahead.
                        slot.stamp.store(
                            pos.wrapping_add(self.mask).wrapping_add(1),
                            Ordering::Release,
                        );
                        return Some(event);
                    }
                    Err(actual) => pos = actual,
                }
            } else if stamp == pos {
                // Slot not yet published at this lap: ring is empty.
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every currently published event, oldest first, without
    /// stopping publishers. Events published concurrently with the drain
    /// may or may not be included; they stay queued for the next drain if
    /// not.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(event) = self.pop() {
            out.push(event);
        }
        out
    }

    /// Events currently queued (published, not yet drained). Approximate
    /// under concurrency.
    pub fn len(&self) -> usize {
        let head = self.enqueue_pos.load(Ordering::Relaxed);
        let tail = self.dequeue_pos.load(Ordering::Relaxed);
        head.wrapping_sub(tail).min(self.slots.len())
    }

    /// True when no published events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_then_drain_in_order() {
        let j = EventJournal::with_capacity(8);
        assert_eq!(j.publish(EventKind::PeriodRollover, Some(0), 1), Some(0));
        assert_eq!(j.publish(EventKind::WorkerFault, Some(2), 7), Some(1));
        assert_eq!(j.publish(EventKind::CheckpointPublish, None, 3), Some(2));
        let events = j.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, EventKind::PeriodRollover);
        assert_eq!(events[0].shard, Some(0));
        assert_eq!(events[1].kind, EventKind::WorkerFault);
        assert_eq!(events[1].detail, 7);
        assert_eq!(events[2].shard, None);
        assert!(j.is_empty());
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let j = EventJournal::with_capacity(4);
        for i in 0..4 {
            assert!(j.publish(EventKind::PeriodRollover, None, i).is_some());
        }
        assert_eq!(j.publish(EventKind::WorkerFault, None, 99), None);
        assert_eq!(j.dropped(), 1);
        // The queued history is intact and the dropped event left no gap.
        let events = j.drain();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // Space is back after the drain; seq continues where claims left off.
        assert_eq!(j.publish(EventKind::Rollback, Some(1), 0), Some(4));
    }

    #[test]
    fn drain_while_publishing_keeps_seqs_contiguous() {
        let j = Arc::new(EventJournal::with_capacity(64));
        let publisher = {
            let j = Arc::clone(&j);
            std::thread::spawn(move || {
                let mut published = 0u64;
                for i in 0..10_000u64 {
                    if j.publish(EventKind::PeriodRollover, Some(i % 4), i)
                        .is_some()
                    {
                        published += 1;
                    }
                }
                published
            })
        };
        let mut drained = Vec::new();
        while !publisher.is_finished() {
            drained.extend(j.drain());
        }
        let published = publisher.join().unwrap();
        drained.extend(j.drain());
        assert_eq!(drained.len() as u64, published);
        for pair in drained.windows(2) {
            assert!(
                pair[1].seq > pair[0].seq,
                "seqs strictly increase in drain order"
            );
        }
        // Published events are exactly seq 0..published: contiguous.
        let max_seq = drained.last().map(|e| e.seq).unwrap_or(0);
        assert_eq!(max_seq + 1, published);
    }

    #[test]
    fn concurrent_publishers_lose_nothing_when_capacity_suffices() {
        let j = Arc::new(EventJournal::with_capacity(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..512u64 {
                        assert!(j.publish(EventKind::WorkerFault, Some(t), i).is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = j.drain();
        assert_eq!(events.len(), 2048);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(*s, i as u64, "every seq assigned exactly once");
        }
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [
            EventKind::PeriodRollover,
            EventKind::WorkerFault,
            EventKind::Rollback,
            EventKind::Degradation,
            EventKind::CheckpointPublish,
            EventKind::CheckpointRestore,
            EventKind::DeltaPublish,
            EventKind::Compaction,
            EventKind::ChainFallback,
            EventKind::HealthReport,
        ] {
            assert_eq!(EventKind::from_code(kind.code()), kind);
            assert!(!kind.name().is_empty());
        }
    }
}
