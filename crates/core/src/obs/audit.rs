//! Per-period algorithm-health auditing: is the sketch still inside the
//! paper's accuracy envelope?
//!
//! "Finding Significant Items in Data Streams" (ICDE 2019) gives concrete
//! per-period health signals that are cheap to compute online:
//!
//! * **table occupancy** — the load factor the error analysis is
//!   parameterised by;
//! * **min/median in-bucket significance** — each bucket's minimum is its
//!   *admission threshold* (a new item must out-significance the bucket
//!   minimum to displace it, §long-tail replacement), so the distribution
//!   of bucket minimums says how contested the table is;
//! * **eviction and decay pressure** — long-tail replacements
//!   (`admissions`) and collision decrements (`decrements`) this period;
//! * **estimated error bound** — the paper bounds significance
//!   underestimation by the decremented mass a tracked item can have
//!   absorbed; the online analogue used here is the α-weighted decrement
//!   mass per cell this period
//!   (`α · Δdecrements / capacity_cells`), which rises exactly when the
//!   stream outgrows the table.
//!
//! [`HealthAuditor::audit`] computes these at a period boundary (tables
//! are quiescent behind the epoch barrier), publishes them as gauges,
//! journals a [`EventKind::HealthReport`] event whose `detail` word
//! carries period-over-period [`drift`] flags, and returns the full
//! [`HealthReport`]. Bucket statistics are computed over a rotating
//! sample of up to [`SAMPLE_BUCKETS`] buckets per shard per audit so the
//! audit's cost stays flat no matter how large the table is (small tables
//! are covered exactly).

use super::journal::EventKind;
use super::metrics::Gauge;
use super::registry::Labels;
use super::RuntimeObs;
use crate::stats::LtcStats;
use crate::table::Ltc;
use std::sync::{Arc, Mutex};

/// Buckets sampled per shard per audit (rotating cursor, so successive
/// audits cover the whole table of any size).
pub const SAMPLE_BUCKETS: usize = 256;

/// Period-over-period drift flag bits, carried in the
/// [`EventKind::HealthReport`] journal event's `detail` word and in the
/// `ltc_audit_drift_flags` gauge.
pub mod drift {
    /// A shard's cumulative counters went *backwards* since the previous
    /// audit: a table was rolled back (supervised recovery or an explicit
    /// checkpoint restore) between the two periods.
    pub const ROLLBACK: u64 = 1;
    /// Occupancy moved more than [`OCCUPANCY_JUMP_PPM`] between audits —
    /// the stream's working set shifted abruptly.
    pub const OCCUPANCY_JUMP: u64 = 2;
    /// Eviction pressure more than doubled since the previous audit —
    /// long-tail replacement is churning the table.
    pub const EVICTION_SURGE: u64 = 4;

    /// Occupancy delta (parts per million) that raises
    /// [`OCCUPANCY_JUMP`]: 10 percentage points.
    pub const OCCUPANCY_JUMP_PPM: u64 = 100_000;
}

/// One period's algorithm-health report. Fractional quantities are
/// fixed-point so they can double as `u64` gauge values: `_ppm` = parts
/// per million, `_milli` = thousandths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Stream period the report covers (periods completed so far).
    pub period: u64,
    /// Occupied cells per million sampled cells.
    pub occupancy_ppm: u64,
    /// Minimum over sampled buckets of the bucket's minimum cell
    /// significance (×1000). A bucket with an empty cell contributes 0 —
    /// admission there is free.
    pub min_significance_milli: u64,
    /// Median over sampled buckets of the bucket's minimum cell
    /// significance (×1000): the typical admission threshold.
    pub median_significance_milli: u64,
    /// Long-tail replacements (cell evictions) since the previous audit.
    pub evictions: u64,
    /// Collision decrements since the previous audit.
    pub decays: u64,
    /// Estimated significance-underestimation bound (×1000): α-weighted
    /// decrement mass per cell this period.
    pub error_bound_milli: u64,
    /// Period-over-period [`drift`] flag bits (0 = steady).
    pub drift: u64,
}

/// Counter snapshot the next audit diffs against.
struct Baseline {
    stats: LtcStats,
    periods_completed: u64,
    rollbacks: u64,
    occupancy_ppm: u64,
    evictions: u64,
}

/// The per-period health auditor: owns the audit gauges and the previous
/// period's baseline. One auditor per runtime; gauges are registered
/// idempotently so runtimes sharing a [`RuntimeObs`] share the cells.
pub struct HealthAuditor {
    occupancy: Gauge,
    min_significance: Gauge,
    median_significance: Gauge,
    evictions: Gauge,
    decays: Gauge,
    error_bound: Gauge,
    drift_flags: Gauge,
    last: Option<Baseline>,
    cursor: usize,
}

impl std::fmt::Debug for HealthAuditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthAuditor")
            .field("cursor", &self.cursor)
            .field("has_baseline", &self.last.is_some())
            .finish()
    }
}

/// Poison-tolerant lock (the auditor runs right after worker supervision;
/// a poisoned table mutex was already handled by the typed fault path).
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `x * 1000` as a saturating u64 (fixed-point milli encoding).
fn milli(x: f64) -> u64 {
    if x.is_finite() && x > 0.0 {
        let scaled = x * 1000.0;
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        }
    } else {
        0
    }
}

impl HealthAuditor {
    /// Register (idempotently) the audit gauge families on `obs`'s
    /// registry and return an auditor with no baseline (the first audit
    /// reports zero deltas and no drift).
    pub fn new(obs: &RuntimeObs) -> Self {
        let registry = obs.registry();
        Self {
            occupancy: registry.gauge(
                "ltc_audit_occupancy_ppm",
                "Occupied cells per million sampled cells (last audit).",
                Labels::new(),
            ),
            min_significance: registry.gauge(
                "ltc_audit_min_significance_milli",
                "Minimum bucket-minimum significance, x1000 (last audit).",
                Labels::new(),
            ),
            median_significance: registry.gauge(
                "ltc_audit_median_significance_milli",
                "Median bucket-minimum significance (admission threshold), x1000 (last audit).",
                Labels::new(),
            ),
            evictions: registry.gauge(
                "ltc_audit_evictions",
                "Long-tail replacements between the last two audits.",
                Labels::new(),
            ),
            decays: registry.gauge(
                "ltc_audit_decays",
                "Collision decrements between the last two audits.",
                Labels::new(),
            ),
            error_bound: registry.gauge(
                "ltc_audit_error_bound_milli",
                "Estimated significance-underestimation bound, x1000 (last audit).",
                Labels::new(),
            ),
            drift_flags: registry.gauge(
                "ltc_audit_drift_flags",
                "Period-over-period drift flag bits (1=rollback, 2=occupancy jump, 4=eviction surge).",
                Labels::new(),
            ),
            last: None,
            cursor: 0,
        }
    }

    /// Audit the shard tables at a period boundary: compute the health
    /// signals, publish the gauges, journal a
    /// [`EventKind::HealthReport`] with the drift bits, and return the
    /// report. Takes each table's lock briefly — call where the pipeline
    /// is quiescent (right after the epoch barrier), never on the record
    /// path.
    ///
    /// `rollbacks` is the caller's cumulative rollback count (worker
    /// restarts + checkpoint restores): table stats are process-local and
    /// survive a snapshot restore, so the rollback itself must be signalled
    /// explicitly. An increase since the previous audit — or any table
    /// counter going backwards — raises [`drift::ROLLBACK`].
    pub fn audit(
        &mut self,
        tables: &[Arc<Mutex<Ltc>>],
        period: u64,
        rollbacks: u64,
        obs: &RuntimeObs,
    ) -> HealthReport {
        let mut merged = LtcStats::default();
        let mut periods_completed: u64 = 0;
        let mut sampled_cells: u64 = 0;
        let mut occupied_cells: u64 = 0;
        let mut capacity_cells: u64 = 0;
        let mut bucket_minimums: Vec<f64> = Vec::new();
        let mut alpha = 0.0f64;
        for table in tables {
            let table = lock_recover(table);
            merged = merged.merge(&table.stats());
            periods_completed = periods_completed.saturating_add(table.periods_completed());
            let config = table.config();
            let weights = config.weights;
            alpha = weights.alpha;
            let total_buckets = config.buckets;
            capacity_cells = capacity_cells.saturating_add(table.capacity_cells() as u64);
            if total_buckets == 0 {
                continue;
            }
            let d = config.cells_per_bucket;
            let sample = total_buckets.min(SAMPLE_BUCKETS);
            for k in 0..sample {
                let bucket = self
                    .cursor
                    .wrapping_add(k)
                    .checked_rem(total_buckets)
                    .unwrap_or(0);
                let mut minimum: Option<f64> = None;
                for cell in table.bucket_cells(bucket.saturating_mul(d), d) {
                    sampled_cells = sampled_cells.saturating_add(1);
                    let significance = if cell.occupied() {
                        occupied_cells = occupied_cells.saturating_add(1);
                        cell.significance(&weights)
                    } else {
                        0.0
                    };
                    minimum = Some(match minimum {
                        Some(m) => m.min(significance),
                        None => significance,
                    });
                }
                bucket_minimums.push(minimum.unwrap_or(0.0));
            }
        }
        self.cursor = self.cursor.wrapping_add(SAMPLE_BUCKETS);

        let occupancy_ppm = occupied_cells
            .saturating_mul(1_000_000)
            .checked_div(sampled_cells)
            .unwrap_or(0);
        bucket_minimums.sort_unstable_by(f64::total_cmp);
        let min_significance_milli = milli(bucket_minimums.first().copied().unwrap_or(0.0));
        let median_significance_milli = milli(
            bucket_minimums
                .get(bucket_minimums.len() / 2)
                .copied()
                .unwrap_or(0.0),
        );

        // Period-over-period deltas. A counter that went backwards means a
        // table was rolled back between the audits.
        let (evictions, decays, rolled_back, previous) = match &self.last {
            Some(base) => {
                let regressed = merged.inserts < base.stats.inserts
                    || merged.admissions < base.stats.admissions
                    || merged.decrements < base.stats.decrements
                    || merged.harvests < base.stats.harvests
                    || periods_completed < base.periods_completed
                    || rollbacks > base.rollbacks;
                (
                    merged.admissions.saturating_sub(base.stats.admissions),
                    merged.decrements.saturating_sub(base.stats.decrements),
                    regressed,
                    Some((base.occupancy_ppm, base.evictions)),
                )
            }
            None => (merged.admissions, merged.decrements, false, None),
        };
        let error_bound_milli = if capacity_cells > 0 {
            milli(alpha * decays as f64 / capacity_cells as f64)
        } else {
            0
        };

        let mut drift_bits = 0u64;
        if rolled_back {
            drift_bits |= drift::ROLLBACK;
        }
        if let Some((previous_occupancy, previous_evictions)) = previous {
            if occupancy_ppm.abs_diff(previous_occupancy) > drift::OCCUPANCY_JUMP_PPM {
                drift_bits |= drift::OCCUPANCY_JUMP;
            }
            if evictions > previous_evictions.saturating_mul(2).saturating_add(16) {
                drift_bits |= drift::EVICTION_SURGE;
            }
        }

        self.last = Some(Baseline {
            stats: merged,
            periods_completed,
            rollbacks,
            occupancy_ppm,
            evictions,
        });

        self.occupancy.set(occupancy_ppm);
        self.min_significance.set(min_significance_milli);
        self.median_significance.set(median_significance_milli);
        self.evictions.set(evictions);
        self.decays.set(decays);
        self.error_bound.set(error_bound_milli);
        self.drift_flags.set(drift_bits);
        obs.journal()
            .publish(EventKind::HealthReport, None, drift_bits);

        HealthReport {
            period,
            occupancy_ppm,
            min_significance_milli,
            median_significance_milli,
            evictions,
            decays,
            error_bound_milli,
            drift: drift_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LtcConfig, Variant};
    use ltc_common::Weights;

    fn table(buckets: usize, variant: Variant) -> Arc<Mutex<Ltc>> {
        let config = LtcConfig::builder()
            .buckets(buckets)
            .cells_per_bucket(4)
            .records_per_period(1_000)
            .weights(Weights {
                alpha: 1.0,
                beta: 1.0,
            })
            .variant(variant)
            .seed(7)
            .build();
        Arc::new(Mutex::new(Ltc::new(config)))
    }

    #[test]
    fn empty_table_reports_zero_occupancy_and_no_drift() {
        let obs = RuntimeObs::new();
        let mut auditor = HealthAuditor::new(&obs);
        let tables = vec![table(8, Variant::FULL)];
        let report = auditor.audit(&tables, 1, 0, &obs);
        assert_eq!(report.occupancy_ppm, 0);
        assert_eq!(report.min_significance_milli, 0);
        assert_eq!(report.drift, 0);
        let events = obs.journal().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events.first().map(|e| e.kind),
            Some(EventKind::HealthReport)
        );
    }

    #[test]
    fn occupancy_and_thresholds_track_the_stream() {
        let obs = RuntimeObs::new();
        let mut auditor = HealthAuditor::new(&obs);
        // Build residents with freq > 1, then hammer with distinct misses:
        // BASIC pays a decrement per contested miss (counted only while the
        // worn cell stays above zero — hence the warm-up), and admissions
        // happen each time a cell finally wears out.
        let tables = vec![table(4, Variant::BASIC)];
        {
            let mut t = lock_recover(tables.first().expect("table"));
            for _ in 0..5 {
                for id in 0..16u64 {
                    t.insert(id);
                }
            }
            for id in 100..300u64 {
                t.insert(id);
            }
            t.end_period();
        }
        let report = auditor.audit(&tables, 1, 0, &obs);
        assert!(report.occupancy_ppm > 0, "stream must occupy cells");
        assert!(
            report.occupancy_ppm <= 1_000_000,
            "ppm must be a proportion"
        );
        // 200 distinct ids into 16 cells: evictions and decays happened.
        assert!(report.evictions > 0);
        assert!(report.decays > 0);
        assert!(report.error_bound_milli > 0);
        // Full table: every sampled bucket-minimum is a real significance.
        assert!(report.median_significance_milli >= report.min_significance_milli);
    }

    #[test]
    fn rollback_between_audits_raises_the_drift_flag() {
        let obs = RuntimeObs::new();
        let mut auditor = HealthAuditor::new(&obs);
        let tables = vec![table(4, Variant::FULL)];
        let pristine = lock_recover(tables.first().expect("table")).to_snapshot();
        {
            let mut t = lock_recover(tables.first().expect("table"));
            for id in 0..500u64 {
                t.insert(id);
            }
            t.end_period();
        }
        let first = auditor.audit(&tables, 1, 0, &obs);
        assert_eq!(first.drift & drift::ROLLBACK, 0);
        // Roll the table back (what supervised recovery does), then audit.
        lock_recover(tables.first().expect("table"))
            .restore_snapshot(&pristine)
            .expect("restore pristine snapshot");
        // periods_completed regressed (1 -> 0) and the caller reports one
        // rollback; either alone raises the flag.
        let second = auditor.audit(&tables, 2, 1, &obs);
        assert_ne!(
            second.drift & drift::ROLLBACK,
            0,
            "a rollback between audits must raise the flag"
        );
        // The flag also rides the journal event's detail word.
        let events = obs.journal().drain();
        let last = events.last().expect("health report event");
        assert_eq!(last.kind, EventKind::HealthReport);
        assert_ne!(last.detail & drift::ROLLBACK, 0);
    }

    #[test]
    fn gauges_are_published_and_exposition_stays_valid() {
        let obs = RuntimeObs::new();
        let mut auditor = HealthAuditor::new(&obs);
        let tables = vec![table(4, Variant::FULL)];
        {
            let mut t = lock_recover(tables.first().expect("table"));
            for id in 0..100u64 {
                t.insert(id);
            }
            t.end_period();
        }
        let report = auditor.audit(&tables, 1, 0, &obs);
        let text = obs.render_prometheus();
        assert!(text.contains(&format!("ltc_audit_occupancy_ppm {}", report.occupancy_ppm)));
        assert!(text.contains("ltc_audit_drift_flags 0"));
        super::super::validate_exposition(&text).expect("valid exposition");
    }
}
