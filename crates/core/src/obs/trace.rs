//! Tier-1 wait-free span tracing: per-thread span rings over a monotonic
//! clock.
//!
//! This module answers *where time went* across the batch → ring →
//! shard-worker → barrier → checkpoint path, under the same
//! synchronisation tier rules as [`super::metrics`]: **every atomic access
//! on the span-record path is `Relaxed`** — no locks, no stronger
//! orderings, no allocation. The `obs_hot_path` lint rule enforces this
//! structurally for this file, exactly as it does for `metrics.rs`.
//!
//! ## Shape
//!
//! A [`Tracer`] owns a fixed pool of [`SpanRing`]s. Each recording thread
//! claims one ring up front via [`Tracer::register`] and records through
//! its [`TraceTrack`] handle — a ring is **single-writer** by convention
//! (the claiming thread and its supervised replacements), so record-side
//! cursors need no read-modify-write. A full ring **drops the newest
//! span** and counts it in a dropped-spans cell (mirroring the journal's
//! drop-newest contract: history already recorded is never overwritten).
//!
//! ## Spans and causality
//!
//! A span is seven words: trace id, span id, parent span id, name code,
//! track, start, duration (nanoseconds from the tracer's monotonic
//! anchor). Parent links are carried by [`SpanCtx`] values — plain `Copy`
//! data that crosses thread boundaries *inside* existing messages (the
//! pipeline ships a batch's enqueue-span ctx inside the SPSC `Msg`), so
//! propagation adds no synchronisation of its own. Scoped timing uses
//! [`SpanGuard`] (records on drop, including during a panic unwind, which
//! is how a faulting batch still closes its span); cross-call spans use
//! [`PendingSpan`] with explicit [`TraceTrack::finish`].
//!
//! ## Drains are externally synchronised
//!
//! Like the metrics tier, record-side `Relaxed` is sound because readers
//! do not rely on the atomics for cross-thread ordering: drains are meant
//! to run at quiescent points — after the pipeline's epoch barrier
//! (`Progress` is a mutex/condvar pair, a full happens-before edge) or
//! after joining the recording thread. A drain racing a live recorder is
//! **best-effort**: it may observe a torn or duplicated span, never
//! undefined behaviour (every slot word is atomic).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Rings in a default tracer pool ([`Tracer::new`]). Registrations past
/// the pool fall back to a shared zero-capacity ring that drops (and
/// counts) everything.
pub const DEFAULT_TRACKS: usize = 16;

/// Span slots per ring in a default tracer pool.
pub const DEFAULT_SPANS_PER_TRACK: usize = 2048;

/// Stable span/track name codes. Codes (not strings) live in the ring
/// slots so recording never allocates; [`span_name`] maps them back for
/// export.
pub mod names {
    /// Track: the routing/coordinator thread of a `ParallelLtc`.
    pub const TRACK_ROUTER: u64 = 1;
    /// Track: a shard worker thread.
    pub const TRACK_SHARD: u64 = 2;
    /// Track: the background durability service thread.
    pub const TRACK_DURABILITY: u64 = 3;
    /// The router hands a filled batch to a shard's SPSC ring.
    pub const BATCH_ENQUEUE: u64 = 10;
    /// A shard worker dequeues and ingests one batch (`insert_batch`).
    pub const BATCH_PROCESS: u64 = 11;
    /// The router blocks on the epoch barrier (flush + wait for acks).
    pub const BARRIER_WAIT: u64 = 12;
    /// A shard worker applies `end_period` (CLOCK sweep + snapshot).
    pub const END_PERIOD_APPLY: u64 = 13;
    /// A shard worker applies `finish` (final-period harvest).
    pub const FINISH_APPLY: u64 = 14;
    /// A full checkpoint frame is built and published.
    pub const CHECKPOINT_SAVE: u64 = 15;
    /// Shard tables are restored from a checkpoint store.
    pub const CHECKPOINT_RESTORE: u64 = 16;
    /// A delta frame is built and published onto the live chain.
    pub const DELTA_SAVE: u64 = 17;
    /// A delta chain is compacted into a fresh full frame.
    pub const COMPACTION: u64 = 18;
    /// A worker's message handler panicked (zero-duration marker span).
    pub const WORKER_FAULT: u64 = 19;
    /// The per-period algorithm-health audit pass.
    pub const AUDIT: u64 = 20;

    /// Human-readable name for a span/track code (`"unknown"` for codes
    /// this build does not know).
    pub fn span_name(code: u64) -> &'static str {
        match code {
            TRACK_ROUTER => "router",
            TRACK_SHARD => "shard",
            TRACK_DURABILITY => "durability",
            BATCH_ENQUEUE => "batch_enqueue",
            BATCH_PROCESS => "batch_process",
            BARRIER_WAIT => "barrier_wait",
            END_PERIOD_APPLY => "end_period_apply",
            FINISH_APPLY => "finish_apply",
            CHECKPOINT_SAVE => "checkpoint_save",
            CHECKPOINT_RESTORE => "checkpoint_restore",
            DELTA_SAVE => "delta_save",
            COMPACTION => "compaction",
            WORKER_FAULT => "worker_fault",
            AUDIT => "audit",
            _ => "unknown",
        }
    }
}

/// A span's identity as it travels between threads: which causal tree it
/// belongs to (`trace_id`) and which span new children should point at
/// (`span_id`). Plain `Copy` data — ship it inside existing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// Root span id of the causal tree this span belongs to.
    pub trace_id: u64,
    /// This span's own id (children record it as their parent).
    pub span_id: u64,
}

/// One drained span: a completed timed region on some track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Root span id of the causal tree.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Parent span id (`0` = root of its tree).
    pub parent_id: u64,
    /// Name code (see [`names`]).
    pub name: u64,
    /// Ring index the span was recorded on (export thread id).
    pub track: u64,
    /// Start, nanoseconds from the tracer's monotonic anchor.
    pub start_ns: u64,
    /// Duration in nanoseconds (`0` for marker events).
    pub dur_ns: u64,
}

/// One ring slot: six atomic words rewritten wholesale by the (single)
/// recording thread. Readers at quiescent points see a consistent span;
/// racing readers may see a torn one (documented best-effort).
struct SpanSlot {
    // ordering: load=Relaxed, store=Relaxed -- payload word of a single-writer ring slot; drains are externally synchronized (epoch barrier or thread join)
    trace_id: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed -- payload word of a single-writer ring slot; drains are externally synchronized (epoch barrier or thread join)
    span_id: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed -- payload word of a single-writer ring slot; drains are externally synchronized (epoch barrier or thread join)
    parent_id: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed -- payload word of a single-writer ring slot; drains are externally synchronized (epoch barrier or thread join)
    name: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed -- payload word of a single-writer ring slot; drains are externally synchronized (epoch barrier or thread join)
    start_ns: AtomicU64,
    // ordering: load=Relaxed, store=Relaxed -- payload word of a single-writer ring slot; drains are externally synchronized (epoch barrier or thread join)
    dur_ns: AtomicU64,
}

impl SpanSlot {
    fn empty() -> Self {
        Self {
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_id: AtomicU64::new(0),
            name: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

/// One track's bounded span ring. Single-writer on the record side;
/// drop-newest with a counted-drops cell when full.
struct SpanRing {
    /// Ring index within the tracer pool (exported as the thread id).
    index: u64,
    /// Track name code, set once at claim time.
    // ordering: load=Relaxed, store=Relaxed -- cosmetic label written once at registration; readers tolerate the pre-claim zero
    name: AtomicU64,
    slots: Vec<SpanSlot>,
    /// Writer cursor: next slot to fill. Only the owning thread advances
    /// it; drains read it to bound the drained region.
    // ordering: load=Relaxed, store=Relaxed -- single-writer cursor; drains are externally synchronized (epoch barrier or thread join)
    head: AtomicU64,
    /// Drain cursor: first undrained slot.
    // ordering: load=Relaxed, store=Relaxed -- advanced only by (externally synchronized) drains; the writer reads it to detect a full ring
    tail: AtomicU64,
    /// Spans dropped because the ring was full (drop-newest).
    // ordering: load=Relaxed, rmw=Relaxed -- wait-free statistic; same contract as a metrics counter
    dropped: AtomicU64,
}

impl SpanRing {
    fn with_capacity(index: u64, capacity: usize) -> Self {
        // Power-of-two capacity so the cursor-to-slot map is a mask.
        let capacity = capacity.next_power_of_two();
        Self {
            index,
            name: AtomicU64::new(0),
            slots: (0..capacity).map(|_| SpanSlot::empty()).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// A ring that records nothing: every push is a counted drop. Backs
    /// registrations past the pool.
    fn sink(index: u64) -> Self {
        Self {
            index,
            name: AtomicU64::new(0),
            slots: Vec::new(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record one span (the hot path): two cursor loads, six payload
    /// stores, one cursor store — all `Relaxed`, no branches that can
    /// block. A full ring drops the span and bumps `dropped`.
    fn push(
        &self,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        name: u64,
        start_ns: u64,
        dur_ns: u64,
    ) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        if head.wrapping_sub(tail) >= self.slots.len() as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mask = self.slots.len().wrapping_sub(1);
        let Some(slot) = self.slots.get((head as usize) & mask) else {
            return; // unreachable: masked index is always in range
        };
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.span_id.store(span_id, Ordering::Relaxed);
        slot.parent_id.store(parent_id, Ordering::Relaxed);
        slot.name.store(name, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Relaxed);
    }

    /// Drain every recorded span into `out`, oldest first. Meant for
    /// quiescent points; see the module docs for the race contract.
    fn drain_into(&self, out: &mut Vec<Span>) {
        let head = self.head.load(Ordering::Relaxed);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let mask = self.slots.len().wrapping_sub(1);
        while tail != head {
            if let Some(slot) = self.slots.get((tail as usize) & mask) {
                out.push(Span {
                    trace_id: slot.trace_id.load(Ordering::Relaxed),
                    span_id: slot.span_id.load(Ordering::Relaxed),
                    parent_id: slot.parent_id.load(Ordering::Relaxed),
                    name: slot.name.load(Ordering::Relaxed),
                    track: self.index,
                    start_ns: slot.start_ns.load(Ordering::Relaxed),
                    dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                });
            }
            tail = tail.wrapping_add(1);
        }
        self.tail.store(head, Ordering::Relaxed);
    }

    fn queued(&self) -> u64 {
        self.head
            .load(Ordering::Relaxed)
            .wrapping_sub(self.tail.load(Ordering::Relaxed))
    }
}

/// Process-wide span id allocator shared by every track of a tracer.
struct Ids {
    // ordering: rmw=Relaxed -- unique-id ticket counter; only uniqueness matters, not ordering
    next: AtomicU64,
}

/// Ring-claim cursor for the tracer pool.
struct Claims {
    // ordering: load=Relaxed, rmw=Relaxed -- registration ticket counter; claiming is cold and needs uniqueness only, export reads it as a plain statistic
    cursor: AtomicU64,
}

/// The tracing subsystem: a fixed pool of per-thread span rings, a span
/// id source, and a monotonic clock anchor. Cheap to share (`Arc`); see
/// the module docs for the synchronisation contract.
pub struct Tracer {
    rings: Vec<Arc<SpanRing>>,
    sink: Arc<SpanRing>,
    claims: Claims,
    ids: Arc<Ids>,
    anchor: Instant,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("tracks", &self.rings.len())
            .field("queued", &self.queued())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer with the default pool shape ([`DEFAULT_TRACKS`] rings of
    /// [`DEFAULT_SPANS_PER_TRACK`] slots).
    pub fn new() -> Self {
        Self::with_shape(DEFAULT_TRACKS, DEFAULT_SPANS_PER_TRACK)
    }

    /// A tracer with `tracks` rings of `spans_per_track` slots each
    /// (rounded up to a power of two, minimum 2).
    pub fn with_shape(tracks: usize, spans_per_track: usize) -> Self {
        let capacity = spans_per_track.max(2);
        Self {
            rings: (0..tracks)
                .map(|i| Arc::new(SpanRing::with_capacity(i as u64, capacity)))
                .collect(),
            sink: Arc::new(SpanRing::sink(tracks as u64)),
            claims: Claims {
                cursor: AtomicU64::new(0),
            },
            ids: Arc::new(Ids {
                next: AtomicU64::new(0),
            }),
            anchor: Instant::now(),
        }
    }

    /// Claim the next ring in the pool for the calling thread. `name` is
    /// a track code from [`names`]. Past the pool, the returned track
    /// records nothing and counts every span as dropped — registration
    /// never fails and never blocks.
    pub fn register(&self, name: u64) -> TraceTrack {
        let claim = self.claims.cursor.fetch_add(1, Ordering::Relaxed);
        let ring = match self.rings.get(claim as usize) {
            Some(ring) => {
                ring.name.store(name, Ordering::Relaxed);
                Arc::clone(ring)
            }
            None => Arc::clone(&self.sink),
        };
        TraceTrack {
            ring,
            ids: Arc::clone(&self.ids),
            anchor: self.anchor,
        }
    }

    /// Drain every ring's recorded spans, oldest-first per track. Call at
    /// quiescent points (post-barrier, post-join) for exact results; a
    /// drain racing live recorders is best-effort.
    pub fn drain(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for ring in &self.rings {
            ring.drain_into(&mut out);
        }
        out
    }

    /// Total spans dropped to drop-newest overflow (or to post-pool
    /// registrations) across every track.
    pub fn dropped(&self) -> u64 {
        let mut total = self.sink.dropped.load(Ordering::Relaxed);
        for ring in &self.rings {
            total = total.saturating_add(ring.dropped.load(Ordering::Relaxed));
        }
        total
    }

    /// Spans currently recorded but not yet drained, across every track.
    pub fn queued(&self) -> u64 {
        let mut total = 0u64;
        for ring in &self.rings {
            total = total.saturating_add(ring.queued());
        }
        total
    }

    /// Claimed tracks as `(track index, name code)` pairs, for export
    /// metadata (Chrome `thread_name` records).
    pub fn tracks(&self) -> Vec<(u64, u64)> {
        let claimed = self.claims.cursor.load(Ordering::Relaxed) as usize;
        self.rings
            .iter()
            .take(claimed)
            .map(|ring| (ring.index, ring.name.load(Ordering::Relaxed)))
            .collect()
    }

    /// Nanoseconds since the tracer's monotonic anchor.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A claimed ring plus the shared id source and clock anchor: everything
/// one thread needs to record spans. Clone-cheap (two `Arc`s and a
/// `Copy` instant); hand clones to supervised worker replacements so a
/// restarted worker keeps recording on the same track.
#[derive(Clone)]
pub struct TraceTrack {
    ring: Arc<SpanRing>,
    ids: Arc<Ids>,
    anchor: Instant,
}

impl std::fmt::Debug for TraceTrack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceTrack")
            .field("track", &self.ring.index)
            .finish()
    }
}

/// A span begun with [`TraceTrack::begin`] and closed with
/// [`TraceTrack::finish`] — for regions that cross call boundaries where
/// a borrow-holding guard is inconvenient (the epoch barrier). `Copy`,
/// so it can be captured before a `catch_unwind` boundary.
#[derive(Debug, Clone, Copy)]
pub struct PendingSpan {
    /// The span's identity (hand to children / ship across threads).
    pub ctx: SpanCtx,
    /// Parent span id recorded when the span closes.
    pub parent_id: u64,
    /// Start, nanoseconds from the tracer anchor.
    pub start_ns: u64,
}

impl TraceTrack {
    /// Nanoseconds since the tracer's monotonic anchor.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn alloc_id(&self) -> u64 {
        // Ids start at 1: 0 is the "no parent" sentinel.
        self.ids
            .next
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(1)
    }

    /// A fresh root context: a new causal tree whose trace id is the
    /// root's own span id.
    pub fn root_ctx(&self) -> SpanCtx {
        let id = self.alloc_id();
        SpanCtx {
            trace_id: id,
            span_id: id,
        }
    }

    /// A fresh child context under `parent` (same tree, new span id).
    pub fn child_ctx(&self, parent: SpanCtx) -> SpanCtx {
        SpanCtx {
            trace_id: parent.trace_id,
            span_id: self.alloc_id(),
        }
    }

    /// Child of `parent` when given, fresh root otherwise.
    pub fn child_or_root(&self, parent: Option<SpanCtx>) -> SpanCtx {
        match parent {
            Some(parent) => self.child_ctx(parent),
            None => self.root_ctx(),
        }
    }

    /// Open a scoped span: records on drop (including during a panic
    /// unwind). The guard's [`SpanGuard::ctx`] is the handle children
    /// parent under.
    pub fn span(&self, name: u64, parent: Option<SpanCtx>) -> SpanGuard<'_> {
        let ctx = self.child_or_root(parent);
        let parent_id = parent.map(|p| p.span_id).unwrap_or(0);
        self.span_at(ctx, name, parent_id)
    }

    /// Open a scoped span under a pre-allocated context (so the ctx can
    /// outlive a `catch_unwind` boundary the guard dies inside of).
    pub fn span_at(&self, ctx: SpanCtx, name: u64, parent_id: u64) -> SpanGuard<'_> {
        SpanGuard {
            track: self,
            ctx,
            parent_id,
            name,
            start_ns: self.now_ns(),
        }
    }

    /// Begin a cross-call span; close it with [`finish`](Self::finish).
    pub fn begin(&self, parent: Option<SpanCtx>) -> PendingSpan {
        let ctx = self.child_or_root(parent);
        PendingSpan {
            ctx,
            parent_id: parent.map(|p| p.span_id).unwrap_or(0),
            start_ns: self.now_ns(),
        }
    }

    /// Close a [`begin`](Self::begin)-opened span as `name`.
    pub fn finish(&self, pending: &PendingSpan, name: u64) {
        let dur = self.now_ns().saturating_sub(pending.start_ns);
        self.record(pending.ctx, name, pending.parent_id, pending.start_ns, dur);
    }

    /// Record a zero-duration marker span (e.g. a fault) and return its
    /// context.
    pub fn event(&self, name: u64, parent: Option<SpanCtx>) -> SpanCtx {
        let ctx = self.child_or_root(parent);
        let parent_id = parent.map(|p| p.span_id).unwrap_or(0);
        self.record(ctx, name, parent_id, self.now_ns(), 0);
        ctx
    }

    /// Record a fully-specified span (the primitive the other entry
    /// points lower to).
    pub fn record(&self, ctx: SpanCtx, name: u64, parent_id: u64, start_ns: u64, dur_ns: u64) {
        self.ring
            .push(ctx.trace_id, ctx.span_id, parent_id, name, start_ns, dur_ns);
    }
}

/// Scoped span timer: opened by [`TraceTrack::span`], records its span on
/// drop — normal exit and panic unwind alike.
pub struct SpanGuard<'a> {
    track: &'a TraceTrack,
    ctx: SpanCtx,
    parent_id: u64,
    name: u64,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// The open span's identity, for parenting children under it.
    pub fn ctx(&self) -> SpanCtx {
        self.ctx
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur = self.track.now_ns().saturating_sub(self.start_ns);
        self.track
            .record(self.ctx, self.name, self.parent_id, self.start_ns, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_span_with_parent_links() {
        let tracer = Tracer::with_shape(2, 16);
        let track = tracer.register(names::TRACK_ROUTER);
        let child_ctx;
        {
            let root = track.span(names::BATCH_ENQUEUE, None);
            let child = track.span(names::BATCH_PROCESS, Some(root.ctx()));
            child_ctx = child.ctx();
            assert_eq!(child_ctx.trace_id, root.ctx().trace_id);
            assert_ne!(child_ctx.span_id, root.ctx().span_id);
        }
        let spans = tracer.drain();
        assert_eq!(spans.len(), 2);
        // Inner guard drops first.
        let child = spans.first().expect("child span");
        let root = spans.get(1).expect("root span");
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.trace_id, root.span_id);
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.name, names::BATCH_PROCESS);
        assert!(root.dur_ns >= child.dur_ns);
        assert!(root.start_ns <= child.start_ns);
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let tracer = Tracer::with_shape(1, 2);
        let track = tracer.register(names::TRACK_SHARD);
        for _ in 0..5 {
            track.event(names::BATCH_PROCESS, None);
        }
        assert_eq!(tracer.queued(), 2);
        assert_eq!(tracer.dropped(), 3);
        let first_ids: Vec<u64> = tracer.drain().iter().map(|s| s.span_id).collect();
        // Drop-newest: the two *oldest* spans survived.
        assert_eq!(first_ids, vec![1, 2]);
        assert_eq!(tracer.queued(), 0);
        // The ring accepts new spans again after the drain.
        track.event(names::BATCH_PROCESS, None);
        assert_eq!(tracer.drain().len(), 1);
    }

    #[test]
    fn registrations_past_the_pool_count_drops() {
        let tracer = Tracer::with_shape(1, 8);
        let _a = tracer.register(names::TRACK_ROUTER);
        let b = tracer.register(names::TRACK_SHARD);
        b.event(names::BATCH_PROCESS, None);
        assert_eq!(tracer.drain().len(), 0);
        assert_eq!(tracer.dropped(), 1);
    }

    #[test]
    fn ctx_propagation_across_threads_links_one_tree() {
        let tracer = Arc::new(Tracer::with_shape(2, 64));
        let producer = tracer.register(names::TRACK_ROUTER);
        let consumer = tracer.register(names::TRACK_SHARD);
        let enqueue_ctx = {
            let guard = producer.span(names::BATCH_ENQUEUE, None);
            guard.ctx()
        };
        let handle = std::thread::spawn(move || {
            let _span = consumer.span(names::BATCH_PROCESS, Some(enqueue_ctx));
        });
        handle.join().expect("consumer thread");
        // The join is the happens-before edge the drain relies on.
        let spans = tracer.drain();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.trace_id == enqueue_ctx.trace_id));
        let process = spans
            .iter()
            .find(|s| s.name == names::BATCH_PROCESS)
            .expect("process span");
        assert_eq!(process.parent_id, enqueue_ctx.span_id);
        assert_ne!(process.track, 0);
    }

    #[test]
    fn pending_span_times_the_region() {
        let tracer = Tracer::with_shape(1, 8);
        let track = tracer.register(names::TRACK_ROUTER);
        let pending = track.begin(None);
        std::thread::sleep(std::time::Duration::from_millis(2));
        track.finish(&pending, names::BARRIER_WAIT);
        let spans = tracer.drain();
        let span = spans.first().expect("barrier span");
        assert_eq!(span.name, names::BARRIER_WAIT);
        assert!(span.dur_ns >= 1_000_000, "dur {} too small", span.dur_ns);
    }

    #[test]
    fn guard_records_during_panic_unwind() {
        let tracer = Tracer::with_shape(1, 8);
        let track = tracer.register(names::TRACK_SHARD);
        let ctx = track.root_ctx();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = track.span_at(ctx, names::BATCH_PROCESS, 0);
            panic!("injected");
        }));
        assert!(result.is_err());
        let spans = tracer.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans.first().map(|s| s.span_id), Some(ctx.span_id));
    }

    #[test]
    fn tracks_report_claimed_names() {
        let tracer = Tracer::with_shape(4, 8);
        let _r = tracer.register(names::TRACK_ROUTER);
        let _s = tracer.register(names::TRACK_SHARD);
        let tracks = tracer.tracks();
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks.first(), Some(&(0, names::TRACK_ROUTER)));
        assert_eq!(tracks.get(1), Some(&(1, names::TRACK_SHARD)));
    }
}
