//! Wait-free metric primitives: counters, gauges and a fixed-bucket log2
//! histogram.
//!
//! Every update in this module is a single `Relaxed` atomic RMW or store —
//! no locks, no stronger orderings, no allocation. That is the hot-path
//! contract of the observability layer: instrumenting a per-record or
//! per-batch path must never add a synchronisation edge that the loom
//! models have not seen, and must never make a worker wait. The
//! `obs_hot_path` rule of `cargo run -p xtask -- lint` enforces this file
//! stays that way (any `Mutex`, `Condvar` or non-`Relaxed` ordering here is
//! a lint violation).
//!
//! Metrics are therefore *monotonic distributed counts*: readers
//! ([`Counter::get`], [`Histogram::snapshot`]) observe each cell at some
//! point in time, not an atomic cross-metric cut. That is the standard
//! Prometheus data model and exactly what the exporter needs.
//!
//! Handles are cheap `Arc` clones: the registry hands one to the hot path
//! and keeps another for export, so updates never touch the registry lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of finite log2 histogram buckets: bucket `i` has upper bound
/// `2^i`, so the finite range covers `[0, 2^39]` — as nanoseconds, about
/// nine minutes, far beyond any latency this runtime produces. Larger
/// values land in the overflow (`+Inf`) bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// One metric cell, padded out to a cache line. Counters and gauges are
/// tiny separate allocations; without the alignment several cells end up
/// on one line and a producer-owned cell false-shares with a
/// worker-owned one, turning "wait-free update" into a cross-core line
/// bounce per batch (measurable in `obs_overhead`).
#[derive(Debug, Default)]
#[repr(align(64))]
struct Cell {
    // ordering: load=Relaxed, store=Relaxed, rmw=Relaxed -- wait-free statistic; readers tolerate torn cross-metric snapshots by design
    value: AtomicU64,
}

/// A monotonically increasing counter. Updates are wait-free `Relaxed`
/// adds; clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<Cell>,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Wrapping at `u64::MAX` (reaching it takes centuries at any
    /// realistic rate; Prometheus treats a wrap as a counter reset).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge. Updates are wait-free `Relaxed` stores; clones
/// share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<Cell>,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.cell.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// Shared cells of a [`Histogram`]. Line-aligned like [`Cell`], so the
/// head of the bucket array never shares a line with a neighbouring
/// allocation's cell.
#[derive(Debug)]
#[repr(align(64))]
struct HistogramCells {
    /// Finite buckets plus one overflow (`+Inf`) bucket at the end. Each
    /// holds the count of observations in *its own* range (non-cumulative;
    /// the exporter accumulates).
    // ordering: load=Relaxed, rmw=Relaxed -- wait-free statistic; bucket/count/sum need not be mutually consistent at read time
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    // ordering: load=Relaxed, rmw=Relaxed -- wait-free statistic; bucket/count/sum need not be mutually consistent at read time
    count: AtomicU64,
    // ordering: load=Relaxed, rmw=Relaxed -- wait-free statistic; bucket/count/sum need not be mutually consistent at read time
    sum: AtomicU64,
}

/// A fixed-shape log2 histogram: bucket `i` counts observations `v` with
/// `v <= 2^i` (and `v > 2^(i-1)`), the last bucket is `+Inf`. Recording is
/// three wait-free `Relaxed` adds — one bucket, the count, the sum — with
/// the bucket index computed from `leading_zeros`, so the hot path costs a
/// handful of instructions regardless of the value. Clones share cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time copy of a histogram's cells (per-bucket counts are
/// non-cumulative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; index [`HISTOGRAM_BUCKETS`] is the
    /// overflow (`+Inf`) bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Interpolated quantile estimate, `q` in `[0, 1]`. The target rank is
    /// located in the cumulative bucket counts, then the value is linearly
    /// interpolated between the bucket's bounds — exact for streams
    /// uniform within a bucket, within one bucket's width otherwise.
    /// Returns `0.0` for an empty histogram; ranks landing in the overflow
    /// bucket report its lower bound (there is no upper bound to
    /// interpolate toward).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cumulative.saturating_add(n);
            if (next as f64) >= target {
                let lower = if i == 0 {
                    0.0
                } else {
                    bucket_bound(i.saturating_sub(1)) as f64
                };
                if i >= HISTOGRAM_BUCKETS {
                    return lower;
                }
                let upper = bucket_bound(i) as f64;
                let position = (target - cumulative as f64) / n as f64;
                return lower + position.clamp(0.0, 1.0) * (upper - lower);
            }
            cumulative = next;
        }
        // Concurrent records can leave count ahead of the bucket total;
        // the best available answer is the largest populated bound.
        bucket_bound(HISTOGRAM_BUCKETS.saturating_sub(1)) as f64
    }

    /// Interpolated median estimate (`quantile(0.50)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Interpolated 99th-percentile estimate (`quantile(0.99)`).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Interpolated 99.9th-percentile estimate (`quantile(0.999)`).
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// Upper bound of finite bucket `i`, i.e. `2^i`. Out-of-range indices
/// saturate to `u64::MAX` (the exporter never asks for them).
pub fn bucket_bound(i: usize) -> u64 {
    1u64.checked_shl(i as u32).unwrap_or(u64::MAX)
}

/// The bucket index for an observed value: the first finite bucket whose
/// bound is `>= value`, or the overflow bucket.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // ceil(log2(value)) for value >= 2: 64 - leading_zeros(value - 1).
    let idx = 64u32.saturating_sub(value.wrapping_sub(1).leading_zeros()) as usize;
    idx.min(HISTOGRAM_BUCKETS)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            cells: Arc::new(HistogramCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation. Wait-free: three `Relaxed` adds.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.cells.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Copy the cells out for export. Buckets are read after `count`, so a
    /// concurrent `record` can make the bucket total exceed `count` by the
    /// in-flight observations — never undercount them.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.cells.count.load(Ordering::Relaxed);
        let sum = self.cells.sum.load(Ordering::Relaxed);
        let buckets = self
            .cells
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 43, "clones share the cell");
    }

    #[test]
    fn gauge_overwrites() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS, "overflow");
        assert_eq!(bucket_index(1 << 39), HISTOGRAM_BUCKETS - 1, "last finite");
        assert_eq!(bucket_index((1u64 << 39) + 1), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(10), 1024);
        assert_eq!(bucket_bound(200), u64::MAX, "saturates out of range");
    }

    #[test]
    fn histogram_records_into_the_right_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(h.count(), 6);
        assert_eq!(snap.count, 6);
        assert_eq!(snap.buckets[0], 2, "0 and 1");
        assert_eq!(snap.buckets[1], 1, "2");
        assert_eq!(snap.buckets[2], 1, "3");
        assert_eq!(snap.buckets[10], 1, "1000 <= 1024");
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS], 1, "u64::MAX overflows");
        assert_eq!(snap.buckets.iter().sum::<u64>(), 6);
        assert_eq!(
            h.sum(),
            0u64.wrapping_add(1 + 2 + 3 + 1000).wrapping_add(u64::MAX)
        );
    }

    /// Exact quantile of a sorted sample at rank `ceil(q*n)`.
    fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1] as f64
    }

    #[test]
    fn quantiles_of_a_uniform_stream_interpolate_exactly() {
        // Uniform 1..=1000: every log2 bucket is filled uniformly, so the
        // interpolation is exact at the median.
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 500.0, "uniform fill interpolates exactly");
        let sample: Vec<u64> = (1..=1000).collect();
        for (q, est) in [(0.99, snap.p99()), (0.999, snap.p999())] {
            let exact = exact_quantile(&sample, q);
            let err = (est - exact).abs() / exact;
            assert!(
                err < 0.05,
                "q={q}: estimate {est} vs exact {exact} (err {err:.4})"
            );
        }
    }

    #[test]
    fn quantiles_of_a_skewed_stream_stay_within_one_bucket() {
        // 990 fast observations (~16) and 10 slow outliers (~5000): the tail
        // quantiles must land in the outlier bucket, the median must not.
        let h = Histogram::new();
        let mut sample = vec![16u64; 990];
        sample.extend(std::iter::repeat_n(5000, 10));
        for &v in &sample {
            h.record(v);
        }
        sample.sort_unstable();
        let snap = h.snapshot();
        let p50 = snap.p50();
        // Exact p50 is 16; the estimate interpolates within its bucket
        // (8, 16].
        assert!(
            p50 > 8.0 && p50 <= 16.0,
            "median {p50} must land in the fast mode's bucket"
        );
        // Exact p99 is 16 (rank 990 of 1000 is still a fast observation):
        // the estimate must hit the fast bucket's upper bound exactly.
        assert_eq!(snap.p99(), 16.0);
        // Exact p999 is 5000; the estimate may be anywhere in its bucket
        // (4096, 8192].
        let p999 = snap.p999();
        assert!(
            p999 > 4096.0 && p999 <= 8192.0,
            "p999 {p999} must land in the outlier bucket"
        );
        assert!(p999 >= snap.p99(), "quantiles are monotone");
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.p50(), 0.0);
        let h = Histogram::new();
        h.record(7);
        let one = h.snapshot();
        // A single observation answers every quantile from its bucket.
        let p50 = one.p50();
        assert!(p50 > 4.0 && p50 <= 8.0, "7 lives in (4, 8], got {p50}");
        assert_eq!(one.quantile(0.0), one.quantile(1.0));
        h.record(u64::MAX);
        let with_overflow = h.snapshot();
        let top = with_overflow.quantile(1.0);
        assert_eq!(
            top,
            bucket_bound(HISTOGRAM_BUCKETS - 1) as f64,
            "overflow bucket reports its lower bound"
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 4000);
    }
}
