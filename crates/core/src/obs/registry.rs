//! Metric registry: named, labeled families of counters, gauges and
//! histograms.
//!
//! The registry is the *cold* side of the observability layer. It holds a
//! `Mutex` — but that lock is taken only at registration time (runtime
//! construction) and at export time (snapshotting). Hot paths never touch
//! it: registration hands out an [`Arc`]-backed handle ([`Counter`],
//! [`Gauge`], [`Histogram`]) whose updates are wait-free `Relaxed` atomics
//! on cells the registry merely also references for export.
//!
//! Registration is idempotent: asking for the same family name with the
//! same label set returns a handle sharing the existing cells, so two
//! subsystems can safely "create" the same metric.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use super::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// The kind of a metric family, matching Prometheus `# TYPE` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-value-wins gauge.
    Gauge,
    /// Fixed-bucket log2 histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A label set: sorted key → value pairs (sorted so identical sets
/// registered in different orders unify, and so exports are stable).
pub type Labels = BTreeMap<String, String>;

/// Build a [`Labels`] map from `(key, value)` pairs.
pub fn labels<K: Into<String>, V: Into<String>>(pairs: impl IntoIterator<Item = (K, V)>) -> Labels {
    pairs
        .into_iter()
        .map(|(k, v)| (k.into(), v.into()))
        .collect()
}

/// The handle side of one registered series.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One family: shared kind + help, and one handle per label set.
#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    series: BTreeMap<Labels, Handle>,
}

/// The exported value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram cells.
    Histogram(HistogramSnapshot),
}

/// One series in a [`FamilySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// The series' label set (possibly empty).
    pub labels: Labels,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

/// Point-in-time copy of one metric family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySnapshot {
    /// Family (metric) name.
    pub name: String,
    /// Help text for the `# HELP` line.
    pub help: String,
    /// Family kind for the `# TYPE` line.
    pub kind: MetricKind,
    /// All registered series, sorted by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// A registry of metric families. Cheap to clone (clones share state).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

/// Recover from a poisoned registry lock: metric registration and export
/// never carry torn invariants (the maps are always structurally valid),
/// so observing after a panicking registrant is safe.
fn lock_families(
    families: &Mutex<BTreeMap<String, Family>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, Family>> {
    match families.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or fetch) a counter series. Idempotent for the same
    /// `name` + `labels`; the returned handle updates wait-free.
    ///
    /// # Panics
    /// If `name` is already registered with a different kind — that is a
    /// programming error, caught at construction time, never on a hot
    /// path.
    pub fn counter(&self, name: &str, help: &str, labels: Labels) -> Counter {
        let mut families = lock_families(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind: MetricKind::Counter,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            MetricKind::Counter,
            "metric `{name}` registered with conflicting kinds"
        );
        match family
            .series
            .entry(labels)
            .or_insert_with(|| Handle::Counter(Counter::new()))
        {
            Handle::Counter(c) => c.clone(),
            // Unreachable: the kind check above pins every handle in a
            // counter family to Handle::Counter.
            _ => unreachable!("counter family holds non-counter handle"),
        }
    }

    /// Register (or fetch) a gauge series. Same contract as
    /// [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: Labels) -> Gauge {
        let mut families = lock_families(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind: MetricKind::Gauge,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            MetricKind::Gauge,
            "metric `{name}` registered with conflicting kinds"
        );
        match family
            .series
            .entry(labels)
            .or_insert_with(|| Handle::Gauge(Gauge::new()))
        {
            Handle::Gauge(g) => g.clone(),
            _ => unreachable!("gauge family holds non-gauge handle"),
        }
    }

    /// Register (or fetch) a histogram series. Same contract as
    /// [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: Labels) -> Histogram {
        let mut families = lock_families(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind: MetricKind::Histogram,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            MetricKind::Histogram,
            "metric `{name}` registered with conflicting kinds"
        );
        match family
            .series
            .entry(labels)
            .or_insert_with(|| Handle::Histogram(Histogram::new()))
        {
            Handle::Histogram(h) => h.clone(),
            _ => unreachable!("histogram family holds non-histogram handle"),
        }
    }

    /// Copy every family and series out for export, sorted by family name
    /// then label set. Each series value is read at some point during the
    /// snapshot (per-cell consistency, the Prometheus model).
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        let families = lock_families(&self.families);
        families
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name: name.clone(),
                help: family.help.clone(),
                kind: family.kind,
                series: family
                    .series
                    .iter()
                    .map(|(labels, handle)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match handle {
                            Handle::Counter(c) => MetricValue::Counter(c.get()),
                            Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                            Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_label_set() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ltc_x_total", "x", labels([("shard", "0")]));
        let b = reg.counter("ltc_x_total", "x", labels([("shard", "0")]));
        let other = reg.counter("ltc_x_total", "x", labels([("shard", "1")]));
        a.inc();
        b.inc();
        other.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].series.len(), 2);
        assert_eq!(snap[0].series[0].value, MetricValue::Counter(2));
        assert_eq!(snap[0].series[1].value, MetricValue::Counter(1));
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        let a = reg.gauge("g", "", labels([("a", "1"), ("b", "2")]));
        let b = reg.gauge("g", "", labels([("b", "2"), ("a", "1")]));
        a.set(5);
        assert_eq!(b.get(), 5, "same sorted label set shares the cell");
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn kind_conflict_panics_at_registration() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("m", "", Labels::new());
        let _ = reg.gauge("m", "", Labels::new());
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("zzz", "", Labels::new());
        let _ = reg.counter("aaa", "", Labels::new());
        let names: Vec<_> = reg.snapshot().into_iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["aaa".to_string(), "zzz".to_string()]);
    }

    #[test]
    fn empty_registry_snapshot_is_empty() {
        assert!(MetricsRegistry::new().snapshot().is_empty());
    }
}
