//! Render drained spans for external tooling: Chrome trace-event JSON
//! (load in `chrome://tracing` / Perfetto) and folded-stack text (feed to
//! `flamegraph.pl` / inferno).
//!
//! Mirroring `obs::export`, the renderers are hand-rolled and paired with
//! a real structural checker: [`validate_chrome_trace`] parses the JSON
//! with a small self-contained parser and checks the trace-event shape
//! (the same role [`super::export::validate_exposition`] plays for the
//! Prometheus text format), so the test suite and `examples/obs_dump.rs`
//! verify actual output bytes, not the renderer's opinion of itself.
//! [`single_causal_tree`] checks the *semantic* acceptance contract: that
//! a set of spans contains one well-formed causal tree covering a list of
//! required span names.

use super::trace::{names, Span};

// ---------------------------------------------------------------------------
// Chrome trace-event rendering
// ---------------------------------------------------------------------------

/// Microseconds with fractional nanoseconds, as Chrome's `ts`/`dur`
/// expect (the format is specified in microseconds).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render spans as a Chrome trace-event JSON document: one `M` metadata
/// record naming each claimed track (pass [`crate::obs::Tracer::tracks`])
/// and one `X` complete event per span, with the causal identities in
/// `args`. Validated by [`validate_chrome_trace`].
pub fn render_chrome_trace(spans: &[Span], tracks: &[(u64, u64)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for &(track, name_code) in tracks {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}-{}\"}}}}",
            track,
            names::span_name(name_code),
            track
        ));
    }
    for span in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
             \"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_id\":{}}}}}",
            names::span_name(span.name),
            us(span.start_ns),
            us(span.dur_ns),
            span.track,
            span.trace_id,
            span.span_id,
            span.parent_id
        ));
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// A small JSON value parser (validator substrate)
// ---------------------------------------------------------------------------

/// Minimal JSON value for the structural checker. Numbers stay `f64`;
/// object keys keep insertion order (duplicates rejected at parse time).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        self.pos = self.pos.saturating_add(1);
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos = self.pos.saturating_add(1);
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for &w in word.as_bytes() {
            if self.bump() != Some(w) {
                return Err(self.err(&format!("bad literal (expected `{word}`)")));
            }
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos = self.pos.saturating_add(1);
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos = self.pos.saturating_add(1);
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        if self.bump() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let mut code: u32 = 0;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code.wrapping_mul(16).wrapping_add(d);
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) => {
                    // Reassemble UTF-8 multibyte sequences byte-wise.
                    let mut buf = vec![b];
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        if let Some(n) = self.bump() {
                            buf.push(n);
                        }
                    }
                    match std::str::from_utf8(&buf) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos = self.pos.saturating_add(1);
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos = self.pos.saturating_add(1);
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn parse_document(text: &str) -> Result<Json, String> {
        let mut parser = Parser::new(text);
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing bytes after document"));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Structural validator
// ---------------------------------------------------------------------------

/// Structurally validate a Chrome trace-event JSON document (the
/// format-checker counterpart of `validate_exposition`):
///
/// * the document is a single JSON object with a `traceEvents` array;
/// * every event is an object with a non-empty string `name` and a `ph`
///   of `"X"` (complete event) or `"M"` (metadata);
/// * every `X` event carries finite non-negative numeric `ts` and `dur`
///   and numeric `pid`/`tid`;
/// * every `M` event carries an `args.name` string;
/// * `X` events' `args` carry numeric `trace_id`/`span_id`/`parent_id`
///   with `span_id` non-zero and unique across the document.
///
/// # Errors
/// A description of the first structural violation found.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = Parser::parse_document(text)?;
    let events = doc.get("traceEvents").ok_or("missing `traceEvents` key")?;
    let Json::Arr(events) = events else {
        return Err("`traceEvents` is not an array".to_string());
    };
    let mut seen_span_ids: Vec<u64> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let fail = |msg: &str| format!("event {i}: {msg}");
        if !matches!(event, Json::Obj(_)) {
            return Err(fail("not an object"));
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string `name`"))?;
        if name.is_empty() {
            return Err(fail("empty `name`"));
        }
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string `ph`"))?;
        match ph {
            "M" => {
                event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("metadata event without `args.name`"))?;
            }
            "X" => {
                for key in ["ts", "dur", "pid", "tid"] {
                    let n = event
                        .get(key)
                        .and_then(Json::as_num)
                        .ok_or_else(|| fail(&format!("missing numeric `{key}`")))?;
                    if !n.is_finite() || n < 0.0 {
                        return Err(fail(&format!(
                            "`{key}` is not a finite non-negative number"
                        )));
                    }
                }
                let args = event.get("args").ok_or_else(|| fail("missing `args`"))?;
                let mut ids = [0u64; 3];
                for (slot, key) in ids.iter_mut().zip(["trace_id", "span_id", "parent_id"]) {
                    let n = args
                        .get(key)
                        .and_then(Json::as_num)
                        .ok_or_else(|| fail(&format!("missing numeric `args.{key}`")))?;
                    *slot = n as u64;
                }
                let span_id = *ids.get(1).unwrap_or(&0);
                if span_id == 0 {
                    return Err(fail("`args.span_id` is zero"));
                }
                if seen_span_ids.contains(&span_id) {
                    return Err(fail(&format!("duplicate span id {span_id}")));
                }
                seen_span_ids.push(span_id);
            }
            other => return Err(fail(&format!("unknown `ph` value `{other}`"))),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Folded stacks
// ---------------------------------------------------------------------------

/// Bound on parent-chain walks, so a corrupt (torn-read) parent loop
/// cannot hang the renderer.
const MAX_STACK_DEPTH: usize = 64;

/// Render spans as folded-stack lines (`root;child;leaf <ns>`), one line
/// per distinct stack, sorted, with **self time** (duration minus the
/// children's, clamped at zero) as the sample value — the input format of
/// `flamegraph.pl` and inferno.
pub fn render_folded(spans: &[Span]) -> String {
    // Self time: a span's duration minus its children's durations.
    let mut self_ns: Vec<u64> = spans.iter().map(|s| s.dur_ns).collect();
    for span in spans {
        if span.parent_id == 0 {
            continue;
        }
        if let Some(pos) = spans.iter().position(|p| p.span_id == span.parent_id) {
            if let Some(parent_self) = self_ns.get_mut(pos) {
                *parent_self = parent_self.saturating_sub(span.dur_ns);
            }
        }
    }
    let mut lines: Vec<(String, u64)> = Vec::new();
    for (span, &self_time) in spans.iter().zip(self_ns.iter()) {
        let mut stack: Vec<&str> = Vec::new();
        let mut cursor = Some(span);
        for _ in 0..MAX_STACK_DEPTH {
            let Some(s) = cursor else { break };
            stack.push(names::span_name(s.name));
            cursor = if s.parent_id == 0 {
                None
            } else {
                spans.iter().find(|p| p.span_id == s.parent_id)
            };
        }
        stack.reverse();
        let key = stack.join(";");
        match lines.iter_mut().find(|(k, _)| *k == key) {
            Some((_, total)) => *total = total.saturating_add(self_time),
            None => lines.push((key, self_time)),
        }
    }
    lines.sort();
    let mut out = String::new();
    for (stack, total) in lines {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&total.to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Causal-tree checking
// ---------------------------------------------------------------------------

/// Find a trace that forms a **single well-formed causal tree** covering
/// every span name in `required`: exactly one root (`parent_id == 0`),
/// every other span's parent present in the same trace, and at least one
/// span of each required name code. Returns the matching trace id.
///
/// This is the acceptance check behind `examples/obs_dump.rs`: with
/// `required = [BATCH_ENQUEUE, BATCH_PROCESS, BARRIER_WAIT,
/// CHECKPOINT_SAVE]` it proves a batch's enqueue → worker process →
/// barrier-wait → checkpoint-publish spans were stitched into one tree
/// across the SPSC boundary.
///
/// # Errors
/// A description of why no trace qualifies.
pub fn single_causal_tree(spans: &[Span], required: &[u64]) -> Result<u64, String> {
    let mut trace_ids: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();
    let mut last_reason = String::from("no spans drained");
    'traces: for &trace_id in &trace_ids {
        let members: Vec<&Span> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
        let roots = members.iter().filter(|s| s.parent_id == 0).count();
        if roots != 1 {
            last_reason = format!("trace {trace_id}: {roots} roots (want exactly 1)");
            continue;
        }
        for span in &members {
            if span.parent_id != 0 && !members.iter().any(|p| p.span_id == span.parent_id) {
                last_reason = format!(
                    "trace {trace_id}: span {} ({}) has dangling parent {}",
                    span.span_id,
                    names::span_name(span.name),
                    span.parent_id
                );
                continue 'traces;
            }
        }
        for &name in required {
            if !members.iter().any(|s| s.name == name) {
                last_reason = format!(
                    "trace {trace_id}: missing required span `{}`",
                    names::span_name(name)
                );
                continue 'traces;
            }
        }
        return Ok(trace_id);
    }
    Err(last_reason)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, name: u64, start: u64, dur: u64) -> Span {
        Span {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name,
            track: 0,
            start_ns: start,
            dur_ns: dur,
        }
    }

    fn sample_spans() -> Vec<Span> {
        vec![
            span(1, 1, 0, names::BATCH_ENQUEUE, 100, 5_000),
            span(1, 2, 1, names::BATCH_PROCESS, 1_100, 3_000),
            span(1, 3, 1, names::BARRIER_WAIT, 5_200, 2_000),
            span(1, 4, 3, names::CHECKPOINT_SAVE, 7_300, 1_000),
        ]
    }

    #[test]
    fn rendered_trace_validates() {
        let rendered = render_chrome_trace(
            &sample_spans(),
            &[(0, names::TRACK_ROUTER), (1, names::TRACK_SHARD)],
        );
        validate_chrome_trace(&rendered).expect("structurally valid");
        assert!(rendered.contains("\"name\":\"batch_process\""));
        assert!(rendered.contains("\"name\":\"router-0\""));
        // 5000 ns -> 5.000 us.
        assert!(rendered.contains("\"dur\":5.000"));
    }

    #[test]
    fn empty_trace_validates() {
        validate_chrome_trace(&render_chrome_trace(&[], &[])).expect("empty doc is valid");
    }

    #[test]
    fn validator_rejects_structural_breakage() {
        let cases: &[(&str, &str)] = &[
            ("{}", "missing `traceEvents`"),
            ("{\"traceEvents\":{}}", "not an array"),
            (
                "{\"traceEvents\":[{\"ph\":\"X\"}]}",
                "missing string `name`",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Q\"}]}",
                "unknown `ph`",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":-1,\"dur\":0,\
                 \"pid\":1,\"tid\":0,\"args\":{}}]}",
                "negative ts",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"dur\":0,\
                 \"pid\":1,\"tid\":0,\"args\":{\"trace_id\":1,\"span_id\":0,\"parent_id\":0}}]}",
                "zero span id",
            ),
            ("{\"traceEvents\":[", "truncated"),
            ("{\"traceEvents\":[]} trailing", "trailing bytes"),
        ];
        for (doc, why) in cases {
            assert!(
                validate_chrome_trace(doc).is_err(),
                "validator accepted broken doc ({why}): {doc}"
            );
        }
    }

    #[test]
    fn validator_rejects_duplicate_span_ids() {
        let mut spans = sample_spans();
        if let Some(s) = spans.get_mut(1) {
            s.span_id = 1;
            s.parent_id = 0;
        }
        let rendered = render_chrome_trace(&spans, &[]);
        let err = validate_chrome_trace(&rendered).expect_err("duplicate ids must fail");
        assert!(err.contains("duplicate span id"), "got: {err}");
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let folded = render_folded(&sample_spans());
        // Enqueue root: 5000 total - 3000 (process child) - 2000 (barrier
        // child) = 0 self.
        assert!(folded.contains("batch_enqueue 0\n"), "got: {folded}");
        assert!(
            folded.contains("batch_enqueue;batch_process 3000\n"),
            "got: {folded}"
        );
        assert!(
            folded.contains("batch_enqueue;barrier_wait;checkpoint_save 1000\n"),
            "got: {folded}"
        );
        // Barrier: 2000 - 1000 (checkpoint child) = 1000 self.
        assert!(
            folded.contains("batch_enqueue;barrier_wait 1000\n"),
            "got: {folded}"
        );
    }

    #[test]
    fn folded_stacks_merge_identical_stacks() {
        let spans = vec![
            span(1, 1, 0, names::BATCH_ENQUEUE, 0, 10),
            span(2, 2, 0, names::BATCH_ENQUEUE, 20, 30),
        ];
        assert_eq!(render_folded(&spans), "batch_enqueue 40\n");
    }

    #[test]
    fn causal_tree_accepts_the_full_chain() {
        let required = [
            names::BATCH_ENQUEUE,
            names::BATCH_PROCESS,
            names::BARRIER_WAIT,
            names::CHECKPOINT_SAVE,
        ];
        assert_eq!(single_causal_tree(&sample_spans(), &required), Ok(1));
    }

    #[test]
    fn causal_tree_rejects_dangling_parent_and_missing_name() {
        let mut spans = sample_spans();
        if let Some(s) = spans.get_mut(3) {
            s.parent_id = 99;
        }
        let err = single_causal_tree(&spans, &[names::BATCH_ENQUEUE])
            .expect_err("dangling parent must fail");
        assert!(err.contains("dangling parent"), "got: {err}");

        let err = single_causal_tree(&sample_spans(), &[names::DELTA_SAVE])
            .expect_err("missing name must fail");
        assert!(err.contains("missing required span"), "got: {err}");
    }

    #[test]
    fn causal_tree_rejects_two_roots_in_one_trace() {
        let spans = vec![
            span(1, 1, 0, names::BATCH_ENQUEUE, 0, 10),
            span(1, 2, 0, names::BARRIER_WAIT, 20, 10),
        ];
        let err = single_causal_tree(&spans, &[names::BATCH_ENQUEUE]).expect_err("two roots");
        assert!(err.contains("2 roots"), "got: {err}");
    }
}
