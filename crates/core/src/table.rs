//! The LTC lossy table (paper §III).
//!
//! Storage is the bucket-tiled, packed struct-of-arrays [`TableStore`]:
//! each bucket is one contiguous tile of `d` id words and `d` packed
//! `⟨freq, persist, flags⟩` meta words — 16 bytes per cell, the paper's
//! memory model, in one cache-line-friendly region. The three hot probes —
//! find-match, find-empty, find-min-significance — are branch-light loops
//! over the tile's lane slices (see [`crate::cell`]), and the CLOCK sweep
//! harvests whole contiguous meta-lane runs ([`ClockPointer::tick_ranges`]).
//! The retained array-of-structs implementation lives in
//! [`crate::reference`] and a property suite pins this table bit-exact
//! against it.

use crate::cell::{scan_empty, scan_min, Cell, TableStore};
use crate::clock::ClockPointer;
use crate::config::{LtcConfig, PeriodMode};
use crate::stats::LtcStats;
use ltc_common::{
    memory::LTC_CELL_BYTES, top_k_of, BatchStreamProcessor, Estimate, ItemId, MemoryUsage,
    SignificanceQuery, StreamProcessor, Timestamp, Weights,
};
use ltc_hash::SeededHash;

/// The Long-Tail CLOCK structure: `w` buckets × `d` cells, a CLOCK pointer
/// for persistency, and the two optional optimizations.
///
/// Drive it with [`insert`](Ltc::insert) (count-driven periods) or
/// [`insert_at`](Ltc::insert_at) (time-driven), signal period boundaries with
/// [`end_period`](Ltc::end_period), and — once the stream is over — call
/// [`finalize`](Ltc::finalize) to harvest the final period's appearance flags
/// before querying.
#[derive(Debug, Clone)]
pub struct Ltc {
    config: LtcConfig,
    store: TableStore,
    clock: ClockPointer,
    bucket_hash: SeededHash,
    /// Parity of the current period (0 = even). Only meaningful with the
    /// Deviation Eliminator; the basic variant always uses flag 0.
    parity: u8,
    periods_completed: u64,
    /// Time-driven bookkeeping: timestamp at which the current period began
    /// and the last record's timestamp (for Δt clock stepping).
    period_start_time: Timestamp,
    last_time: Timestamp,
    stats: LtcStats,
}

impl Ltc {
    /// Create an LTC table from a configuration.
    pub fn new(config: LtcConfig) -> Self {
        let total = config.total_cells();
        Self {
            config,
            store: TableStore::new(total, config.cells_per_bucket),
            clock: ClockPointer::new(total),
            bucket_hash: SeededHash::new(config.seed as u32),
            parity: 0,
            periods_completed: 0,
            period_start_time: 0,
            last_time: 0,
            stats: LtcStats::default(),
        }
    }

    /// The configuration this table was built with.
    #[inline]
    pub fn config(&self) -> &LtcConfig {
        &self.config
    }

    /// Total number of cells `m = w·d`.
    #[inline]
    pub fn capacity_cells(&self) -> usize {
        self.store.len()
    }

    /// Number of periods ended so far.
    #[inline]
    pub fn periods_completed(&self) -> u64 {
        self.periods_completed
    }

    /// Lifetime operation counters (see [`LtcStats`]).
    #[inline]
    pub fn stats(&self) -> LtcStats {
        self.stats
    }

    /// The flag parity arrivals set right now.
    #[inline]
    fn set_parity(&self) -> u8 {
        if self.config.variant.deviation_eliminator {
            self.parity
        } else {
            0
        }
    }

    /// The flag parity the CLOCK sweep harvests right now.
    #[inline]
    fn harvest_parity(&self) -> u8 {
        if self.config.variant.deviation_eliminator {
            self.parity ^ 1
        } else {
            0
        }
    }

    /// Insert one record (count-driven mode).
    ///
    /// Bucket probing dispatches through the [`simd`](crate::simd)
    /// vectorized scan when that feature is enabled (safe scalar
    /// fallback otherwise).
    ///
    /// # Panics
    /// Panics if the table was configured time-driven; use
    /// [`insert_at`](Ltc::insert_at) there.
    #[inline]
    pub fn insert(&mut self, id: ItemId) {
        let n = match self.config.period_mode {
            PeriodMode::ByCount { records_per_period } => records_per_period,
            PeriodMode::ByTime { .. } => {
                // lint:allow(no_panic): mode mismatch is a caller bug; documented contract
                panic!("time-driven LTC must be fed via insert_at(id, time)")
            }
        };
        self.process(id);
        self.tick(self.store.len() as u64, n);
    }

    /// Insert a run of records (count-driven mode) — the batched hot path.
    ///
    /// Bit-identical to `for &id in ids { self.insert(id) }` (a property
    /// test pins this), but reorganised for throughput:
    ///
    /// 1. the whole batch is hashed up front into a scratch vector of
    ///    bucket bases, so the hash pipeline is not interleaved with
    ///    table writes;
    /// 2. each bucket's first cell is touched a few records ahead of its
    ///    use ([`Self::prefetch_bucket`]), hiding the random-access cache
    ///    miss behind the current record's work;
    /// 3. CLOCK pointer stepping is amortised: the pointer's accumulator
    ///    tells us how many records can be processed before the next scan
    ///    fires ([`ClockPointer::ticks_before_scan`]), so those records run
    ///    in a tight scan-free loop and the accumulator is advanced once
    ///    for the whole run.
    ///
    /// Bucket probing dispatches through the [`simd`](crate::simd)
    /// vectorized scan when that feature is enabled.
    ///
    /// # Panics
    /// Panics if the table was configured time-driven; use
    /// [`insert_batch_at`](Ltc::insert_batch_at) there.
    pub fn insert_batch(&mut self, ids: &[ItemId]) {
        let n = match self.config.period_mode {
            PeriodMode::ByCount { records_per_period } => records_per_period,
            PeriodMode::ByTime { .. } => {
                // lint:allow(no_panic): mode mismatch is a caller bug; documented contract
                panic!("time-driven LTC must be fed via insert_batch_at(items)")
            }
        };
        let m = self.store.len() as u64;
        let bases = self.hash_batch(ids);
        // Width dispatch happens once for the whole batch, so the record
        // loop below runs inside a single fixed-width monomorphization.
        match self.config.cells_per_bucket {
            4 => self.insert_batch_run::<4>(ids, &bases, m, n),
            8 => self.insert_batch_run::<8>(ids, &bases, m, n),
            16 => self.insert_batch_run::<16>(ids, &bases, m, n),
            _ => self.insert_batch_run::<0>(ids, &bases, m, n),
        }
    }

    /// The record loop of [`insert_batch`](Ltc::insert_batch), monomorphized
    /// on the bucket width (see [`process_at`](Ltc::process_at) for the `D`
    /// contract).
    fn insert_batch_run<const D: usize>(
        &mut self,
        ids: &[ItemId],
        bases: &[usize],
        m: u64,
        n: u64,
    ) {
        // Case counters accumulate in registers for the whole batch and
        // flush once — per-record saturating read-modify-writes on the
        // stats block are measurable at this loop's cycle budget, and a
        // single saturating add of the batch total lands on the exact same
        // final counts.
        let mut tally = CaseTally::default();
        // Loop-invariant config reads, snapshotted once for the batch
        // (`end_period` — the only parity flip — never runs mid-batch).
        let ctx = self.record_ctx();
        let mut i = 0;
        while i < ids.len() {
            // Records until the CLOCK next crosses a scan boundary: process
            // them back-to-back, then advance the accumulator in one step.
            let free = self
                .clock
                .ticks_before_scan(m, n)
                .min(ids.len().saturating_sub(i) as u64) as usize;
            let scan_free_end = i.saturating_add(free);
            for j in i..scan_free_end {
                self.prefetch_bucket(bases, j);
                if let (Some(&id), Some(&base)) = (ids.get(j), bases.get(j)) {
                    self.process_at::<D>(id, base, ctx, &mut tally);
                }
            }
            self.clock.advance_scan_free(free as u64, m, n);
            i = scan_free_end;
            if let (Some(&id), Some(&base)) = (ids.get(i), bases.get(i)) {
                // This record's tick performs the due scan(s).
                self.prefetch_bucket(bases, i);
                self.process_at::<D>(id, base, ctx, &mut tally);
                self.tick(m, n);
                i = i.saturating_add(1);
            }
        }
        tally.flush(&mut self.stats);
    }

    /// Insert a run of timestamped records (time-driven mode) — the batched
    /// twin of [`insert_at`](Ltc::insert_at). Bit-identical to inserting the
    /// pairs one by one; the batch gains come from up-front hashing and
    /// bucket prefetch (CLOCK stepping in time-driven mode is already
    /// amortised per record by the division-based tick). Bucket probing
    /// dispatches through the [`simd`](crate::simd) vectorized scan when
    /// that feature is enabled.
    ///
    /// # Panics
    /// Panics if the table was configured count-driven.
    pub fn insert_batch_at(&mut self, items: &[(ItemId, Timestamp)]) {
        let t = match self.config.period_mode {
            PeriodMode::ByTime { units_per_period } => units_per_period,
            PeriodMode::ByCount { .. } => {
                // lint:allow(no_panic): mode mismatch is a caller bug; documented contract
                panic!("count-driven LTC must be fed via insert_batch(ids)")
            }
        };
        let ids: Vec<ItemId> = items.iter().map(|&(id, _)| id).collect();
        let bases = self.hash_batch(&ids);
        for (j, (&(id, time), &base)) in items.iter().zip(&bases).enumerate() {
            self.prefetch_bucket(&bases, j);
            debug_assert!(
                time >= self.last_time || time >= self.period_start_time,
                "timestamps must be non-decreasing"
            );
            while time >= self.period_start_time.saturating_add(t) {
                self.end_period();
            }
            let reference = self.last_time.max(self.period_start_time);
            let elapsed = time.saturating_sub(reference);
            self.tick(elapsed.saturating_mul(self.store.len() as u64), t);
            self.last_time = time;
            self.process_dispatch(id, base);
        }
    }

    /// Hash every id of a batch to its bucket's tile base.
    fn hash_batch(&self, ids: &[ItemId]) -> Vec<usize> {
        // `bucket_index < buckets`, so the tile base fits in usize (the
        // store's word buffer exists at exactly that size).
        ids.iter()
            .map(|&id| self.store.tile_base(self.bucket_index(id)))
            .collect()
    }

    /// Touch a bucket's tile a few records ahead
    /// ([`LtcConfig::prefetch_distance`]) so its cache lines are in flight
    /// by the time [`process_at`](Ltc::process_at) reads them. A whole
    /// probe (match, vacancy, min-significance) reads one contiguous
    /// `16·d`-byte tile, so the touch covers every line a probe can need.
    /// The core crate forbids `unsafe`, so instead of `_mm_prefetch` this
    /// issues plain reads the optimiser must keep (`black_box`).
    #[inline]
    fn prefetch_bucket(&self, bases: &[usize], j: usize) {
        let distance = self.config.prefetch_distance;
        if distance == 0 {
            return;
        }
        if let Some(&base) = bases.get(j.saturating_add(distance)) {
            self.store.prefetch_tile(base);
        }
    }

    /// Insert one record with a timestamp (time-driven mode). Periods roll
    /// over automatically when `time` crosses a boundary; timestamps must be
    /// non-decreasing. Bucket probing dispatches through the
    /// [`simd`](crate::simd) vectorized scan when that feature is enabled.
    ///
    /// # Panics
    /// Panics if the table was configured count-driven.
    pub fn insert_at(&mut self, id: ItemId, time: Timestamp) {
        let t = match self.config.period_mode {
            PeriodMode::ByTime { units_per_period } => units_per_period,
            PeriodMode::ByCount { .. } => {
                // lint:allow(no_panic): mode mismatch is a caller bug; documented contract
                panic!("count-driven LTC must be fed via insert(id)")
            }
        };
        debug_assert!(
            time >= self.last_time || time >= self.period_start_time,
            "timestamps must be non-decreasing"
        );
        // Complete any periods the stream skipped over.
        while time >= self.period_start_time.saturating_add(t) {
            self.end_period();
        }
        // Advance the pointer by the fraction of the period that elapsed
        // since the previous record (paper: "let the pointer p pass
        // (x−y)/t·m time slots").
        let reference = self.last_time.max(self.period_start_time);
        let elapsed = time.saturating_sub(reference);
        self.tick(elapsed.saturating_mul(self.store.len() as u64), t);
        self.last_time = time;
        self.process(id);
    }

    /// End the current period: complete the CLOCK sweep so every cell was
    /// scanned exactly once, then (with the Deviation Eliminator) flip the
    /// flag parity — the "refreshment elimination" of §III-C.
    pub fn end_period(&mut self) {
        let hp = self.harvest_parity();
        let store = &mut self.store;
        let mut harvested = 0u64;
        self.clock.finish_period_ranges(|start, len| {
            harvested = harvested.saturating_add(store.harvest_range(start, len, hp));
        });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
        if self.config.variant.deviation_eliminator {
            self.parity ^= 1;
        }
        self.periods_completed = self.periods_completed.saturating_add(1);
        self.stats.periods = self.stats.periods.saturating_add(1);
        if let PeriodMode::ByTime { units_per_period } = self.config.period_mode {
            self.period_start_time = self.period_start_time.saturating_add(units_per_period);
        }
    }

    /// Harvest the previous period's not-yet-swept appearance flags so
    /// queries see every completed period.
    ///
    /// With the Deviation Eliminator the sweep during period `i+1` harvests
    /// period `i`'s flags, so without this call the final period would never
    /// be counted. Because a harvest consumes its flag, calling this any
    /// number of times — including mid-stream for a fresher snapshot — never
    /// double-counts; the regular sweep simply finds those flags already
    /// consumed.
    pub fn finalize(&mut self) {
        let hp = self.harvest_parity();
        let store = &mut self.store;
        let mut harvested = 0u64;
        self.clock.full_sweep_ranges(|start, len| {
            harvested = harvested.saturating_add(store.harvest_range(start, len, hp));
        });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
    }

    /// Whether `id` currently occupies a cell. The lookup probes through
    /// the [`simd`](crate::simd) bucket scan when that feature is enabled.
    pub fn contains(&self, id: ItemId) -> bool {
        self.find_slot(id).is_some()
    }

    /// Estimated frequency of `id`, if tracked. The lookup probes through
    /// the [`simd`](crate::simd) bucket scan when that feature is enabled.
    pub fn frequency_of(&self, id: ItemId) -> Option<u64> {
        self.find_slot(id)
            .map(|i| u64::from(self.store.cell(i).freq))
    }

    /// Estimated persistency of `id`, if tracked. The lookup probes
    /// through the [`simd`](crate::simd) bucket scan when that feature is
    /// enabled.
    pub fn persistency_of(&self, id: ItemId) -> Option<u64> {
        self.find_slot(id)
            .map(|i| u64::from(self.store.cell(i).persist))
    }

    /// Iterate over all cells, materialised from the lanes (diagnostics,
    /// tests, theory validation).
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        self.store.iter_cells()
    }

    /// Cells scanned by the CLOCK since the current period began.
    pub fn clock_scans_this_period(&self) -> u64 {
        self.clock.scanned_this_period()
    }

    /// The bucket index `h(id)`.
    #[inline]
    pub fn bucket_index(&self, id: ItemId) -> usize {
        self.bucket_hash.index(id, self.config.buckets)
    }

    /// Slot index of `id`'s cell, if tracked (query path).
    #[inline]
    fn find_slot(&self, id: ItemId) -> Option<usize> {
        let bucket = self.bucket_index(id);
        let (ids, metas) = self.store.lanes(self.store.tile_base(bucket));
        bucket_match(ids, metas, id).map(|k| {
            bucket
                .saturating_mul(self.config.cells_per_bucket)
                .saturating_add(k)
        })
    }

    /// One bucket's cells, materialised from the lanes (merge support).
    pub(crate) fn bucket_cells(&self, base: usize, d: usize) -> impl Iterator<Item = Cell> + '_ {
        let end = base.saturating_add(d).min(self.store.len());
        (base..end).map(move |i| self.store.cell(i))
    }

    /// Overwrite one bucket with up to `d` cells, clearing the rest
    /// (merge support).
    pub(crate) fn replace_bucket(&mut self, base: usize, d: usize, cells: &[Cell]) {
        debug_assert!(cells.len() <= d);
        let end = base.saturating_add(d).min(self.store.len());
        for (k, i) in (base..end).enumerate() {
            let cell = cells.get(k).copied().unwrap_or(Cell::EMPTY);
            self.store.set_cell(i, cell);
        }
    }

    /// Overwrite the whole table from decoded cells, scattering each into
    /// the lanes (snapshot restore support).
    pub(crate) fn load_cells(&mut self, cells: &[Cell]) {
        debug_assert_eq!(cells.len(), self.store.len());
        for (i, cell) in cells.iter().enumerate() {
            self.store.set_cell(i, *cell);
        }
    }

    /// Current parity (snapshot support).
    pub(crate) fn snapshot_parity(&self) -> u8 {
        self.parity
    }

    /// Restore period bookkeeping (snapshot support). The CLOCK pointer
    /// restarts from slot 0: a snapshot is taken at a period boundary in
    /// practice, and mid-period restores merely shift which cells the
    /// remaining sweep covers — harvests stay consume-once either way.
    pub(crate) fn restore_state(&mut self, parity: u8, periods_completed: u64) {
        self.parity = parity & 1;
        self.periods_completed = periods_completed;
        self.clock = ClockPointer::new(self.store.len());
    }

    /// Bucket indices mutated since the last [`Ltc::begin_delta_epoch`]
    /// (delta-snapshot support), ascending.
    pub(crate) fn dirty_buckets(&self) -> impl Iterator<Item = usize> + '_ {
        self.store.dirty_buckets()
    }

    /// Number of buckets mutated since the last [`Ltc::begin_delta_epoch`].
    pub fn dirty_bucket_count(&self) -> usize {
        self.store.dirty_bucket_count()
    }

    /// Open a new dirty epoch: subsequent [`Ltc::dirty_buckets`] calls
    /// report only buckets mutated from this point on. Call right after
    /// taking the snapshot the next delta will be relative to.
    pub fn begin_delta_epoch(&mut self) {
        self.store.begin_dirty_epoch();
    }

    /// All tracked items whose estimated significance is at least
    /// `threshold`, descending — the "report everything significant" query
    /// shape (threshold form of top-k).
    pub fn items_above(&self, threshold: f64) -> Vec<Estimate> {
        let weights = self.config.weights;
        let mut out: Vec<Estimate> = self
            .store
            .iter_cells()
            .filter(|c| c.occupied())
            .map(|c| Estimate::new(c.id, c.significance(&weights)))
            .filter(|e| e.value >= threshold)
            .collect();
        // `total_cmp` agrees with `partial_cmp` on every value significance
        // can take (finite, non-negative) and needs no NaN escape hatch.
        out.sort_unstable_by(|a, b| b.value.total_cmp(&a.value).then_with(|| a.id.cmp(&b.id)));
        out
    }

    /// Advance the CLOCK by `numerator/denominator` of a sweep, harvesting.
    /// The pointer emits whole contiguous slot runs and the harvest walks
    /// each run's flag and persistency lanes in one branch-light pass.
    #[inline]
    fn tick(&mut self, numerator: u64, denominator: u64) {
        let hp = self.harvest_parity();
        let store = &mut self.store;
        let mut harvested = 0u64;
        self.clock
            .tick_ranges(numerator, denominator, |start, len| {
                harvested = harvested.saturating_add(store.harvest_range(start, len, hp));
            });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
    }

    /// The insertion state machine of §III-B1 (cases 1–3) with the
    /// Long-tail Replacement admission rule of §III-D when enabled.
    fn process(&mut self, id: ItemId) {
        let base = self.store.tile_base(self.bucket_index(id));
        self.process_dispatch(id, base);
    }

    /// Route one record to the fixed-width [`process_at`](Ltc::process_at)
    /// monomorphization matching the configured bucket width (`0` = the
    /// runtime-width build, for merge-era and test shapes). The batched
    /// count-driven path hoists this match out of its record loop entirely.
    #[inline]
    fn process_dispatch(&mut self, id: ItemId, base: usize) {
        let ctx = self.record_ctx();
        let mut tally = CaseTally::default();
        match self.config.cells_per_bucket {
            4 => self.process_at::<4>(id, base, ctx, &mut tally),
            8 => self.process_at::<8>(id, base, ctx, &mut tally),
            16 => self.process_at::<16>(id, base, ctx, &mut tally),
            _ => self.process_at::<0>(id, base, ctx, &mut tally),
        }
        tally.flush(&mut self.stats);
    }

    /// Snapshot the [`RecordCtx`] invariants for a batch of `process_at`
    /// calls.
    #[inline]
    fn record_ctx(&self) -> RecordCtx {
        RecordCtx {
            weights: self.config.weights,
            long_tail_replacement: self.config.variant.long_tail_replacement,
            parity: self.set_parity(),
        }
    }

    /// [`process`](Ltc::process) with the bucket's tile base precomputed —
    /// the batched path hashes whole batches up front and feeds bases here.
    ///
    /// The probe phase is pure — three branch-light scans over the tile's
    /// lanes deciding which case applies ([`probe_tile`]). `D` pins the
    /// bucket width at compile time (`0` = runtime width): callers dispatch
    /// *once per batch* ([`Self::process_dispatch`]), so each
    /// monomorphization carries exactly one width's straight-line scan code
    /// instead of every width's — keeping the per-record instruction
    /// footprint L1I-sized. Only after the probe does the mutation phase
    /// touch the store.
    ///
    /// Always inlined into the batch loop so `ctx` and `tally` live in
    /// registers across records instead of crossing a call per record.
    #[inline(always)]
    fn process_at<const D: usize>(
        &mut self,
        id: ItemId,
        base: usize,
        ctx: RecordCtx,
        tally: &mut CaseTally,
    ) {
        let RecordCtx {
            weights,
            long_tail_replacement,
            parity,
        } = ctx;

        tally.inserts = tally.inserts.saturating_add(1);

        // Every case below mutates this bucket (hit raises a flag, fill and
        // admission rewrite a slot, decrement lowers counters), so one
        // up-front dirty stamp covers the whole state machine — a compare
        // and a store, off the probe scans entirely.
        self.store.mark_dirty_tile::<D>(base);

        // One mutable split serves both phases: the probe reads the lanes
        // reborrowed shared, and cases 1–2 write back through the same
        // slices — no second index derivation or bounds check per mutation.
        let (ids, metas) = self.store.lanes_mut(base);
        let decision = if D == 0 {
            probe_tile_runtime(ids, metas, id, &weights)
        } else {
            probe_tile_fixed::<D>(ids, metas, id, &weights)
        };

        let min_k = match decision {
            // Case 1: raise the current-period flag, count the hit.
            Probe::Hit(k) => {
                tally.hits = tally.hits.saturating_add(1);
                TableStore::lane_record_hit(metas, k, parity);
                return;
            }
            // Case 2: fresh item in an empty cell, counters (1, 0).
            Probe::Fill(k) => {
                tally.fills = tally.fills.saturating_add(1);
                TableStore::lane_fill(ids, metas, k, id, parity);
                return;
            }
            // Case 3: Significance-Decrement the smallest cell; admit the
            // new item only once that cell's significance is worn to zero.
            // The bucket is full (no match, no vacancy), so the min scan
            // ran over all `d` slots unconditionally.
            Probe::Decrement(k) => k,
        };
        self.store.significance_decrement_at(base, min_k);
        if !self.store.significance_is_zero_at(base, min_k, &weights) {
            tally.decrements = tally.decrements.saturating_add(1);
            return;
        }
        tally.admissions = tally.admissions.saturating_add(1);
        self.store.clear_at(base, min_k);
        let (f0, p0) = if long_tail_replacement {
            self.long_tail_initial(base, &weights)
        } else {
            (1, 0)
        };
        self.store.occupy_at(base, min_k, id, f0, p0);
        self.store.set_flag_at(base, min_k, parity);
    }

    /// Long-tail Replacement initial counters: the second-smallest cell of
    /// the original bucket is, after the expulsion, the smallest remaining
    /// occupied cell. The paper sets the new item's value to "the second
    /// smallest value minus 1" so the admitted cell is still the bucket's
    /// smallest; with combined significance it copies the second-smallest
    /// frequency and persistency. We copy `(f₂, p₂)` and decrement the
    /// α-weighted coordinate (or the β-weighted one when α = 0), which keeps
    /// the admitted cell no larger than its neighbours under any weights.
    fn long_tail_initial(&self, tile_base: usize, weights: &Weights) -> (u32, u32) {
        let (ids, metas) = self.store.lanes(tile_base);
        let cells = ids
            .iter()
            .zip(metas)
            .map(|(&id, &m)| crate::cell::unpack(id, m))
            .filter(|c| c.occupied());
        // For α = β = 1 the significance f + p is an exact f64 integer, so an
        // integer key gives the same winner and the same first-minimal
        // tie-break as the float comparator (see `cell::scan_min`) without
        // touching the FPU on the admission path.
        let second = if weights.alpha == 1.0 && weights.beta == 1.0 {
            cells.min_by_key(|c| u64::from(c.freq).wrapping_add(u64::from(c.persist)))
        } else {
            cells.min_by(|a, b| a.significance(weights).total_cmp(&b.significance(weights)))
        };
        match second {
            Some(c) => {
                if weights.alpha > 0.0 {
                    (c.freq.saturating_sub(1).max(1), c.persist)
                } else {
                    (c.freq.max(1), c.persist.saturating_sub(1))
                }
            }
            // Bucket held only the expelled item (d = 1): no long tail to
            // borrow from, fall back to the basic initial value.
            None => (1, 0),
        }
    }
}

impl StreamProcessor for Ltc {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        Ltc::insert(self, id);
    }

    fn end_period(&mut self) {
        Ltc::end_period(self);
    }

    fn finish(&mut self) {
        Ltc::finalize(self);
    }

    fn name(&self) -> &'static str {
        "LTC"
    }
}

impl BatchStreamProcessor for Ltc {
    #[inline]
    fn insert_batch(&mut self, ids: &[ItemId]) {
        Ltc::insert_batch(self, ids);
    }
}

impl SignificanceQuery for Ltc {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.find_slot(id)
            .map(|i| self.store.cell(i).significance(&self.config.weights))
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        let weights = self.config.weights;
        let candidates = self
            .store
            .iter_cells()
            .filter(|c| c.occupied())
            .map(|c| Estimate::new(c.id, c.significance(&weights)))
            .collect();
        top_k_of(candidates, k)
    }
}

impl MemoryUsage for Ltc {
    fn memory_bytes(&self) -> usize {
        self.store.len().saturating_mul(LTC_CELL_BYTES)
    }
}

/// Per-batch case counters, accumulated in locals and flushed into
/// [`LtcStats`] once per batch (or per record on the unbatched path).
/// Saturation commutes with the split — `saturating_add` of a batch total
/// equals that many per-record saturating increments — so deferring the
/// flush is invisible in the final counts.
#[derive(Debug, Default, Clone, Copy)]
struct CaseTally {
    inserts: u64,
    hits: u64,
    fills: u64,
    decrements: u64,
    admissions: u64,
}

impl CaseTally {
    #[inline]
    fn flush(self, stats: &mut LtcStats) {
        stats.inserts = stats.inserts.saturating_add(self.inserts);
        stats.hits = stats.hits.saturating_add(self.hits);
        stats.fills = stats.fills.saturating_add(self.fills);
        stats.decrements = stats.decrements.saturating_add(self.decrements);
        stats.admissions = stats.admissions.saturating_add(self.admissions);
    }
}

/// The per-record loop invariants of [`process_at`](Ltc::process_at),
/// snapshotted once per batch. `process_at` cannot hoist these itself:
/// the store writes it performs go through pointers LLVM cannot prove
/// disjoint from `self.config`, so reloading them per record survives
/// optimization unless the caller pins them in locals. None of the three
/// can change mid-batch — weights and variant are fixed at construction,
/// and parity only flips in `end_period`.
#[derive(Debug, Clone, Copy)]
struct RecordCtx {
    weights: Weights,
    long_tail_replacement: bool,
    parity: u8,
}

/// Outcome of the pure probe phase over one bucket tile: which of the
/// paper's three insertion cases applies, and at which lane offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    /// Case 1: `id` occupies this slot.
    Hit(usize),
    /// Case 2: first vacant slot.
    Fill(usize),
    /// Case 3: bucket full; this slot holds the minimum significance.
    Decrement(usize),
}

/// Decide the insertion case for `id` from the tile's lanes — scans only,
/// no mutation. The three scans short-circuit: a hit (the overwhelmingly
/// common case on skewed streams) runs find-match alone, and the
/// find-min-significance float math only runs for a full-bucket miss.
#[inline(always)]
fn probe_tile(ids: &[ItemId], metas: &[u64], id: ItemId, weights: &Weights) -> Probe {
    if let Some(k) = bucket_match(ids, metas, id) {
        return Probe::Hit(k);
    }
    if let Some(k) = scan_empty(metas) {
        return Probe::Fill(k);
    }
    Probe::Decrement(scan_min(metas, weights).0)
}

/// Outlined runtime-width [`probe_tile`]: one shared copy serves the
/// `D = 0` monomorphization's main path and every fixed monomorphization's
/// (unreachable) shape-mismatch fallback, so the all-widths scan dispatch
/// inside the generic scans is never inlined into the fixed-width record
/// loops — keeping each of those loops one width's code.
#[inline(never)]
fn probe_tile_runtime(ids: &[ItemId], metas: &[u64], id: ItemId, weights: &Weights) -> Probe {
    probe_tile(ids, metas, id, weights)
}

/// [`probe_tile`] with the bucket width pinned at compile time: converting
/// the lanes to fixed-size arrays lets every scan inline with a constant
/// trip count (straight-line compare-and-mask code instead of generic loops
/// with epilogues). Falls back to the runtime-width probe on a shape
/// mismatch, which the dispatcher in `process_at` makes unreachable.
#[inline(always)]
fn probe_tile_fixed<const D: usize>(
    ids: &[ItemId],
    metas: &[u64],
    id: ItemId,
    weights: &Weights,
) -> Probe {
    match (<&[ItemId; D]>::try_from(ids), <&[u64; D]>::try_from(metas)) {
        (Ok(ids), Ok(metas)) => probe_tile(ids.as_slice(), metas.as_slice(), id, weights),
        _ => probe_tile_runtime(ids, metas, id, weights),
    }
}

/// Find `id`'s slot within one bucket's id/meta lanes. The default build
/// uses the safe autovectorized scan; the `simd` feature swaps in explicit
/// `core::arch` intrinsics with an identical contract (a property suite
/// pins the two bit-exact).
#[cfg(not(feature = "simd"))]
#[inline(always)]
fn bucket_match(ids: &[ItemId], metas: &[u64], id: ItemId) -> Option<usize> {
    crate::cell::scan_match(ids, metas, id)
}

/// `simd`-feature twin of the safe [`bucket_match`]: dispatches to the
/// intrinsics module, which itself falls back to the safe scan off x86-64.
#[cfg(feature = "simd")]
#[inline]
fn bucket_match(ids: &[ItemId], metas: &[u64], id: ItemId) -> Option<usize> {
    crate::simd::find_match(ids, metas, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;

    fn config(w: usize, d: usize, n: u64, weights: Weights, variant: Variant) -> LtcConfig {
        LtcConfig::builder()
            .buckets(w)
            .cells_per_bucket(d)
            .records_per_period(n)
            .weights(weights)
            .variant(variant)
            .seed(7)
            .build()
    }

    #[test]
    fn case1_hit_increments_frequency() {
        let mut ltc = Ltc::new(config(4, 4, 100, Weights::FREQUENT, Variant::BASIC));
        for _ in 0..5 {
            ltc.insert(9);
        }
        assert_eq!(ltc.frequency_of(9), Some(5));
    }

    #[test]
    fn case2_vacancy_starts_at_one() {
        let mut ltc = Ltc::new(config(4, 4, 100, Weights::FREQUENT, Variant::BASIC));
        ltc.insert(1);
        assert_eq!(ltc.frequency_of(1), Some(1));
        assert_eq!(ltc.persistency_of(1), Some(0), "persistency via CLOCK only");
    }

    #[test]
    fn case3_decrements_smallest_until_replacement() {
        // One bucket of two cells so collisions are guaranteed.
        let mut ltc = Ltc::new(config(1, 2, 1_000, Weights::FREQUENT, Variant::BASIC));
        for _ in 0..5 {
            ltc.insert(100); // f = 5
        }
        for _ in 0..2 {
            ltc.insert(200); // f = 2
        }
        // Item 300 misses a full bucket: each arrival decrements the
        // smallest (200). Two arrivals empty it; the third admits 300.
        ltc.insert(300);
        assert_eq!(ltc.frequency_of(200), Some(1));
        assert!(!ltc.contains(300));
        ltc.insert(300);
        assert!(!ltc.contains(200), "200 expelled at significance 0");
        assert!(ltc.contains(300), "replacement admits on the same arrival");
        assert_eq!(ltc.frequency_of(300), Some(1), "basic variant starts at 1");
        assert_eq!(ltc.frequency_of(100), Some(5), "non-smallest untouched");
    }

    #[test]
    fn long_tail_replacement_borrows_second_smallest() {
        let mut ltc = Ltc::new(config(
            1,
            2,
            1_000,
            Weights::FREQUENT,
            Variant::LONG_TAIL_ONLY,
        ));
        for _ in 0..5 {
            ltc.insert(100);
        }
        for _ in 0..2 {
            ltc.insert(200);
        }
        ltc.insert(300);
        ltc.insert(300); // admits 300 with f = second smallest (5) - 1 = 4
        assert_eq!(ltc.frequency_of(300), Some(4));
    }

    #[test]
    fn long_tail_single_cell_bucket_falls_back_to_basic() {
        let mut ltc = Ltc::new(config(
            1,
            1,
            1_000,
            Weights::FREQUENT,
            Variant::LONG_TAIL_ONLY,
        ));
        ltc.insert(1); // f=1
        ltc.insert(2); // decrement -> expel -> admit with no neighbour
        assert_eq!(ltc.frequency_of(2), Some(1));
    }

    #[test]
    fn persistency_counts_periods_not_occurrences() {
        let mut ltc = Ltc::new(config(8, 4, 10, Weights::PERSISTENT, Variant::FULL));
        for _period in 0..4 {
            for _ in 0..10 {
                ltc.insert(5); // many occurrences per period
            }
            ltc.end_period();
        }
        ltc.finalize();
        assert_eq!(
            ltc.persistency_of(5),
            Some(4),
            "+1 per period regardless of repetition"
        );
    }

    #[test]
    fn persistency_skips_absent_periods() {
        let mut ltc = Ltc::new(config(8, 4, 10, Weights::BALANCED, Variant::FULL));
        for period in 0..6u64 {
            for i in 0..10u64 {
                // item 5 appears only in even periods
                let id = if period % 2 == 0 && i == 0 {
                    5
                } else {
                    1000 + i
                };
                ltc.insert(id);
            }
            ltc.end_period();
        }
        ltc.finalize();
        assert_eq!(ltc.persistency_of(5), Some(3));
    }

    #[test]
    fn basic_variant_can_double_count_across_deviation() {
        // Reproduce Figure 4: one appearance straddling the CLOCK phase can
        // be harvested twice by the basic variant. Construct: the item's
        // cell is scanned mid-period; it appears before and after the scan
        // within period 1 plus once in period 2, truth p = 2, but the single
        // flag yields 3 with an adversarial arrival pattern. We only assert
        // the weaker, always-true property here — basic may exceed DE — and
        // pin the exact deviation scenario in the integration tests.
        let mk = |variant| {
            let mut ltc = Ltc::new(config(2, 2, 4, Weights::PERSISTENT, variant));
            for _period in 0..3 {
                for _ in 0..4 {
                    ltc.insert(7);
                }
                ltc.end_period();
            }
            ltc.finalize();
            ltc.persistency_of(7).unwrap()
        };
        let de = mk(Variant::FULL);
        assert_eq!(de, 3, "DE is exact: one per period");
        assert!(mk(Variant::BASIC) >= de - 1);
    }

    #[test]
    fn no_overestimation_of_frequency_basic() {
        // Theorem IV.1 (basic + DE): estimated ≤ real. Adversarial small
        // table with heavy collisions.
        let mut ltc = Ltc::new(config(2, 2, 50, Weights::FREQUENT, Variant::DEVIATION_ONLY));
        let mut truth = std::collections::HashMap::new();
        let ids = [1u64, 2, 3, 4, 5, 6, 7, 8];
        for i in 0..500u64 {
            let id = ids[(i % 8) as usize];
            ltc.insert(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        for (&id, &real) in &truth {
            if let Some(est) = ltc.frequency_of(id) {
                assert!(est <= real, "id {id}: est {est} > real {real}");
            }
        }
    }

    #[test]
    fn clock_sweeps_exactly_once_per_period() {
        let mut ltc = Ltc::new(config(10, 8, 37, Weights::BALANCED, Variant::FULL));
        for _ in 0..37 {
            ltc.insert(1);
        }
        // Before end_period the sweep may be mid-flight…
        assert!(ltc.clock_scans_this_period() <= 80);
        ltc.end_period();
        // …after it, the sweep counter has been reset having covered all m.
        assert_eq!(ltc.clock_scans_this_period(), 0);
    }

    #[test]
    fn top_k_orders_by_significance() {
        let mut ltc = Ltc::new(config(64, 8, 1_000, Weights::new(1.0, 1.0), Variant::FULL));
        for _ in 0..100 {
            ltc.insert(1);
        }
        for _ in 0..50 {
            ltc.insert(2);
        }
        for _ in 0..10 {
            ltc.insert(3);
        }
        ltc.end_period();
        ltc.finalize();
        let top = ltc.top_k(3);
        assert_eq!(top[0].id, 1);
        assert_eq!(top[1].id, 2);
        assert_eq!(top[2].id, 3);
        assert!(top[0].value >= 101.0, "f=100 + p=1");
    }

    #[test]
    fn estimate_unknown_is_none() {
        let ltc = Ltc::new(config(8, 8, 10, Weights::BALANCED, Variant::FULL));
        assert_eq!(ltc.estimate(12345), None);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut ltc = Ltc::new(config(8, 8, 10, Weights::PERSISTENT, Variant::FULL));
        for _ in 0..10 {
            ltc.insert(3);
        }
        ltc.end_period();
        ltc.finalize();
        let p1 = ltc.persistency_of(3);
        ltc.finalize();
        assert_eq!(ltc.persistency_of(3), p1);
    }

    #[test]
    fn time_driven_periods_roll_over() {
        let cfg = LtcConfig::builder()
            .buckets(8)
            .cells_per_bucket(4)
            .time_units_per_period(100)
            .weights(Weights::PERSISTENT)
            .variant(Variant::FULL)
            .seed(7)
            .build();
        let mut ltc = Ltc::new(cfg);
        // Item 5 appears in periods 0, 1 and 3 (times 10, 150, 350).
        ltc.insert_at(5, 10);
        ltc.insert_at(5, 150);
        ltc.insert_at(5, 350);
        // Close period 3 and harvest.
        ltc.end_period();
        ltc.finalize();
        assert_eq!(ltc.periods_completed(), 4);
        assert_eq!(ltc.persistency_of(5), Some(3));
    }

    #[test]
    #[should_panic(expected = "time-driven LTC")]
    fn count_insert_on_time_mode_panics() {
        let cfg = LtcConfig::builder().time_units_per_period(10).build();
        Ltc::new(cfg).insert(1);
    }

    #[test]
    #[should_panic(expected = "count-driven LTC")]
    fn time_insert_on_count_mode_panics() {
        let cfg = LtcConfig::builder().records_per_period(10).build();
        Ltc::new(cfg).insert_at(1, 0);
    }

    #[test]
    fn stats_count_the_four_paths() {
        let mut ltc = Ltc::new(config(1, 2, 1_000, Weights::FREQUENT, Variant::BASIC));
        ltc.insert(1); // fill
        ltc.insert(2); // fill
        ltc.insert(1); // hit
        ltc.insert(3); // decrement (2: f 1→0 → expel+admit? sig 0 → admission)
        let s = ltc.stats();
        assert_eq!(s.inserts, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.fills, 2);
        assert_eq!(s.admissions, 1, "2 expelled at f=0, 3 admitted");
        ltc.insert(1); // hit (f=2)
        ltc.insert(4); // decrements 3 (f 1→0) and admits 4
        ltc.insert(5); // decrements 4 → admits 5
        let s = ltc.stats();
        assert_eq!(s.admissions, 3);
        ltc.end_period();
        assert_eq!(ltc.stats().periods, 1);
        assert!(ltc.stats().harvests >= 1, "flagged cells harvested");
    }

    #[test]
    fn items_above_threshold_query() {
        let mut ltc = Ltc::new(config(16, 4, 1_000, Weights::FREQUENT, Variant::FULL));
        for (id, n) in [(1u64, 50usize), (2, 30), (3, 10)] {
            for _ in 0..n {
                ltc.insert(id);
            }
        }
        let above = ltc.items_above(30.0);
        let ids: Vec<_> = above.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2], "descending, inclusive threshold");
        assert!(ltc.items_above(1e9).is_empty());
        // Threshold 0 returns every occupied cell.
        assert_eq!(ltc.items_above(0.0).len(), 3);
    }

    #[test]
    fn memory_accounting_uses_paper_model() {
        let ltc = Ltc::new(config(100, 8, 10, Weights::BALANCED, Variant::FULL));
        assert_eq!(ltc.memory_bytes(), 100 * 8 * 16);
    }

    #[test]
    fn multi_period_mixed_weights_end_to_end() {
        // Significance blends both metrics: a persistent-but-light item must
        // outrank a single-burst item under β-heavy weights.
        let w = Weights::new(1.0, 10.0);
        let mut ltc = Ltc::new(config(128, 8, 100, w, Variant::FULL));
        for period in 0..10u64 {
            for i in 0..100u64 {
                let id = match i {
                    0..=4 => 11,                       // persistent: every period
                    5..=59 if period == 0 => 22,       // burst: period 0 only
                    _ => 1_000_000 + period * 100 + i, // noise
                };
                ltc.insert(id);
            }
            ltc.end_period();
        }
        ltc.finalize();
        // s(11) = 50 + 10*10 = 150; s(22) = 55 + 10*1 = 65.
        let top = ltc.top_k(1);
        assert_eq!(top[0].id, 11, "persistency dominates under 1:10");
    }
}
