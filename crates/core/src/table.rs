//! The LTC lossy table (paper §III).

use crate::cell::Cell;
use crate::clock::ClockPointer;
use crate::config::{LtcConfig, PeriodMode};
use crate::stats::LtcStats;
use ltc_common::{
    memory::LTC_CELL_BYTES, top_k_of, BatchStreamProcessor, Estimate, ItemId, MemoryUsage,
    SignificanceQuery, StreamProcessor, Timestamp, Weights,
};
use ltc_hash::SeededHash;

/// The Long-Tail CLOCK structure: `w` buckets × `d` cells, a CLOCK pointer
/// for persistency, and the two optional optimizations.
///
/// Drive it with [`insert`](Ltc::insert) (count-driven periods) or
/// [`insert_at`](Ltc::insert_at) (time-driven), signal period boundaries with
/// [`end_period`](Ltc::end_period), and — once the stream is over — call
/// [`finalize`](Ltc::finalize) to harvest the final period's appearance flags
/// before querying.
#[derive(Debug, Clone)]
pub struct Ltc {
    config: LtcConfig,
    cells: Vec<Cell>,
    clock: ClockPointer,
    bucket_hash: SeededHash,
    /// Parity of the current period (0 = even). Only meaningful with the
    /// Deviation Eliminator; the basic variant always uses flag 0.
    parity: u8,
    periods_completed: u64,
    /// Time-driven bookkeeping: timestamp at which the current period began
    /// and the last record's timestamp (for Δt clock stepping).
    period_start_time: Timestamp,
    last_time: Timestamp,
    stats: LtcStats,
}

impl Ltc {
    /// Create an LTC table from a configuration.
    pub fn new(config: LtcConfig) -> Self {
        let total = config.total_cells();
        Self {
            config,
            cells: vec![Cell::EMPTY; total],
            clock: ClockPointer::new(total),
            bucket_hash: SeededHash::new(config.seed as u32),
            parity: 0,
            periods_completed: 0,
            period_start_time: 0,
            last_time: 0,
            stats: LtcStats::default(),
        }
    }

    /// The configuration this table was built with.
    #[inline]
    pub fn config(&self) -> &LtcConfig {
        &self.config
    }

    /// Total number of cells `m = w·d`.
    #[inline]
    pub fn capacity_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of periods ended so far.
    #[inline]
    pub fn periods_completed(&self) -> u64 {
        self.periods_completed
    }

    /// Lifetime operation counters (see [`LtcStats`]).
    #[inline]
    pub fn stats(&self) -> LtcStats {
        self.stats
    }

    /// The flag parity arrivals set right now.
    #[inline]
    fn set_parity(&self) -> u8 {
        if self.config.variant.deviation_eliminator {
            self.parity
        } else {
            0
        }
    }

    /// The flag parity the CLOCK sweep harvests right now.
    #[inline]
    fn harvest_parity(&self) -> u8 {
        if self.config.variant.deviation_eliminator {
            self.parity ^ 1
        } else {
            0
        }
    }

    /// Insert one record (count-driven mode).
    ///
    /// # Panics
    /// Panics if the table was configured time-driven; use
    /// [`insert_at`](Ltc::insert_at) there.
    #[inline]
    pub fn insert(&mut self, id: ItemId) {
        let n = match self.config.period_mode {
            PeriodMode::ByCount { records_per_period } => records_per_period,
            PeriodMode::ByTime { .. } => {
                // lint:allow(no_panic): mode mismatch is a caller bug; documented contract
                panic!("time-driven LTC must be fed via insert_at(id, time)")
            }
        };
        self.process(id);
        self.tick(self.cells.len() as u64, n);
    }

    /// Insert a run of records (count-driven mode) — the batched hot path.
    ///
    /// Bit-identical to `for &id in ids { self.insert(id) }` (a property
    /// test pins this), but reorganised for throughput:
    ///
    /// 1. the whole batch is hashed up front into a scratch vector of
    ///    bucket bases, so the hash pipeline is not interleaved with
    ///    table writes;
    /// 2. each bucket's first cell is touched a few records ahead of its
    ///    use ([`Self::prefetch_bucket`]), hiding the random-access cache
    ///    miss behind the current record's work;
    /// 3. CLOCK pointer stepping is amortised: the pointer's accumulator
    ///    tells us how many records can be processed before the next scan
    ///    fires ([`ClockPointer::ticks_before_scan`]), so those records run
    ///    in a tight scan-free loop and the accumulator is advanced once
    ///    for the whole run.
    ///
    /// # Panics
    /// Panics if the table was configured time-driven; use
    /// [`insert_batch_at`](Ltc::insert_batch_at) there.
    pub fn insert_batch(&mut self, ids: &[ItemId]) {
        let n = match self.config.period_mode {
            PeriodMode::ByCount { records_per_period } => records_per_period,
            PeriodMode::ByTime { .. } => {
                // lint:allow(no_panic): mode mismatch is a caller bug; documented contract
                panic!("time-driven LTC must be fed via insert_batch_at(items)")
            }
        };
        let m = self.cells.len() as u64;
        let bases = self.hash_batch(ids);
        let mut i = 0;
        while i < ids.len() {
            // Records until the CLOCK next crosses a scan boundary: process
            // them back-to-back, then advance the accumulator in one step.
            let free = self
                .clock
                .ticks_before_scan(m, n)
                .min(ids.len().saturating_sub(i) as u64) as usize;
            let scan_free_end = i.saturating_add(free);
            for j in i..scan_free_end {
                self.prefetch_bucket(&bases, j);
                if let (Some(&id), Some(&base)) = (ids.get(j), bases.get(j)) {
                    self.process_at(id, base);
                }
            }
            self.clock.advance_scan_free(free as u64, m, n);
            i = scan_free_end;
            if let (Some(&id), Some(&base)) = (ids.get(i), bases.get(i)) {
                // This record's tick performs the due scan(s).
                self.prefetch_bucket(&bases, i);
                self.process_at(id, base);
                self.tick(m, n);
                i = i.saturating_add(1);
            }
        }
    }

    /// Insert a run of timestamped records (time-driven mode) — the batched
    /// twin of [`insert_at`](Ltc::insert_at). Bit-identical to inserting the
    /// pairs one by one; the batch gains come from up-front hashing and
    /// bucket prefetch (CLOCK stepping in time-driven mode is already
    /// amortised per record by the division-based tick).
    ///
    /// # Panics
    /// Panics if the table was configured count-driven.
    pub fn insert_batch_at(&mut self, items: &[(ItemId, Timestamp)]) {
        let t = match self.config.period_mode {
            PeriodMode::ByTime { units_per_period } => units_per_period,
            PeriodMode::ByCount { .. } => {
                // lint:allow(no_panic): mode mismatch is a caller bug; documented contract
                panic!("count-driven LTC must be fed via insert_batch(ids)")
            }
        };
        let ids: Vec<ItemId> = items.iter().map(|&(id, _)| id).collect();
        let bases = self.hash_batch(&ids);
        for (j, (&(id, time), &base)) in items.iter().zip(&bases).enumerate() {
            self.prefetch_bucket(&bases, j);
            debug_assert!(
                time >= self.last_time || time >= self.period_start_time,
                "timestamps must be non-decreasing"
            );
            while time >= self.period_start_time.saturating_add(t) {
                self.end_period();
            }
            let reference = self.last_time.max(self.period_start_time);
            let elapsed = time.saturating_sub(reference);
            self.tick(elapsed.saturating_mul(self.cells.len() as u64), t);
            self.last_time = time;
            self.process_at(id, base);
        }
    }

    /// Hash every id of a batch to its bucket base offset.
    fn hash_batch(&self, ids: &[ItemId]) -> Vec<usize> {
        let d = self.config.cells_per_bucket;
        // `bucket_index < buckets`, so `bucket_index * d < buckets * d`,
        // which the cell vector's existence proves fits in usize.
        ids.iter()
            .map(|&id| self.bucket_index(id).saturating_mul(d))
            .collect()
    }

    /// Touch the bucket a few records ahead so its cache line is in flight
    /// by the time [`process_at`](Ltc::process_at) reads it. The core crate
    /// forbids `unsafe`, so instead of `_mm_prefetch` this issues a plain
    /// read the optimiser must keep (`black_box`).
    #[inline]
    fn prefetch_bucket(&self, bases: &[usize], j: usize) {
        const PREFETCH_DISTANCE: usize = 8;
        if let Some(&base) = bases.get(j.saturating_add(PREFETCH_DISTANCE)) {
            if let Some(cell) = self.cells.get(base) {
                std::hint::black_box(cell);
            }
        }
    }

    /// Insert one record with a timestamp (time-driven mode). Periods roll
    /// over automatically when `time` crosses a boundary; timestamps must be
    /// non-decreasing.
    ///
    /// # Panics
    /// Panics if the table was configured count-driven.
    pub fn insert_at(&mut self, id: ItemId, time: Timestamp) {
        let t = match self.config.period_mode {
            PeriodMode::ByTime { units_per_period } => units_per_period,
            PeriodMode::ByCount { .. } => {
                // lint:allow(no_panic): mode mismatch is a caller bug; documented contract
                panic!("count-driven LTC must be fed via insert(id)")
            }
        };
        debug_assert!(
            time >= self.last_time || time >= self.period_start_time,
            "timestamps must be non-decreasing"
        );
        // Complete any periods the stream skipped over.
        while time >= self.period_start_time.saturating_add(t) {
            self.end_period();
        }
        // Advance the pointer by the fraction of the period that elapsed
        // since the previous record (paper: "let the pointer p pass
        // (x−y)/t·m time slots").
        let reference = self.last_time.max(self.period_start_time);
        let elapsed = time.saturating_sub(reference);
        self.tick(elapsed.saturating_mul(self.cells.len() as u64), t);
        self.last_time = time;
        self.process(id);
    }

    /// End the current period: complete the CLOCK sweep so every cell was
    /// scanned exactly once, then (with the Deviation Eliminator) flip the
    /// flag parity — the "refreshment elimination" of §III-C.
    pub fn end_period(&mut self) {
        let hp = self.harvest_parity();
        let cells = &mut self.cells;
        let mut harvested = 0u64;
        self.clock.finish_period(|i| {
            if cells.get_mut(i).is_some_and(|c| c.harvest(hp)) {
                harvested = harvested.saturating_add(1);
            }
        });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
        if self.config.variant.deviation_eliminator {
            self.parity ^= 1;
        }
        self.periods_completed = self.periods_completed.saturating_add(1);
        self.stats.periods = self.stats.periods.saturating_add(1);
        if let PeriodMode::ByTime { units_per_period } = self.config.period_mode {
            self.period_start_time = self.period_start_time.saturating_add(units_per_period);
        }
    }

    /// Harvest the previous period's not-yet-swept appearance flags so
    /// queries see every completed period.
    ///
    /// With the Deviation Eliminator the sweep during period `i+1` harvests
    /// period `i`'s flags, so without this call the final period would never
    /// be counted. Because a harvest consumes its flag, calling this any
    /// number of times — including mid-stream for a fresher snapshot — never
    /// double-counts; the regular sweep simply finds those flags already
    /// consumed.
    pub fn finalize(&mut self) {
        let hp = self.harvest_parity();
        let cells = &mut self.cells;
        let mut harvested = 0u64;
        self.clock.full_sweep(|i| {
            if cells.get_mut(i).is_some_and(|c| c.harvest(hp)) {
                harvested = harvested.saturating_add(1);
            }
        });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
    }

    /// Whether `id` currently occupies a cell.
    pub fn contains(&self, id: ItemId) -> bool {
        self.bucket(id).iter().any(|c| c.occupied() && c.id == id)
    }

    /// Estimated frequency of `id`, if tracked.
    pub fn frequency_of(&self, id: ItemId) -> Option<u64> {
        self.find(id).map(|c| u64::from(c.freq))
    }

    /// Estimated persistency of `id`, if tracked.
    pub fn persistency_of(&self, id: ItemId) -> Option<u64> {
        self.find(id).map(|c| u64::from(c.persist))
    }

    /// Iterate over all cells (diagnostics, tests, theory validation).
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter()
    }

    /// Cells scanned by the CLOCK since the current period began.
    pub fn clock_scans_this_period(&self) -> u64 {
        self.clock.scanned_this_period()
    }

    /// The bucket index `h(id)`.
    #[inline]
    pub fn bucket_index(&self, id: ItemId) -> usize {
        self.bucket_hash.index(id, self.config.buckets)
    }

    #[inline]
    fn bucket(&self, id: ItemId) -> &[Cell] {
        let d = self.config.cells_per_bucket;
        let base = self.bucket_index(id).saturating_mul(d);
        self.cells.get(base..base.saturating_add(d)).unwrap_or(&[])
    }

    #[inline]
    fn find(&self, id: ItemId) -> Option<&Cell> {
        self.bucket(id).iter().find(|c| c.occupied() && c.id == id)
    }

    /// Raw view of one bucket (merge support).
    pub(crate) fn bucket_cells(&self, base: usize, d: usize) -> &[Cell] {
        self.cells.get(base..base.saturating_add(d)).unwrap_or(&[])
    }

    /// Overwrite one bucket with up to `d` cells, clearing the rest
    /// (merge support).
    pub(crate) fn replace_bucket(&mut self, base: usize, d: usize, cells: &[Cell]) {
        debug_assert!(cells.len() <= d);
        let bucket = self
            .cells
            .get_mut(base..base.saturating_add(d))
            .unwrap_or_default();
        for (i, slot) in bucket.iter_mut().enumerate() {
            *slot = cells.get(i).copied().unwrap_or(Cell::EMPTY);
        }
    }

    /// Raw cell snapshot/restore support: the full cell array.
    pub(crate) fn cells_mut(&mut self) -> &mut [Cell] {
        &mut self.cells
    }

    /// Current parity (snapshot support).
    pub(crate) fn snapshot_parity(&self) -> u8 {
        self.parity
    }

    /// Restore period bookkeeping (snapshot support). The CLOCK pointer
    /// restarts from slot 0: a snapshot is taken at a period boundary in
    /// practice, and mid-period restores merely shift which cells the
    /// remaining sweep covers — harvests stay consume-once either way.
    pub(crate) fn restore_state(&mut self, parity: u8, periods_completed: u64) {
        self.parity = parity & 1;
        self.periods_completed = periods_completed;
        self.clock = ClockPointer::new(self.cells.len());
    }

    /// All tracked items whose estimated significance is at least
    /// `threshold`, descending — the "report everything significant" query
    /// shape (threshold form of top-k).
    pub fn items_above(&self, threshold: f64) -> Vec<Estimate> {
        let weights = self.config.weights;
        let mut out: Vec<Estimate> = self
            .cells
            .iter()
            .filter(|c| c.occupied())
            .map(|c| Estimate::new(c.id, c.significance(&weights)))
            .filter(|e| e.value >= threshold)
            .collect();
        // `total_cmp` agrees with `partial_cmp` on every value significance
        // can take (finite, non-negative) and needs no NaN escape hatch.
        out.sort_unstable_by(|a, b| b.value.total_cmp(&a.value).then_with(|| a.id.cmp(&b.id)));
        out
    }

    /// Advance the CLOCK by `numerator/denominator` of a sweep, harvesting.
    #[inline]
    fn tick(&mut self, numerator: u64, denominator: u64) {
        let hp = self.harvest_parity();
        let cells = &mut self.cells;
        let mut harvested = 0u64;
        self.clock.tick(numerator, denominator, |i| {
            if cells.get_mut(i).is_some_and(|c| c.harvest(hp)) {
                harvested = harvested.saturating_add(1);
            }
        });
        self.stats.harvests = self.stats.harvests.saturating_add(harvested);
    }

    /// The insertion state machine of §III-B1 (cases 1–3) with the
    /// Long-tail Replacement admission rule of §III-D when enabled.
    fn process(&mut self, id: ItemId) {
        let base = self
            .bucket_index(id)
            .saturating_mul(self.config.cells_per_bucket);
        self.process_at(id, base);
    }

    /// [`process`](Ltc::process) with the bucket base precomputed — the
    /// batched path hashes whole batches up front and feeds bases here.
    fn process_at(&mut self, id: ItemId, base: usize) {
        let weights = self.config.weights;
        let variant = self.config.variant;
        let parity = self.set_parity();
        let d = self.config.cells_per_bucket;
        let end = base.saturating_add(d);

        self.stats.inserts = self.stats.inserts.saturating_add(1);
        let mut hit_slot = None;
        let mut empty_slot = None;
        let mut min_slot = base;
        let mut min_sig = f64::INFINITY;
        for (offset, c) in self.cells.get(base..end).unwrap_or(&[]).iter().enumerate() {
            let i = base.saturating_add(offset);
            if c.occupied() {
                if c.id == id {
                    hit_slot = Some(i);
                    break;
                }
                let sig = c.significance(&weights);
                if sig < min_sig {
                    min_sig = sig;
                    min_slot = i;
                }
            } else if empty_slot.is_none() {
                empty_slot = Some(i);
            }
        }

        if let Some(i) = hit_slot {
            // Case 1: raise the current-period flag, count the hit.
            self.stats.hits = self.stats.hits.saturating_add(1);
            if let Some(c) = self.cells.get_mut(i) {
                c.freq = c.freq.saturating_add(1);
                c.set_flag(parity);
            }
            return;
        }

        if let Some(i) = empty_slot {
            // Case 2: fresh item in an empty cell, counters (1, 0).
            self.stats.fills = self.stats.fills.saturating_add(1);
            if let Some(c) = self.cells.get_mut(i) {
                c.occupy(id, 1, 0);
                c.set_flag(parity);
            }
            return;
        }

        // Case 3: Significance-Decrement the smallest cell; admit the new
        // item only once that cell's significance is worn down to zero.
        let Some(c) = self.cells.get_mut(min_slot) else {
            return;
        };
        c.significance_decrement();
        if !c.significance_is_zero(&weights) {
            self.stats.decrements = self.stats.decrements.saturating_add(1);
            return;
        }
        self.stats.admissions = self.stats.admissions.saturating_add(1);
        if let Some(c) = self.cells.get_mut(min_slot) {
            c.clear();
        }
        let (f0, p0) = if variant.long_tail_replacement {
            self.long_tail_initial(base, d, &weights)
        } else {
            (1, 0)
        };
        if let Some(c) = self.cells.get_mut(min_slot) {
            c.occupy(id, f0, p0);
            c.set_flag(parity);
        }
    }

    /// Long-tail Replacement initial counters: the second-smallest cell of
    /// the original bucket is, after the expulsion, the smallest remaining
    /// occupied cell. The paper sets the new item's value to "the second
    /// smallest value minus 1" so the admitted cell is still the bucket's
    /// smallest; with combined significance it copies the second-smallest
    /// frequency and persistency. We copy `(f₂, p₂)` and decrement the
    /// α-weighted coordinate (or the β-weighted one when α = 0), which keeps
    /// the admitted cell no larger than its neighbours under any weights.
    fn long_tail_initial(&self, base: usize, d: usize, weights: &Weights) -> (u32, u32) {
        let second = self
            .cells
            .get(base..base.saturating_add(d))
            .unwrap_or(&[])
            .iter()
            .filter(|c| c.occupied())
            .min_by(|a, b| a.significance(weights).total_cmp(&b.significance(weights)));
        match second {
            Some(c) => {
                if weights.alpha > 0.0 {
                    (c.freq.saturating_sub(1).max(1), c.persist)
                } else {
                    (c.freq.max(1), c.persist.saturating_sub(1))
                }
            }
            // Bucket held only the expelled item (d = 1): no long tail to
            // borrow from, fall back to the basic initial value.
            None => (1, 0),
        }
    }
}

impl StreamProcessor for Ltc {
    #[inline]
    fn insert(&mut self, id: ItemId) {
        Ltc::insert(self, id);
    }

    fn end_period(&mut self) {
        Ltc::end_period(self);
    }

    fn finish(&mut self) {
        Ltc::finalize(self);
    }

    fn name(&self) -> &'static str {
        "LTC"
    }
}

impl BatchStreamProcessor for Ltc {
    #[inline]
    fn insert_batch(&mut self, ids: &[ItemId]) {
        Ltc::insert_batch(self, ids);
    }
}

impl SignificanceQuery for Ltc {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.find(id).map(|c| c.significance(&self.config.weights))
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        let weights = self.config.weights;
        let candidates = self
            .cells
            .iter()
            .filter(|c| c.occupied())
            .map(|c| Estimate::new(c.id, c.significance(&weights)))
            .collect();
        top_k_of(candidates, k)
    }
}

impl MemoryUsage for Ltc {
    fn memory_bytes(&self) -> usize {
        self.cells.len().saturating_mul(LTC_CELL_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;

    fn config(w: usize, d: usize, n: u64, weights: Weights, variant: Variant) -> LtcConfig {
        LtcConfig::builder()
            .buckets(w)
            .cells_per_bucket(d)
            .records_per_period(n)
            .weights(weights)
            .variant(variant)
            .seed(7)
            .build()
    }

    #[test]
    fn case1_hit_increments_frequency() {
        let mut ltc = Ltc::new(config(4, 4, 100, Weights::FREQUENT, Variant::BASIC));
        for _ in 0..5 {
            ltc.insert(9);
        }
        assert_eq!(ltc.frequency_of(9), Some(5));
    }

    #[test]
    fn case2_vacancy_starts_at_one() {
        let mut ltc = Ltc::new(config(4, 4, 100, Weights::FREQUENT, Variant::BASIC));
        ltc.insert(1);
        assert_eq!(ltc.frequency_of(1), Some(1));
        assert_eq!(ltc.persistency_of(1), Some(0), "persistency via CLOCK only");
    }

    #[test]
    fn case3_decrements_smallest_until_replacement() {
        // One bucket of two cells so collisions are guaranteed.
        let mut ltc = Ltc::new(config(1, 2, 1_000, Weights::FREQUENT, Variant::BASIC));
        for _ in 0..5 {
            ltc.insert(100); // f = 5
        }
        for _ in 0..2 {
            ltc.insert(200); // f = 2
        }
        // Item 300 misses a full bucket: each arrival decrements the
        // smallest (200). Two arrivals empty it; the third admits 300.
        ltc.insert(300);
        assert_eq!(ltc.frequency_of(200), Some(1));
        assert!(!ltc.contains(300));
        ltc.insert(300);
        assert!(!ltc.contains(200), "200 expelled at significance 0");
        assert!(ltc.contains(300), "replacement admits on the same arrival");
        assert_eq!(ltc.frequency_of(300), Some(1), "basic variant starts at 1");
        assert_eq!(ltc.frequency_of(100), Some(5), "non-smallest untouched");
    }

    #[test]
    fn long_tail_replacement_borrows_second_smallest() {
        let mut ltc = Ltc::new(config(
            1,
            2,
            1_000,
            Weights::FREQUENT,
            Variant::LONG_TAIL_ONLY,
        ));
        for _ in 0..5 {
            ltc.insert(100);
        }
        for _ in 0..2 {
            ltc.insert(200);
        }
        ltc.insert(300);
        ltc.insert(300); // admits 300 with f = second smallest (5) - 1 = 4
        assert_eq!(ltc.frequency_of(300), Some(4));
    }

    #[test]
    fn long_tail_single_cell_bucket_falls_back_to_basic() {
        let mut ltc = Ltc::new(config(
            1,
            1,
            1_000,
            Weights::FREQUENT,
            Variant::LONG_TAIL_ONLY,
        ));
        ltc.insert(1); // f=1
        ltc.insert(2); // decrement -> expel -> admit with no neighbour
        assert_eq!(ltc.frequency_of(2), Some(1));
    }

    #[test]
    fn persistency_counts_periods_not_occurrences() {
        let mut ltc = Ltc::new(config(8, 4, 10, Weights::PERSISTENT, Variant::FULL));
        for _period in 0..4 {
            for _ in 0..10 {
                ltc.insert(5); // many occurrences per period
            }
            ltc.end_period();
        }
        ltc.finalize();
        assert_eq!(
            ltc.persistency_of(5),
            Some(4),
            "+1 per period regardless of repetition"
        );
    }

    #[test]
    fn persistency_skips_absent_periods() {
        let mut ltc = Ltc::new(config(8, 4, 10, Weights::BALANCED, Variant::FULL));
        for period in 0..6u64 {
            for i in 0..10u64 {
                // item 5 appears only in even periods
                let id = if period % 2 == 0 && i == 0 {
                    5
                } else {
                    1000 + i
                };
                ltc.insert(id);
            }
            ltc.end_period();
        }
        ltc.finalize();
        assert_eq!(ltc.persistency_of(5), Some(3));
    }

    #[test]
    fn basic_variant_can_double_count_across_deviation() {
        // Reproduce Figure 4: one appearance straddling the CLOCK phase can
        // be harvested twice by the basic variant. Construct: the item's
        // cell is scanned mid-period; it appears before and after the scan
        // within period 1 plus once in period 2, truth p = 2, but the single
        // flag yields 3 with an adversarial arrival pattern. We only assert
        // the weaker, always-true property here — basic may exceed DE — and
        // pin the exact deviation scenario in the integration tests.
        let mk = |variant| {
            let mut ltc = Ltc::new(config(2, 2, 4, Weights::PERSISTENT, variant));
            for _period in 0..3 {
                for _ in 0..4 {
                    ltc.insert(7);
                }
                ltc.end_period();
            }
            ltc.finalize();
            ltc.persistency_of(7).unwrap()
        };
        let de = mk(Variant::FULL);
        assert_eq!(de, 3, "DE is exact: one per period");
        assert!(mk(Variant::BASIC) >= de - 1);
    }

    #[test]
    fn no_overestimation_of_frequency_basic() {
        // Theorem IV.1 (basic + DE): estimated ≤ real. Adversarial small
        // table with heavy collisions.
        let mut ltc = Ltc::new(config(2, 2, 50, Weights::FREQUENT, Variant::DEVIATION_ONLY));
        let mut truth = std::collections::HashMap::new();
        let ids = [1u64, 2, 3, 4, 5, 6, 7, 8];
        for i in 0..500u64 {
            let id = ids[(i % 8) as usize];
            ltc.insert(id);
            *truth.entry(id).or_insert(0u64) += 1;
        }
        for (&id, &real) in &truth {
            if let Some(est) = ltc.frequency_of(id) {
                assert!(est <= real, "id {id}: est {est} > real {real}");
            }
        }
    }

    #[test]
    fn clock_sweeps_exactly_once_per_period() {
        let mut ltc = Ltc::new(config(10, 8, 37, Weights::BALANCED, Variant::FULL));
        for _ in 0..37 {
            ltc.insert(1);
        }
        // Before end_period the sweep may be mid-flight…
        assert!(ltc.clock_scans_this_period() <= 80);
        ltc.end_period();
        // …after it, the sweep counter has been reset having covered all m.
        assert_eq!(ltc.clock_scans_this_period(), 0);
    }

    #[test]
    fn top_k_orders_by_significance() {
        let mut ltc = Ltc::new(config(64, 8, 1_000, Weights::new(1.0, 1.0), Variant::FULL));
        for _ in 0..100 {
            ltc.insert(1);
        }
        for _ in 0..50 {
            ltc.insert(2);
        }
        for _ in 0..10 {
            ltc.insert(3);
        }
        ltc.end_period();
        ltc.finalize();
        let top = ltc.top_k(3);
        assert_eq!(top[0].id, 1);
        assert_eq!(top[1].id, 2);
        assert_eq!(top[2].id, 3);
        assert!(top[0].value >= 101.0, "f=100 + p=1");
    }

    #[test]
    fn estimate_unknown_is_none() {
        let ltc = Ltc::new(config(8, 8, 10, Weights::BALANCED, Variant::FULL));
        assert_eq!(ltc.estimate(12345), None);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut ltc = Ltc::new(config(8, 8, 10, Weights::PERSISTENT, Variant::FULL));
        for _ in 0..10 {
            ltc.insert(3);
        }
        ltc.end_period();
        ltc.finalize();
        let p1 = ltc.persistency_of(3);
        ltc.finalize();
        assert_eq!(ltc.persistency_of(3), p1);
    }

    #[test]
    fn time_driven_periods_roll_over() {
        let cfg = LtcConfig::builder()
            .buckets(8)
            .cells_per_bucket(4)
            .time_units_per_period(100)
            .weights(Weights::PERSISTENT)
            .variant(Variant::FULL)
            .seed(7)
            .build();
        let mut ltc = Ltc::new(cfg);
        // Item 5 appears in periods 0, 1 and 3 (times 10, 150, 350).
        ltc.insert_at(5, 10);
        ltc.insert_at(5, 150);
        ltc.insert_at(5, 350);
        // Close period 3 and harvest.
        ltc.end_period();
        ltc.finalize();
        assert_eq!(ltc.periods_completed(), 4);
        assert_eq!(ltc.persistency_of(5), Some(3));
    }

    #[test]
    #[should_panic(expected = "time-driven LTC")]
    fn count_insert_on_time_mode_panics() {
        let cfg = LtcConfig::builder().time_units_per_period(10).build();
        Ltc::new(cfg).insert(1);
    }

    #[test]
    #[should_panic(expected = "count-driven LTC")]
    fn time_insert_on_count_mode_panics() {
        let cfg = LtcConfig::builder().records_per_period(10).build();
        Ltc::new(cfg).insert_at(1, 0);
    }

    #[test]
    fn stats_count_the_four_paths() {
        let mut ltc = Ltc::new(config(1, 2, 1_000, Weights::FREQUENT, Variant::BASIC));
        ltc.insert(1); // fill
        ltc.insert(2); // fill
        ltc.insert(1); // hit
        ltc.insert(3); // decrement (2: f 1→0 → expel+admit? sig 0 → admission)
        let s = ltc.stats();
        assert_eq!(s.inserts, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.fills, 2);
        assert_eq!(s.admissions, 1, "2 expelled at f=0, 3 admitted");
        ltc.insert(1); // hit (f=2)
        ltc.insert(4); // decrements 3 (f 1→0) and admits 4
        ltc.insert(5); // decrements 4 → admits 5
        let s = ltc.stats();
        assert_eq!(s.admissions, 3);
        ltc.end_period();
        assert_eq!(ltc.stats().periods, 1);
        assert!(ltc.stats().harvests >= 1, "flagged cells harvested");
    }

    #[test]
    fn items_above_threshold_query() {
        let mut ltc = Ltc::new(config(16, 4, 1_000, Weights::FREQUENT, Variant::FULL));
        for (id, n) in [(1u64, 50usize), (2, 30), (3, 10)] {
            for _ in 0..n {
                ltc.insert(id);
            }
        }
        let above = ltc.items_above(30.0);
        let ids: Vec<_> = above.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2], "descending, inclusive threshold");
        assert!(ltc.items_above(1e9).is_empty());
        // Threshold 0 returns every occupied cell.
        assert_eq!(ltc.items_above(0.0).len(), 3);
    }

    #[test]
    fn memory_accounting_uses_paper_model() {
        let ltc = Ltc::new(config(100, 8, 10, Weights::BALANCED, Variant::FULL));
        assert_eq!(ltc.memory_bytes(), 100 * 8 * 16);
    }

    #[test]
    fn multi_period_mixed_weights_end_to_end() {
        // Significance blends both metrics: a persistent-but-light item must
        // outrank a single-burst item under β-heavy weights.
        let w = Weights::new(1.0, 10.0);
        let mut ltc = Ltc::new(config(128, 8, 100, w, Variant::FULL));
        for period in 0..10u64 {
            for i in 0..100u64 {
                let id = match i {
                    0..=4 => 11,                       // persistent: every period
                    5..=59 if period == 0 => 22,       // burst: period 0 only
                    _ => 1_000_000 + period * 100 + i, // noise
                };
                ltc.insert(id);
            }
            ltc.end_period();
        }
        ltc.finalize();
        // s(11) = 50 + 10*10 = 150; s(22) = 55 + 10*1 = 65.
        let top = ltc.top_k(1);
        assert_eq!(top[0].id, 11, "persistency dominates under 1:10");
    }
}
