//! Crash-consistent checkpoints: a framed, versioned, checksummed envelope
//! around the raw snapshots of [`crate::snapshot`], plus a [`Checkpointer`]
//! that publishes checkpoint files atomically and falls back across
//! generations on restore.
//!
//! The raw `to_snapshot` bytes are deliberately minimal (no checksum, no
//! version) because they live in memory. The moment state crosses a crash
//! boundary — a file, a socket — it needs to defend itself: a torn write
//! publishes a prefix, media flips bytes, an operator points a restore at
//! the checkpoint of a differently-configured table. The checkpoint frame
//! catches all three.
//!
//! ## Frame layout (little-endian)
//!
//! ```text
//! offset  size  field
//!      0     4  magic          "LTCF"
//!      4     2  format version (currently 1)
//!      6     2  flags          (reserved, must be zero)
//!      8     8  config fingerprint (FNV-1a over the canonical config
//!                                  encoding; shard configs chained in
//!                                  order for sharded tables)
//!     16     4  section count
//!     20     4  CRC-32 (IEEE) over the body
//!     24     …  body: per section, u32 length prefix + payload
//! ```
//!
//! Every header field is validated on decode and the CRC covers the whole
//! body (including the length prefixes), so **any** single-byte corruption
//! is detected: magic/version/flags/fingerprint flips fail their field
//! checks, a section-count flip breaks exact-consumption parsing, and any
//! body flip (CRC field included) fails the checksum. A fuzz test mutates
//! valid frames at arbitrary offsets to pin this down.
//!
//! ## Atomic publication
//!
//! [`Checkpointer::save`] writes `prefix.NNN….tmp`, fsyncs it, then
//! atomically renames it to `prefix.NNN….ckpt` (and fsyncs the directory):
//! a crash leaves either the complete new generation or none — never a
//! half-written `.ckpt`. Restore walks generations newest-first and takes
//! the first frame that decodes cleanly, so even a corrupted published
//! image (torn by a dying disk, injected via the `checkpoint::write`
//! failpoint) only costs one generation.
//!
//! ## Delta chains
//!
//! A *delta frame* is an ordinary `LTCF` frame whose first section is a
//! 20-byte `DLTA` chain header (magic, base generation u64, base CRC u32,
//! chain length u32) and whose remaining sections are per-shard `LTCD`
//! delta snapshots ([`crate::snapshot`]) carrying only the buckets dirtied
//! since the chain's *base* — the full frame whose publication opened the
//! current dirty epoch. Deltas are cumulative, so restore needs exactly
//! two frames: the base and the newest delta. The chain header links them
//! with the CRC-32 of the base's published bytes; if the base is missing,
//! unreadable, or its bytes no longer match that CRC, the chain is broken
//! ([`CheckpointError::BrokenChain`]) and restore falls back a generation
//! instead of reviving torn or mixed state. Periodic *compaction* (a fresh
//! full frame) bounds chain length and lets old generations prune away.

use crate::config::LtcConfig;
use crate::failpoint::{io_fault, FailAction};
use crate::obs::trace::names;
use crate::obs::RuntimeObs;
use crate::pipeline::ParallelLtc;
use crate::sharded::ShardedLtc;
use crate::snapshot::SnapshotError;
use crate::table::Ltc;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// First four bytes of every checkpoint frame.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"LTCF";

/// Current frame format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Frame header size: magic 4 + version 2 + flags 2 + fingerprint 8 +
/// section count 4 + CRC 4.
const HEADER_BYTES: usize = 24;

/// Error decoding, validating or storing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Not a checkpoint frame.
    BadMagic,
    /// Frame format version this build cannot read.
    BadVersion {
        /// Version found in the frame.
        found: u16,
    },
    /// Reserved flag bits were set (corruption or a future format).
    ReservedFlags {
        /// Flag bits found in the frame.
        found: u16,
    },
    /// The frame was written by a differently-configured table.
    ConfigMismatch {
        /// Fingerprint of the restoring table's configuration.
        expected: u64,
        /// Fingerprint stored in the frame.
        found: u64,
    },
    /// The body does not match its CRC-32 (corruption).
    ChecksumMismatch {
        /// CRC stored in the frame.
        expected: u32,
        /// CRC computed over the body.
        found: u32,
    },
    /// The frame ends mid-field or mid-section (torn write).
    Truncated,
    /// Bytes remain after the declared sections (corruption or padding).
    TrailingBytes,
    /// The frame holds a different number of sections than the restoring
    /// table has shards.
    SectionCount {
        /// Sections the restoring table needs.
        expected: usize,
        /// Sections the frame declares.
        found: usize,
    },
    /// A section decoded as a frame but failed snapshot validation.
    Snapshot(SnapshotError),
    /// A delta frame's base full frame is missing, unreadable, or does not
    /// match the chain CRC the delta recorded (torn or reordered chain).
    BrokenChain {
        /// Generation of the delta whose chain failed validation.
        delta: u64,
        /// Base generation the delta pointed at.
        base: u64,
    },
    /// Filesystem error reading or writing checkpoint files.
    Io(String),
    /// No generation on disk survived validation.
    NoCheckpoint,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint frame (bad magic)"),
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            CheckpointError::ReservedFlags { found } => {
                write!(f, "reserved checkpoint flags set: {found:#06x}")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config fingerprint {found:#018x} does not match table {expected:#018x}"
            ),
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint body CRC {found:#010x} does not match stored {expected:#010x}"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint frame truncated"),
            CheckpointError::TrailingBytes => write!(f, "checkpoint frame has trailing bytes"),
            CheckpointError::SectionCount { expected, found } => write!(
                f,
                "checkpoint holds {found} section(s), table needs {expected}"
            ),
            CheckpointError::Snapshot(e) => write!(f, "checkpoint section invalid: {e}"),
            CheckpointError::BrokenChain { delta, base } => write!(
                f,
                "delta generation {delta} has a broken chain to base generation {base}"
            ),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::NoCheckpoint => write!(f, "no valid checkpoint generation found"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Snapshot(e)
    }
}

fn io_err(e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — table built at compile time.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit: u32 = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit = bit.wrapping_add(1); // bounded by the `< 8` guard
        }
        table[i] = crc;
        i = i.wrapping_add(1); // bounded by the `< 256` guard
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE.get(idx).copied().unwrap_or(0);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Config fingerprint — FNV-1a over a canonical encoding.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Mix one config into a running fingerprint (see
/// [`config_fingerprint`]).
fn mix_config(state: u64, config: &LtcConfig) -> u64 {
    use crate::config::PeriodMode;
    let mut h = state;
    h = fnv1a(h, &(config.buckets as u64).to_le_bytes());
    h = fnv1a(h, &(config.cells_per_bucket as u64).to_le_bytes());
    h = fnv1a(h, &config.weights.alpha.to_bits().to_le_bytes());
    h = fnv1a(h, &config.weights.beta.to_bits().to_le_bytes());
    let (tag, value) = match config.period_mode {
        PeriodMode::ByCount { records_per_period } => (0u8, records_per_period),
        PeriodMode::ByTime { units_per_period } => (1u8, units_per_period),
    };
    h = fnv1a(h, &[tag]);
    h = fnv1a(h, &value.to_le_bytes());
    h = fnv1a(
        h,
        &[
            u8::from(config.variant.deviation_eliminator),
            u8::from(config.variant.long_tail_replacement),
        ],
    );
    h = fnv1a(h, &config.seed.to_le_bytes());
    h
}

/// Fingerprint of one table configuration: every field that affects
/// snapshot compatibility (shape, weights, period mode, variant, seed) is
/// hashed in a fixed order, so equal fingerprints mean "a snapshot of one
/// restores meaningfully into the other".
pub fn config_fingerprint(config: &LtcConfig) -> u64 {
    mix_config(FNV_OFFSET, config)
}

/// Fingerprint of an ordered set of shard configurations (number of shards
/// and per-shard seed perturbations included).
pub fn configs_fingerprint<'a>(configs: impl IntoIterator<Item = &'a LtcConfig>) -> u64 {
    let mut h = FNV_OFFSET;
    let mut count: u64 = 0;
    for config in configs {
        h = mix_config(h, config);
        count = count.saturating_add(1);
    }
    fnv1a(h, &count.to_le_bytes())
}

// ---------------------------------------------------------------------------
// Frame encode / decode.

fn read_u16(bytes: &[u8], at: usize) -> Option<u16> {
    let end = at.checked_add(2)?;
    let slice: [u8; 2] = bytes.get(at..end)?.try_into().ok()?;
    Some(u16::from_le_bytes(slice))
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let slice: [u8; 4] = bytes.get(at..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(slice))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let slice: [u8; 8] = bytes.get(at..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(slice))
}

/// Wrap `sections` in a checkpoint frame stamped with `fingerprint`.
pub fn encode_frame(fingerprint: u64, sections: &[Vec<u8>]) -> Vec<u8> {
    let body_len: usize = sections
        .iter()
        .map(|s| s.len().saturating_add(4))
        .fold(0usize, usize::saturating_add);
    let mut body = Vec::with_capacity(body_len);
    for section in sections {
        let len = u32::try_from(section.len()).expect("checkpoint section under 4 GiB");
        body.extend_from_slice(&len.to_le_bytes());
        body.extend_from_slice(section);
    }
    let count = u32::try_from(sections.len()).expect("fewer than 2^32 sections");
    let mut out = Vec::with_capacity(HEADER_BYTES.saturating_add(body.len()));
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved flags
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Validate a frame against `expected_fingerprint` and return its sections
/// (borrowed from `bytes`). Rejects truncation, corruption, version or
/// config mismatch with a precise error; never panics on arbitrary input.
pub fn decode_frame(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> Result<Vec<&[u8]>, CheckpointError> {
    if bytes.len() < 4 {
        return Err(CheckpointError::Truncated);
    }
    if bytes.get(..4) != Some(CHECKPOINT_MAGIC.as_slice()) {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u16(bytes, 4).ok_or(CheckpointError::Truncated)?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion { found: version });
    }
    let flags = read_u16(bytes, 6).ok_or(CheckpointError::Truncated)?;
    if flags != 0 {
        return Err(CheckpointError::ReservedFlags { found: flags });
    }
    let fingerprint = read_u64(bytes, 8).ok_or(CheckpointError::Truncated)?;
    let count = read_u32(bytes, 16).ok_or(CheckpointError::Truncated)? as usize;
    let stored_crc = read_u32(bytes, 20).ok_or(CheckpointError::Truncated)?;
    let body = bytes
        .get(HEADER_BYTES..)
        .ok_or(CheckpointError::Truncated)?;
    let actual_crc = crc32(body);
    if actual_crc != stored_crc {
        return Err(CheckpointError::ChecksumMismatch {
            expected: stored_crc,
            found: actual_crc,
        });
    }
    if fingerprint != expected_fingerprint {
        return Err(CheckpointError::ConfigMismatch {
            expected: expected_fingerprint,
            found: fingerprint,
        });
    }
    // Each section needs at least its 4-byte length prefix; this caps the
    // allocation even if a (CRC-colliding) count lies.
    let mut sections = Vec::with_capacity(count.min(body.len().checked_div(4).unwrap_or(0)));
    let mut offset = 0usize;
    for _ in 0..count {
        let len = read_u32(body, offset).ok_or(CheckpointError::Truncated)? as usize;
        let start = offset.checked_add(4).ok_or(CheckpointError::Truncated)?;
        let end = start.checked_add(len).ok_or(CheckpointError::Truncated)?;
        let payload = body.get(start..end).ok_or(CheckpointError::Truncated)?;
        sections.push(payload);
        offset = end;
    }
    if offset != body.len() {
        return Err(CheckpointError::TrailingBytes);
    }
    Ok(sections)
}

// ---------------------------------------------------------------------------
// Delta chains: DLTA section header + chain state.

/// Magic of a delta-chain header section (section 0 of a delta frame).
pub const DELTA_SECTION_MAGIC: &[u8; 4] = b"DLTA";

/// Serialised size of a delta-chain header section: magic 4 +
/// base generation 8 + base CRC 4 + chain index 4.
const DELTA_SECTION_BYTES: usize = 20;

/// Links a run of delta frames back to the full frame they are relative
/// to. Returned by [`ParallelLtc::save_full_checkpoint`] and threaded
/// through [`ParallelLtc::save_delta_checkpoint`]; the recorded CRC is of
/// the base generation's *published file bytes*, so any post-publish
/// tearing or reordering of the base invalidates every delta that points
/// at it (restore then falls back a generation instead of applying a delta
/// to the wrong base).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaChain {
    /// Generation number of the base full frame on disk.
    pub base_generation: u64,
    /// CRC-32 of the base generation's published frame bytes.
    pub base_crc: u32,
    /// Deltas published since the base (0 right after a full save).
    pub length: u32,
}

/// Encode a delta-chain header section.
fn encode_delta_header(chain: &DeltaChain) -> Vec<u8> {
    let mut out = Vec::with_capacity(DELTA_SECTION_BYTES);
    out.extend_from_slice(DELTA_SECTION_MAGIC);
    out.extend_from_slice(&chain.base_generation.to_le_bytes());
    out.extend_from_slice(&chain.base_crc.to_le_bytes());
    out.extend_from_slice(&chain.length.to_le_bytes());
    out
}

/// Decode a delta-chain header section; `None` if `bytes` is not one.
fn decode_delta_header(bytes: &[u8]) -> Option<DeltaChain> {
    if bytes.len() != DELTA_SECTION_BYTES || bytes.get(..4) != Some(DELTA_SECTION_MAGIC.as_slice())
    {
        return None;
    }
    Some(DeltaChain {
        base_generation: read_u64(bytes, 4)?,
        base_crc: read_u32(bytes, 12)?,
        length: read_u32(bytes, 16)?,
    })
}

// ---------------------------------------------------------------------------
// Checkpoint/restore for the three table types.

impl Ltc {
    /// Serialise the table as a self-validating checkpoint frame (one
    /// section wrapping [`Ltc::to_snapshot`]).
    pub fn to_checkpoint(&self) -> Vec<u8> {
        encode_frame(config_fingerprint(self.config()), &[self.to_snapshot()])
    }

    /// Restore from a checkpoint frame, all-or-nothing: a frame that fails
    /// any validation (truncation, corruption, version or config mismatch)
    /// leaves the table untouched.
    ///
    /// # Errors
    /// See [`CheckpointError`].
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let expected = config_fingerprint(self.config());
        let sections = decode_frame(bytes, expected)?;
        let [section] = sections.as_slice() else {
            return Err(CheckpointError::SectionCount {
                expected: 1,
                found: sections.len(),
            });
        };
        let mut staged = self.clone();
        staged.restore_snapshot(section)?;
        *self = staged;
        Ok(())
    }
}

/// Stage a restore of `sections` into clones of `shards`, committing only
/// if every section validates (all-or-nothing for multi-shard tables).
fn staged_restore(shards: &[&Ltc], sections: &[&[u8]]) -> Result<Vec<Ltc>, CheckpointError> {
    if sections.len() != shards.len() {
        return Err(CheckpointError::SectionCount {
            expected: shards.len(),
            found: sections.len(),
        });
    }
    let mut staged = Vec::with_capacity(shards.len());
    for (shard, section) in shards.iter().zip(sections) {
        let mut table = (*shard).clone();
        table.restore_snapshot(section)?;
        staged.push(table);
    }
    Ok(staged)
}

impl ShardedLtc {
    /// Serialise every shard as one checkpoint frame (one section per
    /// shard, fingerprinted over the full ordered shard configuration).
    pub fn to_checkpoint(&self) -> Vec<u8> {
        let sections: Vec<Vec<u8>> = (0..self.num_shards())
            .map(|i| self.shard(i).to_snapshot())
            .collect();
        let fingerprint =
            configs_fingerprint((0..self.num_shards()).map(|i| self.shard(i).config()));
        encode_frame(fingerprint, &sections)
    }

    /// Restore every shard from a checkpoint frame, all-or-nothing.
    ///
    /// # Errors
    /// See [`CheckpointError`].
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let expected = configs_fingerprint((0..self.num_shards()).map(|i| self.shard(i).config()));
        let sections = decode_frame(bytes, expected)?;
        let shards: Vec<&Ltc> = (0..self.num_shards()).map(|i| self.shard(i)).collect();
        let staged = staged_restore(&shards, &sections)?;
        *self = ShardedLtc::from_shards(staged);
        Ok(())
    }
}

impl ParallelLtc {
    /// Drain the pipeline (best-effort) and serialise every shard as one
    /// checkpoint frame. A degraded runtime is still checkpointable: lossy
    /// shards contribute their last-good state. The frame is compatible
    /// with a [`ShardedLtc`] of the same configuration.
    pub fn to_checkpoint(&self) -> Vec<u8> {
        let _ = self.sync();
        let tables = self.shard_tables();
        let mut sections = Vec::with_capacity(tables.len());
        let mut fingerprint_configs = Vec::with_capacity(tables.len());
        for table in tables {
            let guard = match table.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            sections.push(guard.to_snapshot());
            fingerprint_configs.push(*guard.config());
        }
        encode_frame(configs_fingerprint(fingerprint_configs.iter()), &sections)
    }

    /// Restore every shard from a checkpoint frame, all-or-nothing: the
    /// pipeline is drained, the frame fully validated and staged, and only
    /// then committed. Lossy shards are revived with a fresh worker and a
    /// full retry budget (restoring is an operator-level reset).
    ///
    /// # Errors
    /// See [`CheckpointError`].
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let _ = self.sync(); // workers idle after this (all sends acked)
        let staged = {
            let tables = self.shard_tables();
            let mut guards = Vec::with_capacity(tables.len());
            for table in tables {
                guards.push(match table.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                });
            }
            let configs: Vec<LtcConfig> = guards.iter().map(|g| *g.config()).collect();
            let expected = configs_fingerprint(configs.iter());
            let sections = decode_frame(bytes, expected)?;
            let shards: Vec<&Ltc> = guards.iter().map(|g| &**g).collect();
            staged_restore(&shards, &sections)?
        };
        let tables = self.shard_tables();
        for (table, restored) in tables.iter().zip(staged) {
            let mut guard = match table.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard = restored;
        }
        self.reset_after_restore();
        Ok(())
    }

    /// Checkpoint into `store`, returning the new generation number.
    /// When the runtime is observable, the save latency lands in
    /// `ltc_checkpoint_save_ns` and a `checkpoint_publish` journal event is
    /// published.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the write or rename fails.
    pub fn checkpoint_to(&self, store: &Checkpointer) -> Result<u64, CheckpointError> {
        // Parent the save span under the most recent barrier so the
        // batch's causal tree runs enqueue → process → barrier → publish.
        let trace = self.trace_handle();
        let pending = trace.as_ref().map(|(track, parent)| track.begin(*parent));
        let start = std::time::Instant::now();
        let result = store.save(&self.to_checkpoint());
        if let (Some((track, _)), Some(p)) = (&trace, &pending) {
            track.finish(p, names::CHECKPOINT_SAVE);
        }
        let generation = result?;
        if let Some(obs) = self.obs() {
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            obs.note_checkpoint_publish(generation, elapsed);
        }
        Ok(generation)
    }

    /// Restore from the newest generation in `store` that validates,
    /// falling back to older generations past any corrupted or torn image.
    /// Both frame flavours restore: a full frame loads directly, a delta
    /// frame loads its base full frame (verified against the chain CRC the
    /// delta recorded) and applies the delta on top. A delta whose base is
    /// missing, unreadable, or CRC-mismatched is skipped like a corrupt
    /// frame — the chain falls back a generation. Returns the generation
    /// restored. When the runtime is observable, the restore latency lands
    /// in `ltc_checkpoint_restore_ns`, every newer generation that was
    /// skipped bumps `ltc_checkpoint_fallbacks_total` (broken chains also
    /// bump `ltc_chain_fallbacks_total` and journal a `chain_fallback`
    /// event), and a `checkpoint_restore` journal event carries the
    /// restored generation.
    ///
    /// # Errors
    /// [`CheckpointError::NoCheckpoint`] if no generation validates.
    pub fn restore_from(&mut self, store: &Checkpointer) -> Result<u64, CheckpointError> {
        let obs = self.obs().cloned();
        // A restore starts a new causal epoch, so its span is a root.
        let trace = self.trace_handle();
        let pending = trace.as_ref().map(|(track, _)| track.begin(None));
        let start = std::time::Instant::now();
        let mut skipped = 0u64;
        let mut outcome = Err(CheckpointError::NoCheckpoint);
        for generation in store.generations()?.into_iter().rev() {
            match self.try_restore_generation(store, generation) {
                Ok(()) => {
                    if let Some(obs) = obs {
                        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        obs.checkpoint_fallbacks.add(skipped);
                        obs.note_checkpoint_restore(generation, elapsed);
                    }
                    outcome = Ok(generation);
                    break;
                }
                Err(CheckpointError::BrokenChain { delta, .. }) => {
                    if let Some(obs) = obs.as_ref() {
                        obs.note_chain_fallback(delta);
                    }
                    skipped = skipped.saturating_add(1);
                }
                Err(_) => skipped = skipped.saturating_add(1),
            }
        }
        if let (Some((track, _)), Some(p)) = (&trace, &pending) {
            track.finish(p, names::CHECKPOINT_RESTORE);
        }
        outcome
    }

    /// Restore one generation: route a delta frame through its chain, a
    /// full frame straight in.
    fn try_restore_generation(
        &mut self,
        store: &Checkpointer,
        generation: u64,
    ) -> Result<(), CheckpointError> {
        let bytes = store.load(generation)?;
        let Some(chain) = peek_delta(&bytes) else {
            return self.restore_checkpoint(&bytes);
        };
        let broken = CheckpointError::BrokenChain {
            delta: generation,
            base: chain.base_generation,
        };
        let Ok(base_bytes) = store.load(chain.base_generation) else {
            return Err(broken);
        };
        if crc32(&base_bytes) != chain.base_crc {
            return Err(broken);
        }
        self.restore_chained(&base_bytes, &bytes)
    }

    /// Restore base-then-delta, all-or-nothing: both frames fully validate
    /// against this runtime's configuration and stage into shard clones
    /// before anything commits.
    fn restore_chained(&mut self, base: &[u8], delta: &[u8]) -> Result<(), CheckpointError> {
        let _ = self.sync(); // workers idle after this (all sends acked)
        let staged = {
            let tables = self.shard_tables();
            let mut guards = Vec::with_capacity(tables.len());
            for table in tables {
                guards.push(match table.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                });
            }
            let configs: Vec<LtcConfig> = guards.iter().map(|g| *g.config()).collect();
            let expected = configs_fingerprint(configs.iter());
            let base_sections = decode_frame(base, expected)?;
            let delta_sections = decode_frame(delta, expected)?;
            // A delta frame is the DLTA header plus one LTCD per shard; the
            // base must be a plain full frame (one LTC1 per shard).
            let payloads = delta_sections.get(1..).unwrap_or(&[]);
            if base_sections.len() != guards.len() || payloads.len() != guards.len() {
                return Err(CheckpointError::SectionCount {
                    expected: guards.len(),
                    found: payloads.len(),
                });
            }
            let mut staged = Vec::with_capacity(guards.len());
            for ((guard, base_section), delta_section) in
                guards.iter().zip(&base_sections).zip(payloads)
            {
                let mut table = (**guard).clone();
                table.restore_snapshot(base_section)?;
                table.apply_delta_snapshot(delta_section)?;
                staged.push(table);
            }
            staged
        };
        let tables = self.shard_tables();
        for (table, restored) in tables.iter().zip(staged) {
            let mut guard = match table.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard = restored;
        }
        self.reset_after_restore();
        Ok(())
    }

    /// Serialise every shard as a full checkpoint frame *and open a new
    /// dirty epoch* per shard (atomically with each shard's snapshot read,
    /// under its lock), publish it to `store`, and return the chain state
    /// future deltas link against.
    ///
    /// If the publish fails the epochs are already cleared, so the caller
    /// must not fall back to delta saves until a full save succeeds (the
    /// [`crate::durability::DurabilityService`] enforces this); a full
    /// frame never depends on the dirty state, so retrying the full save
    /// loses nothing.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the write or rename fails.
    pub fn save_full_checkpoint(
        &self,
        store: &Checkpointer,
    ) -> Result<DeltaChain, CheckpointError> {
        let _ = self.sync();
        save_full_over(
            self.shard_tables(),
            self.obs().map(Arc::as_ref),
            store,
            "checkpoint::write",
            false,
        )
    }

    /// Serialise only the buckets dirtied since `chain`'s base full frame
    /// (cumulative — the newest delta alone reconstructs the table on top
    /// of the base) and publish it to `store`. On success the chain's
    /// length grows by one.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the write or rename fails (the chain is
    /// left unchanged — a later retry simply carries the same buckets).
    pub fn save_delta_checkpoint(
        &self,
        store: &Checkpointer,
        chain: &mut DeltaChain,
    ) -> Result<u64, CheckpointError> {
        let _ = self.sync();
        save_delta_over(
            self.shard_tables(),
            self.obs().map(Arc::as_ref),
            store,
            chain,
        )
    }
}

/// [`ParallelLtc::save_full_checkpoint`] over bare shard handles, with the
/// failpoint site and observability flavour (initial/periodic full vs
/// compaction) chosen by the caller. This is what the background
/// [`crate::durability::DurabilityService`] runs: it holds clones of the
/// shard `Arc`s (whose identity survives restore) rather than the runtime
/// itself, and deliberately does **not** drain the pipeline — in-flight
/// records simply aren't acknowledged into this frame and land in the
/// next one.
pub(crate) fn save_full_over(
    tables: &[Arc<Mutex<Ltc>>],
    obs: Option<&RuntimeObs>,
    store: &Checkpointer,
    site: &str,
    compaction: bool,
) -> Result<DeltaChain, CheckpointError> {
    let start = std::time::Instant::now();
    let mut sections = Vec::with_capacity(tables.len());
    let mut fingerprint_configs = Vec::with_capacity(tables.len());
    for table in tables {
        let mut guard = match table.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Snapshot and epoch-open under the same lock: every mutation
        // after this instant lands in the next delta, every mutation
        // before it is in this frame — no gap, no overlap.
        sections.push(guard.to_snapshot());
        guard.begin_delta_epoch();
        fingerprint_configs.push(*guard.config());
    }
    let frame = encode_frame(configs_fingerprint(fingerprint_configs.iter()), &sections);
    let generation = store.save_with_site(&frame, site)?;
    if let Some(obs) = obs {
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if compaction {
            obs.note_compaction(generation, elapsed);
        } else {
            obs.note_checkpoint_publish(generation, elapsed);
            obs.chain_length.set(0);
        }
    }
    Ok(DeltaChain {
        base_generation: generation,
        base_crc: crc32(&frame),
        length: 0,
    })
}

/// [`ParallelLtc::save_delta_checkpoint`] over bare shard handles — see
/// [`save_full_over`] for why the durability service uses this form.
pub(crate) fn save_delta_over(
    tables: &[Arc<Mutex<Ltc>>],
    obs: Option<&RuntimeObs>,
    store: &Checkpointer,
    chain: &mut DeltaChain,
) -> Result<u64, CheckpointError> {
    let start = std::time::Instant::now();
    let mut sections = Vec::with_capacity(tables.len().saturating_add(1));
    let mut fingerprint_configs = Vec::with_capacity(tables.len());
    sections.push(encode_delta_header(&DeltaChain {
        length: chain.length.saturating_add(1),
        ..*chain
    }));
    for table in tables {
        let guard = match table.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        sections.push(guard.to_delta_snapshot());
        fingerprint_configs.push(*guard.config());
    }
    let frame = encode_frame(configs_fingerprint(fingerprint_configs.iter()), &sections);
    let generation = store.save_with_site(&frame, "checkpoint::delta_write")?;
    chain.length = chain.length.saturating_add(1);
    if let Some(obs) = obs {
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        obs.note_delta_publish(generation, elapsed, u64::from(chain.length));
    }
    Ok(generation)
}

/// Structurally parse `bytes` as a delta frame: a frame that decodes
/// against its *own stored* fingerprint (magic, version, flags, CRC and
/// section structure all validate — configuration is checked later by the
/// restore proper) whose first section is a DLTA chain header.
fn peek_delta(bytes: &[u8]) -> Option<DeltaChain> {
    let fingerprint = read_u64(bytes, 8)?;
    let sections = decode_frame(bytes, fingerprint).ok()?;
    decode_delta_header(sections.first()?)
}

// ---------------------------------------------------------------------------
// Checkpointer — atomic generation files on disk.

/// Writes checkpoint frames to a directory as numbered generations
/// (`<prefix>.<generation>.ckpt`), each published atomically (temp file +
/// fsync + rename + directory fsync), pruned to the newest `keep`
/// generations. Restore helpers walk generations newest-first so a
/// corrupted latest image falls back to the previous one.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: PathBuf,
    prefix: String,
    keep: usize,
}

impl Checkpointer {
    /// A checkpointer over `dir` (created if missing), file prefix `"ltc"`,
    /// keeping the newest 3 generations.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&e))?;
        Ok(Self {
            dir,
            prefix: "ltc".to_string(),
            keep: 3,
        })
    }

    /// Use `prefix` for checkpoint file names (several checkpointers can
    /// share a directory under distinct prefixes).
    #[must_use]
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = prefix.into();
        self
    }

    /// Keep the newest `keep` generations (≥ 2 recommended: fallback needs
    /// a predecessor). Values below 1 are clamped to 1.
    #[must_use]
    pub fn keep_generations(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// The directory this checkpointer writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir
            .join(format!("{}.{generation:020}.ckpt", self.prefix))
    }

    /// Generation numbers currently on disk, oldest first.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the directory cannot be read.
    pub fn generations(&self) -> Result<Vec<u64>, CheckpointError> {
        let mut generations = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err(&e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(self.prefix.as_str()) else {
                continue;
            };
            let Some(middle) = rest.strip_prefix('.') else {
                continue;
            };
            let Some(digits) = middle.strip_suffix(".ckpt") else {
                continue;
            };
            if let Ok(generation) = digits.parse::<u64>() {
                generations.push(generation);
            }
        }
        generations.sort_unstable();
        Ok(generations)
    }

    /// The newest generation on disk, if any.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the directory cannot be read.
    pub fn latest(&self) -> Result<Option<u64>, CheckpointError> {
        Ok(self.generations()?.last().copied())
    }

    /// The configured keep limit (newest generations retained on save).
    pub fn keep_limit(&self) -> usize {
        self.keep
    }

    /// Load one generation's raw frame bytes (not validated — pass them to
    /// a `restore_checkpoint`).
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the file cannot be read.
    pub fn load(&self, generation: u64) -> Result<Vec<u8>, CheckpointError> {
        std::fs::read(self.path_for(generation)).map_err(|e| io_err(&e))
    }

    /// Atomically publish `frame` as the next generation; prunes old
    /// generations past the keep limit. Returns the generation written.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] if the write or rename fails.
    pub fn save(&self, frame: &[u8]) -> Result<u64, CheckpointError> {
        self.save_with_site(frame, "checkpoint::write")
    }

    /// [`Checkpointer::save`] with the buffer-corruption failpoint site
    /// named by the caller, so the fault-injection suite can target a
    /// *specific* save flavour (full write, delta write, compaction)
    /// without firing on the others. Production builds compile the site
    /// lookup away entirely.
    pub(crate) fn save_with_site(&self, frame: &[u8], site: &str) -> Result<u64, CheckpointError> {
        let generation = self.latest()?.map_or(1, |g| g.saturating_add(1));
        self.write_atomic(&self.path_for(generation), frame, site)?;
        self.prune()?;
        Ok(generation)
    }

    /// Restore via `try_restore`, walking generations newest-first and
    /// returning the first generation it accepts. Unreadable or rejected
    /// images are skipped (that is the crash-fallback path).
    ///
    /// # Errors
    /// [`CheckpointError::NoCheckpoint`] if every generation is rejected.
    pub fn restore_with(
        &self,
        mut try_restore: impl FnMut(&[u8]) -> Result<(), CheckpointError>,
    ) -> Result<u64, CheckpointError> {
        for generation in self.generations()?.into_iter().rev() {
            let Ok(bytes) = self.load(generation) else {
                continue;
            };
            if try_restore(&bytes).is_ok() {
                return Ok(generation);
            }
        }
        Err(CheckpointError::NoCheckpoint)
    }

    /// All checkpoint I/O funnels through here: write the temp file, fsync
    /// it, atomically rename over the final name, fsync the directory.
    /// Three failpoints cover the distinct crash surfaces: `site` (the
    /// caller-named buffer site, e.g. `checkpoint::write` or
    /// `checkpoint::delta_write`) can tear or corrupt the buffer before it
    /// is written (a crash mid-write that still published), while
    /// `checkpoint::fsync` and `checkpoint::rename` inject *syscall
    /// failures* at the two publication steps — which must surface as
    /// [`CheckpointError::Io`] without renaming a half-durable temp file
    /// into place.
    fn write_atomic(&self, path: &Path, frame: &[u8], site: &str) -> Result<(), CheckpointError> {
        let mut buf = frame.to_vec();
        match io_fault(site) {
            Some(FailAction::Truncate { keep }) => buf.truncate(keep),
            Some(FailAction::CorruptByte { offset }) => {
                if let Some(byte) = buf.get_mut(offset) {
                    *byte ^= 0xFF;
                }
            }
            _ => {}
        }
        let tmp = path.with_extension("tmp");
        {
            // lint:allow(atomic_io): this IS the atomic-rename helper
            let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&e))?;
            file.write_all(&buf).map_err(|e| io_err(&e))?;
            if let Some(FailAction::Error) = io_fault("checkpoint::fsync") {
                // The injected failure must behave like a real one: the
                // temp file is abandoned un-durable and never renamed.
                let _ = std::fs::remove_file(&tmp);
                return Err(CheckpointError::Io("injected fsync failure".to_string()));
            }
            file.sync_all().map_err(|e| io_err(&e))?;
        }
        if let Some(FailAction::Error) = io_fault("checkpoint::rename") {
            let _ = std::fs::remove_file(&tmp);
            return Err(CheckpointError::Io("injected rename failure".to_string()));
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err(&e))?;
        // Persist the rename itself. Directory fsync is POSIX-only and
        // advisory on some filesystems; failure to open is not fatal.
        #[cfg(unix)]
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn prune(&self) -> Result<(), CheckpointError> {
        let generations = self.generations()?;
        let excess = generations.len().saturating_sub(self.keep);
        for &generation in generations.iter().take(excess) {
            let _ = std::fs::remove_file(self.path_for(generation));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_common::{SignificanceQuery, StreamProcessor, Weights};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch directory, removed on drop. No external tempdir
    /// crate: process id + a counter keep parallel tests apart.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("ltc-ckpt-{}-{}-{}", std::process::id(), tag, n));
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn config() -> LtcConfig {
        LtcConfig::builder()
            .buckets(16)
            .cells_per_bucket(4)
            .weights(Weights::BALANCED)
            .records_per_period(50)
            .seed(11)
            .build()
    }

    fn loaded_table() -> Ltc {
        let mut ltc = Ltc::new(config());
        for period in 0..3u64 {
            for i in 0..50u64 {
                ltc.insert(if i % 5 == 0 { 7 } else { period * 100 + i });
            }
            ltc.end_period();
        }
        ltc
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let sections = vec![vec![1u8, 2, 3], vec![], vec![9u8; 100]];
        let frame = encode_frame(42, &sections);
        let decoded = decode_frame(&frame, 42).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0], &[1, 2, 3]);
        assert_eq!(decoded[1], &[] as &[u8]);
        assert_eq!(decoded[2], &[9u8; 100]);
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let frame = encode_frame(42, &[vec![1, 2, 3]]);
        assert!(matches!(
            decode_frame(&frame, 43),
            Err(CheckpointError::ConfigMismatch {
                expected: 43,
                found: 42
            })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // The acceptance property behind the whole frame design: no
        // one-byte corruption anywhere in the frame decodes silently.
        let frame = encode_frame(7, &[vec![5u8; 40], vec![6u8; 12]]);
        for offset in 0..frame.len() {
            let mut bad = frame.clone();
            bad[offset] ^= 0xFF;
            assert!(
                decode_frame(&bad, 7).is_err(),
                "flip at offset {offset} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let frame = encode_frame(7, &[vec![5u8; 40]]);
        for len in 0..frame.len() {
            assert!(
                decode_frame(&frame[..len], 7).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = encode_frame(7, &[vec![1, 2, 3]]);
        frame.push(0);
        // The CRC covers the body, so the extra byte fails the checksum
        // before section parsing even sees it.
        assert!(decode_frame(&frame, 7).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(7, &[vec![1]]);
        frame[4] = 99;
        assert!(matches!(
            decode_frame(&frame, 7),
            Err(CheckpointError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn ltc_checkpoint_roundtrip() {
        let original = loaded_table();
        let frame = original.to_checkpoint();
        let mut restored = Ltc::new(config());
        restored.restore_checkpoint(&frame).unwrap();
        assert_eq!(restored.top_k(10), original.top_k(10));
        assert_eq!(restored.periods_completed(), original.periods_completed());
    }

    #[test]
    fn ltc_rejects_other_config() {
        let frame = loaded_table().to_checkpoint();
        let mut other = Ltc::new(LtcConfig::builder().buckets(16).cells_per_bucket(4).build());
        let before = format!("{other:?}");
        assert!(matches!(
            other.restore_checkpoint(&frame),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        assert_eq!(
            format!("{other:?}"),
            before,
            "failed restore must not mutate"
        );
    }

    #[test]
    fn corrupted_ltc_checkpoint_leaves_table_untouched() {
        let original = loaded_table();
        let mut frame = original.to_checkpoint();
        let mid = frame.len() / 2;
        frame[mid] ^= 0x55;
        let mut target = loaded_table();
        let before = format!("{target:?}");
        assert!(target.restore_checkpoint(&frame).is_err());
        assert_eq!(format!("{target:?}"), before);
    }

    #[test]
    fn sharded_checkpoint_roundtrip() {
        let mut original = ShardedLtc::new(config(), 3);
        for i in 0..600u64 {
            original.insert(i % 40);
        }
        original.end_period();
        let frame = original.to_checkpoint();
        let mut restored = ShardedLtc::new(config(), 3);
        restored.restore_checkpoint(&frame).unwrap();
        assert_eq!(restored.top_k(10), original.top_k(10));
    }

    #[test]
    fn sharded_rejects_different_shard_count() {
        let original = ShardedLtc::new(config(), 3);
        let frame = original.to_checkpoint();
        let mut other = ShardedLtc::new(config(), 4);
        // Shard count is part of the fingerprint, so this fails before
        // section counting.
        assert!(matches!(
            other.restore_checkpoint(&frame),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn parallel_checkpoint_restores_into_sharded() {
        let mut parallel = ParallelLtc::with_batch_size(config(), 3, 16);
        for i in 0..600u64 {
            parallel.insert(i % 40);
        }
        parallel.end_period().unwrap();
        let frame = parallel.to_checkpoint();
        let mut sharded = ShardedLtc::new(config(), 3);
        sharded.restore_checkpoint(&frame).unwrap();
        let reference = parallel.into_sharded().unwrap();
        assert_eq!(sharded.top_k(10), reference.top_k(10));
    }

    #[test]
    fn parallel_restore_roundtrip_continues_stream() {
        let mut a = ParallelLtc::with_batch_size(config(), 2, 8);
        for i in 0..400u64 {
            a.insert(i % 30);
        }
        a.end_period().unwrap();
        let frame = a.to_checkpoint();
        drop(a);
        let mut b = ParallelLtc::with_batch_size(config(), 2, 8);
        b.restore_checkpoint(&frame).unwrap();
        for i in 0..400u64 {
            b.insert(i % 30);
        }
        b.end_period().unwrap();
        b.finish().unwrap();
        assert!(!b.top_k(5).is_empty());
    }

    #[test]
    fn checkpointer_saves_numbered_generations_atomically() {
        let scratch = ScratchDir::new("gens");
        let store = Checkpointer::new(scratch.path()).unwrap();
        assert_eq!(store.latest().unwrap(), None);
        assert_eq!(store.save(b"one").unwrap(), 1);
        assert_eq!(store.save(b"two").unwrap(), 2);
        assert_eq!(store.generations().unwrap(), vec![1, 2]);
        assert_eq!(store.load(2).unwrap(), b"two");
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(scratch.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    }

    #[test]
    fn checkpointer_prunes_old_generations() {
        let scratch = ScratchDir::new("prune");
        let store = Checkpointer::new(scratch.path())
            .unwrap()
            .keep_generations(2);
        for payload in [b"a", b"b", b"c", b"d"] {
            store.save(payload).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![3, 4]);
    }

    #[test]
    fn restore_falls_back_past_corrupted_generation() {
        let scratch = ScratchDir::new("fallback");
        let store = Checkpointer::new(scratch.path()).unwrap();
        let good = loaded_table();
        store.save(&good.to_checkpoint()).unwrap();
        // Generation 2 is torn: a valid frame prefix, as a crash that beat
        // the atomic rename discipline would leave (simulated directly).
        let torn = good.to_checkpoint();
        store.save(&torn[..torn.len() / 2]).unwrap();
        let mut restored = Ltc::new(config());
        let generation = store
            .restore_with(|bytes| restored.restore_checkpoint(bytes))
            .unwrap();
        assert_eq!(generation, 1, "fell back to the previous generation");
        assert_eq!(restored.top_k(5), good.top_k(5));
    }

    #[test]
    fn restore_with_no_valid_generation_errors() {
        let scratch = ScratchDir::new("empty");
        let store = Checkpointer::new(scratch.path()).unwrap();
        let mut table = Ltc::new(config());
        assert_eq!(
            store.restore_with(|bytes| table.restore_checkpoint(bytes)),
            Err(CheckpointError::NoCheckpoint)
        );
        store.save(b"garbage").unwrap();
        assert_eq!(
            store.restore_with(|bytes| table.restore_checkpoint(bytes)),
            Err(CheckpointError::NoCheckpoint)
        );
    }

    #[test]
    fn distinct_configs_have_distinct_fingerprints() {
        let base = config();
        let mut seed = base;
        seed.seed = base.seed.wrapping_add(1);
        let mut shape = base;
        shape.buckets = base.buckets.saturating_add(1);
        let mut weights = base;
        weights.weights = Weights::new(2.0, 1.0);
        for other in [seed, shape, weights] {
            assert_ne!(
                config_fingerprint(&base),
                config_fingerprint(&other),
                "{other:?} collided with base"
            );
        }
        // Shard count matters too.
        let one = configs_fingerprint(std::iter::once(&base));
        let two = configs_fingerprint([&base, &base]);
        assert_ne!(one, two);
    }

    #[test]
    fn error_display_is_informative() {
        let errors: Vec<CheckpointError> = vec![
            CheckpointError::BadMagic,
            CheckpointError::BadVersion { found: 9 },
            CheckpointError::ReservedFlags { found: 3 },
            CheckpointError::ConfigMismatch {
                expected: 1,
                found: 2,
            },
            CheckpointError::ChecksumMismatch {
                expected: 1,
                found: 2,
            },
            CheckpointError::Truncated,
            CheckpointError::TrailingBytes,
            CheckpointError::SectionCount {
                expected: 2,
                found: 3,
            },
            CheckpointError::Snapshot(SnapshotError::BadMagic),
            CheckpointError::Io("disk on fire".to_string()),
            CheckpointError::NoCheckpoint,
            CheckpointError::BrokenChain { delta: 4, base: 2 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn delta_header_roundtrips_and_rejects_noise() {
        let chain = DeltaChain {
            base_generation: 42,
            base_crc: 0xDEAD_BEEF,
            length: 3,
        };
        let bytes = encode_delta_header(&chain);
        assert_eq!(bytes.len(), DELTA_SECTION_BYTES);
        assert_eq!(decode_delta_header(&bytes), Some(chain));
        // Wrong magic, short, and long inputs all refuse to parse.
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert_eq!(decode_delta_header(&wrong), None);
        assert_eq!(decode_delta_header(&bytes[..DELTA_SECTION_BYTES - 1]), None);
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode_delta_header(&long), None);
        // An LTC1 snapshot section is never mistaken for a chain header.
        assert_eq!(decode_delta_header(&Ltc::new(config()).to_snapshot()), None);
    }

    #[test]
    fn delta_chain_restores_base_plus_newest_delta() {
        let scratch = ScratchDir::new("chain");
        let store = Checkpointer::new(scratch.path()).unwrap();
        let mut live = ParallelLtc::with_batch_size(config(), 2, 8);
        for i in 0..400u64 {
            live.insert(i % 30);
        }
        live.end_period().unwrap();
        let mut chain = live.save_full_checkpoint(&store).unwrap();
        assert_eq!(chain.base_generation, 1);
        assert_eq!(chain.length, 0);
        // Two deltas: the second is cumulative, so restore only needs the
        // base and the newest frame.
        for i in 0..100u64 {
            live.insert(if i % 2 == 0 { 7 } else { 19 });
        }
        live.save_delta_checkpoint(&store, &mut chain).unwrap();
        for i in 0..100u64 {
            live.insert(if i % 2 == 0 { 7 } else { 23 });
        }
        let generation = live.save_delta_checkpoint(&store, &mut chain).unwrap();
        assert_eq!(generation, 3);
        assert_eq!(chain.length, 2);
        let expected = live.to_checkpoint();
        let mut restored = ParallelLtc::with_batch_size(config(), 2, 8);
        assert_eq!(restored.restore_from(&store).unwrap(), 3);
        assert_eq!(
            restored.to_checkpoint(),
            expected,
            "base + newest delta reproduce the live table bit-exactly"
        );
        restored.finish().unwrap();
        live.finish().unwrap();
    }

    #[test]
    fn torn_base_breaks_the_chain_and_falls_back_a_generation() {
        let scratch = ScratchDir::new("torn-base");
        // Keep every generation: the fallback target's base (gen 1) must
        // still exist. (The durability service clamps its keep limit so a
        // live chain's base is never pruned; here we manage it by hand.)
        let store = Checkpointer::new(scratch.path())
            .unwrap()
            .keep_generations(8);
        let mut live = ParallelLtc::with_batch_size(config(), 2, 8);
        for i in 0..400u64 {
            live.insert(i % 30);
        }
        live.end_period().unwrap();
        // Chain 1: full gen 1 + delta gen 2.
        let mut chain = live.save_full_checkpoint(&store).unwrap();
        for i in 0..100u64 {
            live.insert(if i % 2 == 0 { 7 } else { 19 });
        }
        live.save_delta_checkpoint(&store, &mut chain).unwrap();
        let expected_at_2 = live.to_checkpoint();
        // Chain 2: full gen 3 (compaction) + delta gen 4.
        let mut chain = live.save_full_checkpoint(&store).unwrap();
        assert_eq!(chain.base_generation, 3);
        for i in 0..100u64 {
            live.insert(if i % 2 == 0 { 11 } else { 23 });
        }
        live.save_delta_checkpoint(&store, &mut chain).unwrap();
        // Tear the *base* of the newest chain after publication (a dying
        // disk, not a torn rename): gen 4's header CRC no longer matches,
        // so the whole newest chain must be abandoned, landing on gen 2
        // (whose own base, gen 1, is intact).
        let base_path = scratch.path().join(format!("ltc.{:020}.ckpt", 3));
        let mut bytes = std::fs::read(&base_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&base_path, &bytes).unwrap();
        let mut restored = ParallelLtc::with_batch_size(config(), 2, 8);
        assert_eq!(restored.restore_from(&store).unwrap(), 2);
        assert_eq!(
            restored.to_checkpoint(),
            expected_at_2,
            "fell back to the last chain whose base survived"
        );
        restored.finish().unwrap();
        live.finish().unwrap();
    }

    #[test]
    fn missing_base_breaks_the_chain() {
        let scratch = ScratchDir::new("missing-base");
        let store = Checkpointer::new(scratch.path()).unwrap();
        let mut live = ParallelLtc::with_batch_size(config(), 2, 8);
        for i in 0..200u64 {
            live.insert(i % 20);
        }
        live.end_period().unwrap();
        let mut chain = live.save_full_checkpoint(&store).unwrap();
        for i in 0..50u64 {
            live.insert(i % 5);
        }
        live.save_delta_checkpoint(&store, &mut chain).unwrap();
        std::fs::remove_file(scratch.path().join(format!("ltc.{:020}.ckpt", 1))).unwrap();
        let mut restored = ParallelLtc::with_batch_size(config(), 2, 8);
        // The delta survives on disk but its base is gone: nothing left to
        // restore from.
        assert_eq!(
            restored.restore_from(&store),
            Err(CheckpointError::NoCheckpoint)
        );
        restored.finish().unwrap();
        live.finish().unwrap();
    }

    #[test]
    fn delta_frames_are_smaller_than_full_frames_under_skew() {
        let mut live = ParallelLtc::with_batch_size(config(), 2, 8);
        for i in 0..400u64 {
            live.insert(i % 30);
        }
        live.end_period().unwrap();
        let scratch = ScratchDir::new("delta-size");
        let store = Checkpointer::new(scratch.path()).unwrap();
        let mut chain = live.save_full_checkpoint(&store).unwrap();
        // A hot-key phase touches few buckets; the delta should carry only
        // those.
        for _ in 0..100u64 {
            live.insert(7);
        }
        let generation = live.save_delta_checkpoint(&store, &mut chain).unwrap();
        let full = store.load(chain.base_generation).unwrap();
        let delta = store.load(generation).unwrap();
        assert!(
            delta.len() < full.len(),
            "skewed delta frame ({} B) should undercut the full frame ({} B)",
            delta.len(),
            full.len()
        );
        live.finish().unwrap();
    }
}
