//! Deterministic fault injection for the runtime's recovery paths.
//!
//! A *failpoint* is a named site in production code where a test can inject
//! a fault: a panic in a worker loop, a short write or byte corruption in
//! checkpoint I/O, a queue-full stall in the hand-off path. The facility is
//! zero-dependency and **feature-gated**: without `--features failpoints`
//! the [`fail_point!`] macro expands to nothing and [`io_fault`] is a
//! `const`-foldable `None`, so release builds carry no registry, no lock,
//! and no branch.
//!
//! With the feature on, tests drive sites through [`configure`]:
//!
//! ```ignore
//! failpoint::configure("worker::batch", FailAction::Panic, FireSpec::once());
//! // ... run the stream; the first batch handled by a worker panics ...
//! failpoint::clear();
//! ```
//!
//! Determinism: a site fires according to its [`FireSpec`] — skip the first
//! `after` evaluations, then fire `times` times, then stay off. Evaluation
//! counts are per-site and process-global, so tests that share site names
//! must serialise (the fault-injection suite runs each scenario under a
//! test-local guard and calls [`clear`] between scenarios).
//!
//! Sites are listed in `lint.toml` (`[failpoints] files`): the workspace
//! linter forbids `fail_point!` / `failpoint::` usage outside the
//! allowlisted modules so injection points cannot sprawl silently.

/// A fault a site can inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a recognisable message (worker-loop sites).
    Panic,
    /// Truncate an I/O buffer to `keep` bytes (checkpoint-write sites):
    /// simulates a torn write that a crash published.
    Truncate {
        /// Bytes to keep from the front of the buffer.
        keep: usize,
    },
    /// Flip the byte at `offset` (checkpoint-write sites): simulates media
    /// or transport corruption that framing must catch.
    CorruptByte {
        /// Byte offset to XOR with 0xFF (out of range = no-op).
        offset: usize,
    },
    /// Report the queue as full once so the caller takes its slow/park
    /// path deterministically (queue sites).
    Stall,
    /// Surface an injected I/O error (`ErrorKind::Other`) from the site
    /// (fsync/rename sites): simulates the syscall itself failing, which
    /// must abort the operation with an error instead of publishing.
    Error,
}

/// When a configured site actually fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireSpec {
    /// Evaluations to skip before the first fire.
    pub after: u32,
    /// Number of evaluations that fire once armed (then the site goes
    /// quiet).
    pub times: u32,
}

impl FireSpec {
    /// Fire on the first evaluation, once.
    pub fn once() -> Self {
        Self { after: 0, times: 1 }
    }

    /// Fire on every evaluation, forever.
    pub fn always() -> Self {
        Self {
            after: 0,
            times: u32::MAX,
        }
    }

    /// Skip `after` evaluations, then fire once.
    pub fn nth(after: u32) -> Self {
        Self { after, times: 1 }
    }
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::{FailAction, FireSpec};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Site {
        action: FailAction,
        spec: FireSpec,
        /// Evaluations seen so far.
        seen: u32,
        /// Fires delivered so far.
        fired: u32,
    }

    fn sites() -> MutexGuard<'static, HashMap<String, Site>> {
        static SITES: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        // lint:allow(hot_path_purity): test-only tooling — the registry
        // (and every caller of it) compiles away without `--features
        // failpoints`; production hot paths never reach this lock
        match SITES.get_or_init(|| Mutex::new(HashMap::new())).lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Arm `site` with `action` according to `spec`, replacing any previous
    /// configuration (and resetting its counters).
    pub fn configure(site: &str, action: FailAction, spec: FireSpec) {
        sites().insert(
            site.to_string(),
            Site {
                action,
                spec,
                seen: 0,
                fired: 0,
            },
        );
    }

    /// Disarm every site and reset all counters.
    pub fn clear() {
        sites().clear();
    }

    /// Evaluate `site`: `Some(action)` iff the site is armed and its
    /// [`FireSpec`] says this evaluation fires.
    pub fn hit(site: &str) -> Option<FailAction> {
        let mut map = sites();
        let entry = map.get_mut(site)?;
        let at = entry.seen;
        entry.seen = entry.seen.saturating_add(1);
        if at < entry.spec.after || entry.fired >= entry.spec.times {
            return None;
        }
        entry.fired = entry.fired.saturating_add(1);
        Some(entry.action.clone())
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{clear, configure, hit};

/// Evaluate an I/O failpoint site. Checkpoint I/O calls this to learn
/// whether (and how) to corrupt the bytes it is about to write. Compiled
/// to a constant `None` without the `failpoints` feature.
#[inline]
pub fn io_fault(site: &str) -> Option<FailAction> {
    #[cfg(feature = "failpoints")]
    {
        hit(site)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        None
    }
}

/// Inject a panic (or other control-flow fault) at a named site.
///
/// Expands to nothing without `--features failpoints`. With the feature,
/// evaluates the site and panics with `"failpoint: <site>"` when the
/// configured action is [`FailAction::Panic`]; other actions at a
/// `fail_point!` site are ignored (they belong to I/O sites).
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        #[cfg(feature = "failpoints")]
        {
            if let Some($crate::failpoint::FailAction::Panic) = $crate::failpoint::hit($site) {
                panic!("failpoint: {}", $site);
            }
        }
    };
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    /// Sites used here are unique to this module, so the process-global
    /// registry cannot race the integration suite.
    #[test]
    fn fires_according_to_spec() {
        configure("unit::nth", FailAction::Panic, FireSpec::nth(2));
        assert_eq!(hit("unit::nth"), None, "skip 1");
        assert_eq!(hit("unit::nth"), None, "skip 2");
        assert_eq!(hit("unit::nth"), Some(FailAction::Panic), "fires on 3rd");
        assert_eq!(hit("unit::nth"), None, "single-shot");
    }

    #[test]
    fn unarmed_sites_are_silent() {
        assert_eq!(hit("unit::never-configured"), None);
    }

    #[test]
    fn reconfigure_resets_counters() {
        configure("unit::reset", FailAction::Stall, FireSpec::once());
        assert_eq!(hit("unit::reset"), Some(FailAction::Stall));
        assert_eq!(hit("unit::reset"), None);
        configure("unit::reset", FailAction::Stall, FireSpec::once());
        assert_eq!(hit("unit::reset"), Some(FailAction::Stall), "re-armed");
    }

    #[test]
    fn always_spec_keeps_firing() {
        configure("unit::always", FailAction::Panic, FireSpec::always());
        for _ in 0..10 {
            assert_eq!(hit("unit::always"), Some(FailAction::Panic));
        }
    }

    #[test]
    #[should_panic(expected = "failpoint: unit::macro")]
    fn macro_panics_when_armed() {
        configure("unit::macro", FailAction::Panic, FireSpec::once());
        fail_point!("unit::macro");
    }
}
