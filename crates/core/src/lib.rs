//! # ltc-core — the Long-Tail CLOCK algorithm
//!
//! This crate implements **LTC**, the contribution of *"Finding Significant
//! Items in Data Streams"* (ICDE 2019): a single lossy table that tracks the
//! top-k items by significance `s = α·f + β·p`, where `f` is an item's
//! frequency and `p` its persistency (periods in which it appeared).
//!
//! ## Structure (paper §III-A)
//!
//! `w` buckets × `d` cells; each [`cell::Cell`] stores
//! `⟨ID, frequency, persistency⟩` where the persistency field is a counter
//! plus two flag bits.
//!
//! ## Mechanisms
//!
//! * **Insertion** (§III-B1) — hash to one bucket; increment on hit, take an
//!   empty cell on vacancy, otherwise *Significance-Decrement* the bucket's
//!   smallest cell and move in once it empties.
//! * **Persistency via CLOCK** (§III-B1) — a pointer sweeps the table exactly
//!   once per period ([`clock::ClockPointer`], integer Bresenham stepping);
//!   cells whose flag is set when the pointer passes gain one persistency.
//! * **Deviation Eliminator** (§III-C) — even/odd flag pair so that the sweep
//!   harvests exactly the *previous* period's appearances, eliminating the
//!   ±1 period phase error of the single-flag version.
//! * **Long-tail Replacement** (§III-D) — newly admitted items start from the
//!   bucket's second-smallest value minus one instead of 1, restoring the
//!   count they spent evicting the previous occupant.
//!
//! Variants are toggled via [`Variant`]; the paper's default (`Variant::FULL`)
//! enables both optimizations.
//!
//! ```
//! use ltc_core::{Ltc, LtcConfig};
//! use ltc_common::{StreamProcessor, SignificanceQuery, Weights};
//!
//! let mut ltc = Ltc::new(
//!     LtcConfig::builder()
//!         .buckets(128)
//!         .weights(Weights::new(1.0, 1.0))
//!         .records_per_period(500)
//!         .build(),
//! );
//! for _ in 0..400 { ltc.insert(42); }
//! for i in 0..100 { ltc.insert(1_000 + i); }
//! ltc.end_period();
//! assert_eq!(ltc.top_k(1)[0].id, 42);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
// Production code must spell out its overflow behaviour (saturating_*,
// wrapping_*, checked_*); test code may use plain arithmetic — the workspace
// test profile compiles it with overflow-checks instead.
#![cfg_attr(not(test), warn(clippy::arithmetic_side_effects))]

pub mod cell;
pub mod checkpoint;
pub mod clock;
pub mod config;
pub mod durability;
#[macro_use]
pub mod failpoint;
pub mod merge;
pub mod obs;
pub mod pipeline;
pub mod reference;
pub mod sharded;
pub(crate) mod shim;
// Explicit `core::arch` bucket scans, compiled only with `--features simd`.
// Like `spsc`, the module carries its own file-level `#![allow(unsafe_code)]`
// with per-block SAFETY comments, and `cargo run -p xtask -- lint` pins
// intrinsics and the allow to exactly the modules listed in lint.toml.
#[cfg(feature = "simd")]
pub mod simd;
pub mod snapshot;
pub mod spsc;
pub mod stats;
pub mod table;
pub mod window;

pub use cell::Cell;
pub use checkpoint::{CheckpointError, Checkpointer, DeltaChain};
pub use clock::ClockPointer;
pub use config::{FaultPolicy, LtcConfig, LtcConfigBuilder, PeriodMode, Variant};
pub use durability::{DurabilityPolicy, DurabilityService, DurabilityStatus, OnFault};
pub use merge::MergeError;
pub use obs::{EventJournal, EventKind, MetricsRegistry, RuntimeObs};
pub use pipeline::{FaultKind, ParallelLtc, RuntimeError, ShardHealth, WorkerFault};
pub use sharded::ShardedLtc;
pub use snapshot::SnapshotError;
pub use spsc::SpscRing;
pub use stats::LtcStats;
pub use table::Ltc;
pub use window::WindowedLtc;
