//! Sliding-window significance — an extension beyond the paper.
//!
//! The paper's persistency counts periods over the *whole* stream, so an
//! item that was persistent last month but has vanished keeps its score
//! forever. Long-running monitors usually want "significant over the last
//! `W` periods". [`WindowedLtc`] provides that with one extra `u64` per
//! cell:
//!
//! * each cell carries a **presence bitmap**: bit `0` = "appeared in the
//!   current period", bit `j` = "appeared `j` periods ago". At every period
//!   boundary the bitmap shifts left by one (bounded by the window);
//! * windowed persistency is `popcount(bitmap & window_mask)` — exact for
//!   resident items, no CLOCK needed (the bitmap *is* the per-period
//!   presence record, deduplication included);
//! * windowed frequency uses exponential aging: at each boundary the
//!   frequency counter is scaled by `(W-1)/W`, so it approximates the count
//!   over the last `O(W)` periods without per-period frequency storage.
//!
//! The admission/eviction machinery (Significance Decrementing, Long-tail
//! Replacement) is inherited unchanged; only the significance inputs change.
//! Windows are capped at 64 periods by the bitmap width — enough for
//! "last hour of minutes" or "last two months of days" dashboards.
//!
//! Storage follows the main table's struct-of-arrays layout ([`WinStore`]):
//! one lane per field, bucket-major. The find-match probe touches only the
//! id and occupancy lanes, and the period-boundary aging (bitmap shift,
//! frequency scaling) runs as unconditional whole-lane passes — empty slots
//! hold zeroes, which both transforms map to zeroes.

use ltc_common::{
    top_k_of, Estimate, ItemId, MemoryUsage, SignificanceQuery, StreamProcessor, Weights,
};
use ltc_hash::SeededHash;

/// A cell of the windowed table, materialised from the lanes.
#[derive(Debug, Clone, Copy, Default)]
struct WinCell {
    id: ItemId,
    /// Aged frequency (fixed-point: stored ×16 so aging by (W-1)/W keeps
    /// fractional mass for small counters).
    freq16: u64,
    /// Presence bitmap: bit j = appeared j periods ago (bit 0 = current).
    presence: u64,
    occupied: bool,
}

impl WinCell {
    fn freq(&self) -> u64 {
        self.freq16 >> 4
    }

    fn persistency(&self, mask: u64) -> u64 {
        u64::from((self.presence & mask).count_ones())
    }

    fn significance(&self, weights: &Weights, mask: u64) -> f64 {
        if self.occupied {
            weights.significance(self.freq(), self.persistency(mask))
        } else {
            0.0
        }
    }
}

/// Struct-of-arrays storage for [`WinCell`]s: one lane per field, slot `i`
/// of every lane is the same logical cell.
#[derive(Debug, Clone)]
struct WinStore {
    ids: Vec<ItemId>,
    freq16s: Vec<u64>,
    presences: Vec<u64>,
    occupied: Vec<bool>,
}

impl WinStore {
    fn new(total: usize) -> Self {
        Self {
            ids: vec![0; total],
            freq16s: vec![0; total],
            presences: vec![0; total],
            occupied: vec![false; total],
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn cell(&self, i: usize) -> WinCell {
        WinCell {
            id: self.ids.get(i).copied().unwrap_or(0),
            freq16: self.freq16s.get(i).copied().unwrap_or(0),
            presence: self.presences.get(i).copied().unwrap_or(0),
            occupied: self.occupied.get(i).copied().unwrap_or(false),
        }
    }

    fn set_cell(&mut self, i: usize, cell: WinCell) {
        if let Some(slot) = self.ids.get_mut(i) {
            *slot = cell.id;
        }
        if let Some(slot) = self.freq16s.get_mut(i) {
            *slot = cell.freq16;
        }
        if let Some(slot) = self.presences.get_mut(i) {
            *slot = cell.presence;
        }
        if let Some(slot) = self.occupied.get_mut(i) {
            *slot = cell.occupied;
        }
    }

    fn clear(&mut self, i: usize) {
        self.set_cell(i, WinCell::default());
    }

    fn iter_cells(&self) -> impl Iterator<Item = WinCell> + '_ {
        self.ids
            .iter()
            .zip(&self.freq16s)
            .zip(&self.presences)
            .zip(&self.occupied)
            .map(|(((&id, &freq16), &presence), &occupied)| WinCell {
                id,
                freq16,
                presence,
                occupied,
            })
    }
}

/// LTC with sliding-window significance. See the module docs.
///
/// # Examples
///
/// ```
/// use ltc_core::WindowedLtc;
/// use ltc_common::{SignificanceQuery, Weights};
///
/// // Score over the last 4 periods only.
/// let mut w = WindowedLtc::new(64, 8, Weights::new(0.0, 1.0), 4, 1);
/// for _ in 0..6 {
///     w.insert(7);
///     w.end_period();
/// }
/// // Only the window's periods count (newest slot is the fresh period).
/// assert_eq!(w.persistency_of(7), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct WindowedLtc {
    store: WinStore,
    buckets: usize,
    cells_per_bucket: usize,
    weights: Weights,
    window: u32,
    mask: u64,
    hash: SeededHash,
    periods_completed: u64,
}

impl WindowedLtc {
    /// A table of `buckets × cells_per_bucket` cells scoring over the last
    /// `window` periods (1..=64).
    pub fn new(
        buckets: usize,
        cells_per_bucket: usize,
        weights: Weights,
        window: u32,
        seed: u64,
    ) -> Self {
        assert!(buckets >= 1 && cells_per_bucket >= 1, "degenerate shape");
        assert!(
            (1..=64).contains(&window),
            "window must be 1..=64 periods (bitmap width)"
        );
        let mask = if window == 64 {
            u64::MAX
        } else {
            // 1 <= window <= 63 here, so the shifted value is at least 2.
            (1u64 << window).wrapping_sub(1)
        };
        Self {
            store: WinStore::new(buckets.saturating_mul(cells_per_bucket)),
            buckets,
            cells_per_bucket,
            weights,
            window,
            mask,
            hash: SeededHash::new(seed as u32 ^ 0x51d3),
            periods_completed: 0,
        }
    }

    /// The window length in periods.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Periods completed so far.
    pub fn periods_completed(&self) -> u64 {
        self.periods_completed
    }

    /// Windowed frequency estimate of `id`, if tracked.
    pub fn frequency_of(&self, id: ItemId) -> Option<u64> {
        self.find(id).map(|c| c.freq())
    }

    /// Windowed persistency (periods present within the window) of `id`.
    pub fn persistency_of(&self, id: ItemId) -> Option<u64> {
        self.find(id).map(|c| c.persistency(self.mask))
    }

    fn bucket_range(&self, id: ItemId) -> std::ops::Range<usize> {
        let b = self.hash.index(id, self.buckets);
        let base = b.saturating_mul(self.cells_per_bucket);
        base..base.saturating_add(self.cells_per_bucket)
    }

    /// Find `id`'s slot: a branch-light reduction over the id and occupancy
    /// lanes only (the windowed analogue of [`crate::cell::scan_match`]).
    fn find_slot(&self, range: std::ops::Range<usize>, id: ItemId) -> Option<usize> {
        let ids = self.store.ids.get(range.clone()).unwrap_or(&[]);
        let occ = self.store.occupied.get(range.clone()).unwrap_or(&[]);
        let mut hit = usize::MAX;
        for (k, (&cid, &o)) in ids.iter().zip(occ).enumerate() {
            if (cid == id) & o {
                hit = k;
            }
        }
        (hit != usize::MAX).then(|| range.start.saturating_add(hit))
    }

    fn find(&self, id: ItemId) -> Option<WinCell> {
        self.find_slot(self.bucket_range(id), id)
            .map(|i| self.store.cell(i))
    }

    /// Record one occurrence of `id` in the current period.
    pub fn insert(&mut self, id: ItemId) {
        let range = self.bucket_range(id);
        let weights = self.weights;
        let mask = self.mask;

        if let Some(i) = self.find_slot(range.clone(), id) {
            if let Some(f) = self.store.freq16s.get_mut(i) {
                *f = f.saturating_add(16);
            }
            if let Some(p) = self.store.presences.get_mut(i) {
                *p |= 1;
            }
            return;
        }

        // First vacancy, scanning the occupancy lane alone.
        let occ = self.store.occupied.get(range.clone()).unwrap_or(&[]);
        if let Some(k) = occ.iter().position(|&o| !o) {
            self.store.set_cell(
                range.start.saturating_add(k),
                WinCell {
                    id,
                    freq16: 16,
                    presence: 1,
                    occupied: true,
                },
            );
            return;
        }

        // Bucket full: find the windowed minimum over the counter lanes
        // (every slot is occupied here, so the scan runs unconditionally).
        let f16 = self.store.freq16s.get(range.clone()).unwrap_or(&[]);
        let pres = self.store.presences.get(range.clone()).unwrap_or(&[]);
        let mut min_k = 0usize;
        let mut min_sig = f64::INFINITY;
        for (k, (&f, &p)) in f16.iter().zip(pres).enumerate() {
            let sig = weights.significance(f >> 4, u64::from((p & mask).count_ones()));
            if sig < min_sig {
                min_sig = sig;
                min_k = k;
            }
        }
        let min_i = range.start.saturating_add(min_k);

        // Significance-Decrement the windowed minimum: take one frequency
        // unit and the *oldest* presence bit (the windowed analogue of
        // decrementing the persistency counter).
        if let Some(f) = self.store.freq16s.get_mut(min_i) {
            *f = f.saturating_sub(16);
        }
        if let Some(p) = self.store.presences.get_mut(min_i) {
            let in_window = *p & mask;
            if in_window != 0 {
                let oldest = in_window.ilog2(); // non-zero checked above
                *p &= !(1u64 << oldest);
            }
        }
        let worn_out = self.store.cell(min_i).significance(&weights, mask) == 0.0;
        if worn_out {
            // Long-tail Replacement against the remaining minimum.
            let evicted = self.store.cell(min_i).id;
            let second = range
                .clone()
                .map(|i| self.store.cell(i))
                .filter(|x| x.occupied && x.id != evicted)
                .map(|x| (x.freq16, x.presence & mask))
                .min_by(|a, b| a.0.cmp(&b.0));
            let (f16, presence) = match second {
                Some((f2, p2)) => (f2.saturating_sub(16).max(16), p2 >> 1),
                None => (16, 0),
            };
            self.store.set_cell(
                min_i,
                WinCell {
                    id,
                    freq16: f16,
                    presence: presence | 1,
                    occupied: true,
                },
            );
        }
    }

    /// Close the current period: shift every presence bitmap, age every
    /// frequency by `(W-1)/W`, and drop cells whose window emptied.
    ///
    /// The shift and the scaling are unconditional whole-lane passes —
    /// unoccupied slots carry zeroes, which both transforms preserve — so
    /// only the reclamation pass consults occupancy.
    pub fn end_period(&mut self) {
        let mask = self.mask;
        let w = u64::from(self.window);
        for p in &mut self.store.presences {
            *p = (*p << 1) & mask;
        }
        if self.window == 1 {
            for f in &mut self.store.freq16s {
                *f = 0;
            }
        } else {
            let scale = w.saturating_sub(1);
            for f in &mut self.store.freq16s {
                *f = f.saturating_mul(scale).checked_div(w).unwrap_or(0);
            }
        }
        for i in 0..self.store.len() {
            let c = self.store.cell(i);
            if c.occupied && c.presence == 0 && c.freq16 < 16 {
                // Aged out of the window entirely.
                self.store.clear(i);
            }
        }
        self.periods_completed = self.periods_completed.saturating_add(1);
    }
}

impl StreamProcessor for WindowedLtc {
    fn insert(&mut self, id: ItemId) {
        WindowedLtc::insert(self, id);
    }

    fn end_period(&mut self) {
        WindowedLtc::end_period(self);
    }

    fn name(&self) -> &'static str {
        "LTC-W"
    }
}

impl SignificanceQuery for WindowedLtc {
    fn estimate(&self, id: ItemId) -> Option<f64> {
        self.find(id)
            .map(|c| c.significance(&self.weights, self.mask))
    }

    fn top_k(&self, k: usize) -> Vec<Estimate> {
        let weights = self.weights;
        let mask = self.mask;
        top_k_of(
            self.store
                .iter_cells()
                .filter(|c| c.occupied)
                .map(|c| Estimate::new(c.id, c.significance(&weights, mask)))
                .collect(),
            k,
        )
    }
}

impl MemoryUsage for WindowedLtc {
    fn memory_bytes(&self) -> usize {
        // id 8 + aged frequency 4 + presence bitmap 8 = 20 B per cell under
        // the workspace cost model.
        self.store.len().saturating_mul(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(window: u32) -> WindowedLtc {
        WindowedLtc::new(16, 4, Weights::new(0.0, 1.0), window, 5)
    }

    #[test]
    fn windowed_persistency_counts_recent_periods_only() {
        let mut t = table(4);
        // Item 1 appears in periods 0..6; window of 4.
        for _p in 0..6 {
            t.insert(1);
            t.end_period();
        }
        // The window covers the current (just-opened, empty) period plus
        // the last 3 completed ones — appearances in periods 3, 4, 5 are in
        // range, period 2 has slid out.
        assert_eq!(t.persistency_of(1), Some(3));
        // One more active period fills the newest slot again.
        t.insert(1);
        assert_eq!(t.persistency_of(1), Some(4));
    }

    #[test]
    fn lapsed_items_lose_score_and_slot() {
        let mut t = table(3);
        t.insert(7);
        t.end_period();
        assert_eq!(t.persistency_of(7), Some(1));
        t.end_period();
        t.end_period();
        // Window slid past every appearance: cell reclaimed.
        t.end_period();
        assert_eq!(t.persistency_of(7), None, "aged out");
    }

    #[test]
    fn recent_item_outranks_formerly_persistent() {
        let mut t = table(4);
        // Old-timer: periods 0..4. Newcomer: periods 6..10.
        for _ in 0..4 {
            t.insert(100);
            t.end_period();
        }
        for _ in 0..2 {
            t.end_period(); // 100 fades
        }
        for _ in 0..4 {
            t.insert(200);
            t.end_period();
        }
        let top = t.top_k(2);
        assert_eq!(top[0].id, 200, "window favours the recent item");
        assert!(t
            .persistency_of(100)
            .is_none_or(|p| p < t.persistency_of(200).unwrap()));
    }

    #[test]
    fn frequency_ages_exponentially() {
        let mut t = WindowedLtc::new(16, 4, Weights::FREQUENT, 4, 5);
        for _ in 0..64 {
            t.insert(9);
        }
        assert_eq!(t.frequency_of(9), Some(64));
        t.end_period();
        assert_eq!(t.frequency_of(9), Some(48), "aged by 3/4");
        t.end_period();
        assert_eq!(t.frequency_of(9), Some(36));
    }

    #[test]
    fn window_of_one_resets_each_period() {
        let mut t = table(1);
        t.insert(3);
        assert_eq!(t.persistency_of(3), Some(1));
        t.end_period();
        assert_eq!(t.persistency_of(3), None, "everything expires");
    }

    #[test]
    fn eviction_still_favours_significant_items() {
        let mut t = WindowedLtc::new(1, 2, Weights::new(0.0, 1.0), 8, 5);
        // Two residents with different windowed persistency.
        for _p in 0..4 {
            t.insert(1);
            if _p < 1 {
                t.insert(2);
            }
            t.end_period();
        }
        // A churner hammers the bucket: must evict 2 (lower persistency).
        for _ in 0..20 {
            t.insert(3);
        }
        assert!(t.persistency_of(1).is_some(), "strong item survives");
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn window_over_64_rejected() {
        let _ = table(65);
    }

    #[test]
    fn memory_model_charges_bitmap() {
        let t = WindowedLtc::new(10, 8, Weights::BALANCED, 16, 1);
        assert_eq!(t.memory_bytes(), 10 * 8 * 20);
    }
}
