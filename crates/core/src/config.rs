//! LTC configuration: table shape, significance weights, period driving,
//! which of the paper's optimizations are enabled, and the supervision
//! policy of the parallel runtime.

use ltc_common::{memory::LTC_CELL_BYTES, MemoryBudget, Weights};
use std::time::Duration;

/// Which optimizations are enabled (paper §III-C, §III-D).
///
/// The experiments of Figures 8 and 11 toggle these individually; everything
/// else runs the paper's default, [`Variant::FULL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Variant {
    /// Deviation Eliminator: even/odd flag pair instead of a single flag, so
    /// the CLOCK sweep harvests exactly the previous period's appearances.
    pub deviation_eliminator: bool,
    /// Long-tail Replacement: newly admitted items start from the bucket's
    /// second-smallest value minus one instead of 1.
    pub long_tail_replacement: bool,
}

impl Variant {
    /// The basic version of §III-B: single flag, initial value 1.
    pub const BASIC: Self = Self {
        deviation_eliminator: false,
        long_tail_replacement: false,
    };

    /// Both optimizations on — the paper's default configuration.
    pub const FULL: Self = Self {
        deviation_eliminator: true,
        long_tail_replacement: true,
    };

    /// Only the Deviation Eliminator (the Fig. 8 "N" baseline keeps DE on
    /// while toggling LTR).
    pub const DEVIATION_ONLY: Self = Self {
        deviation_eliminator: true,
        long_tail_replacement: false,
    };

    /// Only Long-tail Replacement (the Fig. 11 "N" baseline keeps LTR on
    /// while toggling DE).
    pub const LONG_TAIL_ONLY: Self = Self {
        deviation_eliminator: false,
        long_tail_replacement: true,
    };
}

impl Default for Variant {
    fn default() -> Self {
        Self::FULL
    }
}

/// How the CLOCK pointer is driven (paper §III-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriodMode {
    /// Count-driven: each period holds `records_per_period` records; the
    /// pointer advances `m/n` slots per record.
    ByCount {
        /// Records per period (`n`).
        records_per_period: u64,
    },
    /// Time-driven: each period spans `units_per_period` timestamp units; the
    /// pointer advances `Δt·m/t` slots per record, where `Δt` is the gap to
    /// the previous record. Requires inserting via [`crate::Ltc::insert_at`].
    ByTime {
        /// Timestamp units per period (`t`).
        units_per_period: u64,
    },
}

/// Full LTC configuration. Build with [`LtcConfig::builder`] or
/// [`LtcConfig::with_memory`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LtcConfig {
    /// Number of buckets `w`.
    pub buckets: usize,
    /// Cells per bucket `d` (paper default: 8).
    pub cells_per_bucket: usize,
    /// Significance weights α, β.
    pub weights: Weights,
    /// Period driving mode.
    pub period_mode: PeriodMode,
    /// Enabled optimizations.
    pub variant: Variant,
    /// Seed for the bucket hash function.
    pub seed: u64,
    /// How many records ahead the batched insert path touches the next
    /// bucket's id lane ([`crate::Ltc::insert_batch`]). Purely a throughput
    /// knob: it never changes results, and it is deliberately excluded from
    /// checkpoint fingerprints so tuning it cannot invalidate saved state.
    pub prefetch_distance: usize,
}

/// Default [`LtcConfig::prefetch_distance`]: far enough to cover a DRAM
/// miss at batch-insert issue rates, near enough to stay inside the batch.
pub const DEFAULT_PREFETCH_DISTANCE: usize = 8;

impl LtcConfig {
    /// Start building a configuration.
    pub fn builder() -> LtcConfigBuilder {
        LtcConfigBuilder::default()
    }

    /// Size the table for a memory budget at the paper's 16 B/cell model:
    /// `w = budget / (16·d)`. All other knobs at builder defaults; chainable
    /// through the returned builder.
    pub fn with_memory(budget: MemoryBudget, cells_per_bucket: usize) -> LtcConfigBuilder {
        let cells = budget.entries(LTC_CELL_BYTES);
        let buckets = cells.checked_div(cells_per_bucket).unwrap_or(0).max(1);
        LtcConfigBuilder::default()
            .buckets(buckets)
            .cells_per_bucket(cells_per_bucket)
    }

    /// Total cells `m = w·d`.
    #[inline]
    pub fn total_cells(&self) -> usize {
        self.buckets.saturating_mul(self.cells_per_bucket)
    }
}

/// Supervision knobs for [`crate::pipeline::ParallelLtc`]: how hard the
/// coordinator tries to revive a dead shard worker before degrading the
/// shard to lossy, and how often workers checkpoint their shard state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Worker restarts allowed per shard before it is marked lossy.
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per subsequent restart.
    pub backoff_base: Duration,
    /// Cap on the exponential backoff.
    pub backoff_max: Duration,
    /// Capture an in-memory recovery checkpoint every this many completed
    /// periods (≥ 1). Restarted workers resume from the latest capture;
    /// records since then are lost (and counted).
    pub checkpoint_every_periods: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(500),
            checkpoint_every_periods: 1,
        }
    }
}

impl FaultPolicy {
    /// A test-friendly policy: default budget, no sleeping between
    /// restarts.
    pub fn no_backoff() -> Self {
        Self {
            backoff_base: Duration::ZERO,
            ..Self::default()
        }
    }

    /// Backoff before restart number `restart` (1-based): `base · 2^(r−1)`,
    /// capped at [`backoff_max`](FaultPolicy::backoff_max).
    pub fn backoff_for(&self, restart: u32) -> Duration {
        let shift = restart.saturating_sub(1).min(20);
        let factor = 1u32.checked_shl(shift).unwrap_or(u32::MAX);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

/// Builder for [`LtcConfig`].
#[derive(Debug, Clone)]
pub struct LtcConfigBuilder {
    buckets: usize,
    cells_per_bucket: usize,
    weights: Weights,
    period_mode: PeriodMode,
    variant: Variant,
    seed: u64,
    prefetch_distance: usize,
}

impl Default for LtcConfigBuilder {
    fn default() -> Self {
        Self {
            buckets: 1024,
            cells_per_bucket: 8,
            weights: Weights::BALANCED,
            period_mode: PeriodMode::ByCount {
                records_per_period: 10_000,
            },
            variant: Variant::FULL,
            seed: 0x5151_c0de,
            prefetch_distance: DEFAULT_PREFETCH_DISTANCE,
        }
    }
}

impl LtcConfigBuilder {
    /// Number of buckets `w` (≥ 1).
    pub fn buckets(mut self, w: usize) -> Self {
        self.buckets = w;
        self
    }

    /// Cells per bucket `d` (≥ 1; paper default 8).
    pub fn cells_per_bucket(mut self, d: usize) -> Self {
        self.cells_per_bucket = d;
        self
    }

    /// Significance weights.
    pub fn weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Count-driven periods of `n` records.
    pub fn records_per_period(mut self, n: u64) -> Self {
        assert!(n > 0, "a period must contain records");
        self.period_mode = PeriodMode::ByCount {
            records_per_period: n,
        };
        self
    }

    /// Time-driven periods of `t` timestamp units.
    pub fn time_units_per_period(mut self, t: u64) -> Self {
        assert!(t > 0, "a period must span time");
        self.period_mode = PeriodMode::ByTime {
            units_per_period: t,
        };
        self
    }

    /// Select optimizations.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Seed for the bucket hash.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Batched-insert prefetch lookahead, in records. `0` disables the
    /// prefetch touch entirely.
    pub fn prefetch_distance(mut self, records: usize) -> Self {
        self.prefetch_distance = records;
        self
    }

    /// Finalise. Panics on a degenerate shape.
    pub fn build(self) -> LtcConfig {
        assert!(self.buckets >= 1, "need at least one bucket");
        assert!(self.cells_per_bucket >= 1, "need at least one cell");
        LtcConfig {
            buckets: self.buckets,
            cells_per_bucket: self.cells_per_bucket,
            weights: self.weights,
            period_mode: self.period_mode,
            variant: self.variant,
            seed: self.seed,
            prefetch_distance: self.prefetch_distance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let c = LtcConfig::builder().build();
        assert_eq!(c.cells_per_bucket, 8, "paper sets d = 8 by default");
        assert_eq!(c.variant, Variant::FULL);
    }

    #[test]
    fn prefetch_distance_defaults_to_eight() {
        // The batched path was tuned at lookahead 8 (BENCH_pipeline.json);
        // changing the default must be a deliberate, benchmarked decision.
        assert_eq!(DEFAULT_PREFETCH_DISTANCE, 8);
        assert_eq!(
            LtcConfig::builder().build().prefetch_distance,
            DEFAULT_PREFETCH_DISTANCE
        );
        let c = LtcConfig::builder().prefetch_distance(0).build();
        assert_eq!(c.prefetch_distance, 0, "0 disables the prefetch touch");
    }

    #[test]
    fn with_memory_sizes_table() {
        // 10 KB at 16 B/cell = 640 cells = 80 buckets of 8.
        let c = LtcConfig::with_memory(MemoryBudget::kilobytes(10), 8).build();
        assert_eq!(c.buckets, 80);
        assert_eq!(c.total_cells(), 640);
    }

    #[test]
    fn with_memory_never_zero_buckets() {
        let c = LtcConfig::with_memory(MemoryBudget::bytes(8), 8).build();
        assert_eq!(c.buckets, 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = LtcConfig::builder().buckets(0).build();
    }

    #[test]
    #[should_panic(expected = "a period must contain records")]
    fn zero_period_rejected() {
        let _ = LtcConfig::builder().records_per_period(0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = FaultPolicy {
            max_restarts: 10,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(65),
            checkpoint_every_periods: 1,
        };
        assert_eq!(policy.backoff_for(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(40));
        assert_eq!(policy.backoff_for(4), Duration::from_millis(65), "capped");
        assert_eq!(policy.backoff_for(u32::MAX), Duration::from_millis(65));
    }

    #[test]
    fn no_backoff_policy_never_sleeps() {
        let policy = FaultPolicy::no_backoff();
        assert_eq!(policy.max_restarts, FaultPolicy::default().max_restarts);
        for r in 1..=5 {
            assert!(policy.backoff_for(r).is_zero());
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn variant_constants() {
        assert!(!Variant::BASIC.deviation_eliminator);
        assert!(!Variant::BASIC.long_tail_replacement);
        assert!(Variant::FULL.deviation_eliminator);
        assert!(Variant::FULL.long_tail_replacement);
        assert!(Variant::DEVIATION_ONLY.deviation_eliminator);
        assert!(!Variant::DEVIATION_ONLY.long_tail_replacement);
    }
}
