//! Explicit SIMD bucket-match scan (`--features simd`).
//!
//! The default build relies on LLVM autovectorizing the safe lane scans in
//! [`crate::cell`]; this module is the measured alternative for the one
//! probe that dominates the insert path: find-match over a bucket tile's id
//! lane. On x86-64 with SSE4.1 it compares two ids per instruction
//! (`_mm_cmpeq_epi64`) and reads two slots' occupancy with one
//! `_mm_movemask_pd` — the packed meta word keeps the OCCUPIED flag in the
//! sign bit for exactly this reason. Everywhere else it falls back to the
//! safe scan, so enabling the feature never changes results — a property
//! suite pins [`find_match`] bit-exact against [`crate::cell::scan_match`].
//!
//! This is the only module besides `spsc` permitted to contain `unsafe`
//! (`cargo run -p xtask -- lint`, rules `unsafe_allowlist` and
//! `simd_gate`), and the only one permitted to name `core::arch`.
#![allow(unsafe_code)]

use crate::cell::scan_match;
use ltc_common::ItemId;

/// Find `id`'s slot within one bucket tile's id/meta lanes — bit-exact twin
/// of [`crate::cell::scan_match`] (same "last occupied match wins"
/// reduction, though buckets never hold duplicate occupied ids in practice).
#[inline]
pub fn find_match(ids: &[ItemId], metas: &[u64], id: ItemId) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.1") {
            // SAFETY: SSE4.1 support was verified at runtime on this CPU,
            // which is the only precondition of `find_match_sse41`.
            return unsafe { find_match_sse41(ids, metas, id) };
        }
    }
    scan_match(ids, metas, id)
}

/// SSE4.1 find-match: two 64-bit id compares per vector op, with occupancy
/// read off the meta lane's sign bits in one movemask.
///
/// # Safety
/// The caller must ensure the CPU supports SSE4.1 (runtime-detected in
/// [`find_match`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
// SAFETY: `unsafe fn` because of #[target_feature] — the only dispatch site
// ([`find_match`]) runtime-detects SSE4.1 before calling.
unsafe fn find_match_sse41(ids: &[ItemId], metas: &[u64], id: ItemId) -> Option<usize> {
    use core::arch::x86_64::{
        __m128i, _mm_castsi128_pd, _mm_cmpeq_epi64, _mm_loadu_si128, _mm_movemask_pd,
        _mm_set1_epi64x,
    };

    debug_assert_eq!(ids.len(), metas.len());
    let n = ids.len().min(metas.len());
    // Register-only intrinsics (`_mm_set1_epi64x`, compare, movemask) are
    // safe inside this `target_feature` fn; only the raw-pointer loads below
    // need unsafe blocks.
    let needle = _mm_set1_epi64x(id as i64);
    let pairs = n / 2;
    let mut hit = usize::MAX;
    for pair in 0..pairs {
        let k = pair.saturating_mul(2);
        // SAFETY: `k + 1 < n ≤ ids.len(), metas.len()` (k ranges over full
        // pairs), so both 16-byte unaligned loads read entirely inside their
        // slices; `_mm_loadu_si128` permits any alignment.
        let (lanes, meta): (__m128i, __m128i) = unsafe {
            (
                _mm_loadu_si128(ids.as_ptr().add(k).cast()),
                _mm_loadu_si128(metas.as_ptr().add(k).cast()),
            )
        };
        let eq = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(lanes, needle)));
        // META_OCCUPIED is bit 63 of each meta word = the sign bit that
        // `_mm_movemask_pd` extracts.
        let occupied = _mm_movemask_pd(_mm_castsi128_pd(meta));
        let mask = eq & occupied;
        if mask != 0 {
            for off in 0..2usize {
                if (mask as u32) & (1u32 << off) != 0 {
                    hit = k.saturating_add(off);
                }
            }
        }
    }
    // Odd trailing slot (d is usually even; d = 1 and merge-era odd shapes
    // still must match the safe scan exactly).
    for i in pairs.saturating_mul(2)..n {
        let matched = ids.get(i).copied() == Some(id);
        let occupied = metas.get(i).copied().unwrap_or(0) & crate::cell::META_OCCUPIED != 0;
        if matched && occupied {
            hit = i;
        }
    }
    (hit != usize::MAX).then_some(hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, TableStore};

    /// Build one bucket tile's lanes via the store so meta packing matches
    /// production.
    fn lanes(cells: &[(ItemId, bool)]) -> (Vec<ItemId>, Vec<u64>) {
        let mut store = TableStore::new(cells.len(), cells.len());
        for (i, &(id, occupied)) in cells.iter().enumerate() {
            if occupied {
                store.occupy(i, id, 1, 0);
            } else {
                store.set_cell(i, Cell::from_raw(id, 0, 0, 0));
            }
        }
        let (ids, metas) = store.lanes(store.tile_base(0));
        (ids.to_vec(), metas.to_vec())
    }

    #[test]
    fn simd_matches_safe_scan_on_crafted_buckets() {
        let cases: Vec<Vec<(ItemId, bool)>> = vec![
            vec![],
            vec![(7, true)],
            vec![(7, false)],
            vec![(1, true), (7, true), (3, true), (4, true)],
            vec![(1, true), (2, true), (3, true), (7, true)],
            vec![(7, false), (7, true), (0, false), (9, true)],
            (0..8).map(|i| (i as ItemId, i % 2 == 0)).collect(),
            (0..16).map(|i| (i as ItemId * 3, true)).collect(),
            vec![(u64::MAX, true), (7, true), (u64::MAX, false)],
        ];
        for cells in &cases {
            let (ids, metas) = lanes(cells);
            for probe in [0u64, 1, 3, 7, 9, 21, 45, u64::MAX] {
                assert_eq!(
                    find_match(&ids, &metas, probe),
                    scan_match(&ids, &metas, probe),
                    "cells {cells:?} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn simd_handles_odd_lengths_and_duplicates() {
        for d in 1..=9usize {
            let cells: Vec<(ItemId, bool)> = (0..d).map(|i| (42, i != 1)).collect();
            let (ids, metas) = lanes(&cells);
            assert_eq!(
                find_match(&ids, &metas, 42),
                scan_match(&ids, &metas, 42),
                "d = {d}: duplicate-id reduction must agree"
            );
        }
    }
}
