//! Property-based corruption tests for the crash-consistency layer.
//!
//! A checkpoint image that reaches `restore_checkpoint` may have been torn
//! by a crash mid-write, hit by bit rot, or simply be garbage. The restore
//! path must uphold two properties for *any* input:
//!
//! * **never panic** — corruption is an `Err`, not a process abort;
//! * **never silently accept corruption** — a checkpoint frame that differs
//!   from what was written in even one byte must be rejected (the CRC-32 +
//!   field validation make every single-byte flip detectable), and a failed
//!   restore must leave the target table exactly as it was (all-or-nothing).
//!
//! The raw (unframed) snapshot format carries no checksum — there the
//! contract is weaker: mutations must never panic, and a rejected image
//! must leave the table untouched.

use ltc_common::{SignificanceQuery, StreamProcessor, Weights};
use ltc_core::{Ltc, LtcConfig, ShardedLtc, Variant};
use proptest::prelude::*;

fn config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(4)
        .cells_per_bucket(4)
        .records_per_period(25)
        .weights(Weights::BALANCED)
        .variant(Variant::FULL)
        .seed(11)
        .build()
}

/// A table with real state: periods completed, CLOCK mid-sweep, pending
/// flags — so its image exercises every snapshot section.
fn populated(stream: &[u64]) -> Ltc {
    let mut ltc = Ltc::new(config());
    for chunk in stream.chunks(25) {
        for &id in chunk {
            ltc.insert(id);
        }
        ltc.end_period();
    }
    // Leave a partial period in flight: mid-sweep state is the interesting
    // part of a crash image.
    for &id in stream.iter().take(7) {
        ltc.insert(id);
    }
    ltc
}

fn small_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..20, 30..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the checkpoint restore path.
    #[test]
    fn arbitrary_bytes_never_panic_restore(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let mut ltc = Ltc::new(config());
        let before = format!("{ltc:?}");
        let result = ltc.restore_checkpoint(&bytes);
        // Random bytes essentially never form a valid frame (magic +
        // version + fingerprint + CRC all have to line up); whenever they
        // do not, the table must be untouched.
        if result.is_err() {
            prop_assert_eq!(before, format!("{ltc:?}"), "failed restore mutated the table");
        }
    }

    /// Flipping any single byte of a valid checkpoint is always detected,
    /// and the rejected restore leaves the target in its prior state.
    #[test]
    fn any_single_byte_flip_is_rejected(
        stream in small_stream(),
        offset_seed in any::<usize>(),
        mask in 1u8..255,
    ) {
        let source = populated(&stream);
        let mut frame = source.to_checkpoint();
        let offset = offset_seed % frame.len();
        frame[offset] ^= mask;

        let mut target = Ltc::new(config());
        let before = format!("{target:?}");
        let result = target.restore_checkpoint(&frame);
        prop_assert!(
            result.is_err(),
            "flip at offset {offset} (mask {mask:#04x}) silently accepted"
        );
        prop_assert_eq!(before, format!("{target:?}"), "failed restore mutated the table");
    }

    /// Truncating a valid checkpoint at any point short of full length is
    /// always detected; the restore never panics and never commits.
    #[test]
    fn any_truncation_is_rejected(
        stream in small_stream(),
        keep_seed in any::<usize>(),
    ) {
        let source = populated(&stream);
        let frame = source.to_checkpoint();
        let keep = keep_seed % frame.len(); // 0..len, always short
        let torn = &frame[..keep];

        let mut target = Ltc::new(config());
        let before = format!("{target:?}");
        prop_assert!(
            target.restore_checkpoint(torn).is_err(),
            "truncation to {keep}/{} bytes silently accepted",
            frame.len()
        );
        prop_assert_eq!(before, format!("{target:?}"));
    }

    /// Appending trailing garbage to a valid checkpoint is always detected
    /// (exact-consumption parsing).
    #[test]
    fn trailing_garbage_is_rejected(
        stream in small_stream(),
        tail in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        let source = populated(&stream);
        let mut frame = source.to_checkpoint();
        frame.extend_from_slice(&tail);
        let mut target = Ltc::new(config());
        prop_assert!(target.restore_checkpoint(&frame).is_err());
    }

    /// The untampered frame round-trips — the corruption tests above are
    /// meaningful only because the valid image actually loads. Snapshots
    /// capture period-boundary state (cells, parity, period count), so the
    /// comparison is on the restorable query state, as in `properties.rs`.
    #[test]
    fn untampered_checkpoint_roundtrips(stream in small_stream()) {
        let source = populated(&stream);
        let mut target = Ltc::new(config());
        target
            .restore_checkpoint(&source.to_checkpoint())
            .expect("own checkpoint must load");
        prop_assert_eq!(source.top_k(64), target.top_k(64));
        prop_assert_eq!(source.periods_completed(), target.periods_completed());
    }

    /// The same flip property holds for the multi-section sharded frame:
    /// corruption in *any* shard's section (or the framing around it) is
    /// caught, and no shard is partially restored.
    #[test]
    fn sharded_flip_is_rejected_atomically(
        stream in small_stream(),
        shards in 1usize..5,
        offset_seed in any::<usize>(),
        mask in 1u8..255,
    ) {
        let mut source = ShardedLtc::new(config(), shards);
        for &id in &stream {
            source.insert(id);
        }
        source.end_period();
        let mut frame = source.to_checkpoint();
        let offset = offset_seed % frame.len();
        frame[offset] ^= mask;

        let mut target = ShardedLtc::new(config(), shards);
        let before = format!("{target:?}");
        prop_assert!(
            target.restore_checkpoint(&frame).is_err(),
            "flip at offset {offset} silently accepted"
        );
        prop_assert_eq!(before, format!("{target:?}"), "partial shard restore leaked");
    }

    /// Merge commutes with save/restore: folding a *restored* shard into a
    /// live shard yields exactly the table that folding the original would
    /// have — a checkpoint round-trip loses nothing a merge can observe.
    #[test]
    fn merge_commutes_with_checkpoint_restore(
        stream_a in small_stream(),
        stream_b in small_stream(),
    ) {
        let source = populated(&stream_a);
        let mut restored = Ltc::new(config());
        restored
            .restore_checkpoint(&source.to_checkpoint())
            .expect("own checkpoint must load");

        let mut direct = populated(&stream_b);
        direct.merge_from(&source).expect("same config");
        let mut via_restore = populated(&stream_b);
        via_restore.merge_from(&restored).expect("same config");

        prop_assert_eq!(
            direct.to_checkpoint(),
            via_restore.to_checkpoint(),
            "merge result diverged across a save/restore round-trip"
        );
        prop_assert_eq!(direct.top_k(64), via_restore.top_k(64));
    }

    /// The same property when the restored shard comes off a delta chain
    /// (base snapshot + cumulative delta) instead of a full checkpoint.
    #[test]
    fn merge_commutes_with_delta_restore(
        stream_a in small_stream(),
        extra in prop::collection::vec(0u64..20, 1..80),
        stream_b in small_stream(),
    ) {
        let mut source = populated(&stream_a);
        let base = source.to_snapshot();
        source.begin_delta_epoch();
        for &id in &extra {
            source.insert(id);
        }
        source.end_period();
        let delta = source.to_delta_snapshot();

        let mut restored = Ltc::new(config());
        restored.restore_snapshot(&base).expect("own snapshot must load");
        restored.apply_delta_snapshot(&delta).expect("own delta must apply");

        let mut direct = populated(&stream_b);
        direct.merge_from(&source).expect("same config");
        let mut via_restore = populated(&stream_b);
        via_restore.merge_from(&restored).expect("same config");

        prop_assert_eq!(
            direct.to_checkpoint(),
            via_restore.to_checkpoint(),
            "merge result diverged across a base+delta restore"
        );
        prop_assert_eq!(direct.top_k(64), via_restore.top_k(64));
    }

    /// Raw snapshot mutations (no CRC at this layer): restore never panics,
    /// and a rejected image leaves the table untouched. Accepted mutations
    /// are possible by design — framing-level integrity lives in the
    /// checkpoint layer, which the tests above pin.
    #[test]
    fn mutated_snapshot_never_panics(
        stream in small_stream(),
        offset_seed in any::<usize>(),
        mask in 1u8..255,
        truncate_to in any::<usize>(),
        mutate in any::<bool>(),
    ) {
        let source = populated(&stream);
        let mut snap = source.to_snapshot();
        if mutate {
            let offset = offset_seed % snap.len();
            snap[offset] ^= mask;
        } else {
            snap.truncate(truncate_to % snap.len());
        }
        let mut target = Ltc::new(config());
        let before = format!("{target:?}");
        if target.restore_snapshot(&snap).is_err() {
            prop_assert_eq!(before, format!("{target:?}"), "failed restore mutated the table");
        }
    }
}

/// Deterministic anchor for the suite: a checkpoint written by one table
/// and corrupted by a *whole-section zero-out* (the classic torn-page
/// shape) is rejected, and the target keeps answering queries from its own
/// prior state.
#[test]
fn zeroed_page_keeps_prior_state_queryable() {
    let mut source = Ltc::new(config());
    for id in 0..50u64 {
        source.insert(id % 5);
    }
    source.end_period();
    let mut frame = source.to_checkpoint();
    let mid = frame.len() / 2;
    for b in frame.iter_mut().skip(mid).take(64) {
        *b = 0;
    }

    let mut target = Ltc::new(config());
    for _ in 0..30 {
        target.insert(99);
    }
    target.end_period();
    let before_top = target.top_k(1);

    assert!(
        target.restore_checkpoint(&frame).is_err(),
        "torn page accepted"
    );
    assert_eq!(target.top_k(1), before_top, "prior state lost");
    assert_eq!(target.top_k(1)[0].id, 99);
}
