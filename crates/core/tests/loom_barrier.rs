//! Model-checks the epoch-barrier acknowledgment protocol of
//! [`ltc_core::pipeline::Progress`] — the counter+condvar pair through
//! which `ParallelLtc::end_period` waits for every shard worker.
//!
//! The property: `end_period` is a **true barrier**. No shard may observe
//! period N+1 work before every shard has acknowledged finishing period N,
//! and a worker's bump must never be missed by a waiting router (a lost
//! wakeup would strand the router forever — reported by the explorer as a
//! deadlock).
//!
//! Run with: `cargo test -p ltc-core --features loom-check --test loom_barrier`
#![cfg(feature = "loom-check")]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use ltc_core::pipeline::{BarrierPoisoned, Progress};

#[test]
fn no_shard_observes_the_next_period_before_all_acked() {
    // Two workers finish period 1 and ack via their Progress counters;
    // the router advances the period marker only after waiting on both.
    // If wait_for could return before the bump, some interleaving would
    // have a worker observe period == 2 while still inside period 1.
    let report = loom::model(|| {
        let period = Arc::new(AtomicUsize::new(1));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let progress = Arc::new(Progress::new());
                let thread = {
                    let progress = Arc::clone(&progress);
                    let period = Arc::clone(&period);
                    loom::thread::spawn(move || {
                        // ... period-1 work happens here ...
                        assert_eq!(
                            period.load(Ordering::SeqCst),
                            1,
                            "worker saw period 2 before the barrier released"
                        );
                        progress.bump();
                    })
                };
                (progress, thread)
            })
            .collect();
        for (progress, _) in &workers {
            progress.wait_for(1).expect("no worker died");
        }
        // Barrier passed: only now may the next period begin.
        period.store(2, Ordering::SeqCst);
        for (_, thread) in workers {
            thread.join().unwrap();
        }
    });
    assert!(report.complete, "bounded schedule space must be exhausted");
    assert!(
        report.interleavings >= 100,
        "expected a substantive exploration, got {} interleavings",
        report.interleavings
    );
}

#[test]
fn wait_for_never_misses_a_bump() {
    // The worker may bump before, during, or after the router starts
    // waiting; in every interleaving the router must come back. A lost
    // wakeup would leave every live thread blocked → deadlock report.
    let report = loom::model(|| {
        let progress = Arc::new(Progress::new());
        let worker = {
            let progress = Arc::clone(&progress);
            loom::thread::spawn(move || {
                progress.bump();
                progress.bump();
            })
        };
        progress.wait_for(2).expect("no worker died");
        worker.join().unwrap();
    });
    assert!(report.complete);
    assert!(report.interleavings > 1);
}

#[test]
fn barrier_exploration_is_deterministic() {
    let run = || {
        loom::model(|| {
            let progress = Arc::new(Progress::new());
            let worker = {
                let progress = Arc::clone(&progress);
                loom::thread::spawn(move || progress.bump())
            };
            progress.wait_for(1).expect("no worker died");
            worker.join().unwrap();
        })
    };
    let first = run();
    let second = run();
    assert_eq!(first.interleavings, second.interleavings);
}

#[test]
fn dead_worker_never_deadlocks_the_barrier() {
    // The fault path: a worker dies mid-epoch (bumps once, then raises the
    // dead flag on its way out). In *every* interleaving the router's wait
    // must return — `Ok` for the target the worker did reach, `Err` for
    // the target it died short of. A missed `mark_dead` wakeup would
    // strand the router and surface as a loom deadlock report.
    let report = loom::model(|| {
        let progress = Arc::new(Progress::new());
        let worker = {
            let progress = Arc::clone(&progress);
            loom::thread::spawn(move || {
                progress.bump();
                progress.mark_dead();
            })
        };
        // The bump is sequenced before the death flag, so the reached
        // target always acks...
        assert_eq!(progress.wait_for(1), Ok(()));
        // ...and the unreached one always reports the death instead of
        // blocking forever.
        assert_eq!(progress.wait_for(2), Err(BarrierPoisoned));
        worker.join().unwrap();
    });
    assert!(report.complete, "bounded schedule space must be exhausted");
    assert!(report.interleavings > 1);
}

#[test]
fn death_racing_a_parked_router_wakes_it() {
    // Worst case for the wakeup path: the router is already parked on the
    // condvar (it saw done == 0) when the worker dies without ever
    // bumping. mark_dead must take the same lock and notify, or the
    // router sleeps forever.
    let report = loom::model(|| {
        let progress = Arc::new(Progress::new());
        let worker = {
            let progress = Arc::clone(&progress);
            loom::thread::spawn(move || progress.mark_dead())
        };
        assert_eq!(progress.wait_for(1), Err(BarrierPoisoned));
        worker.join().unwrap();
    });
    assert!(report.complete);
    assert!(report.interleavings > 1);
}

#[test]
#[should_panic(expected = "deadlock")]
fn a_barrier_without_recheck_under_lock_is_caught() {
    // Regression guard for the checker itself: a barrier that checks the
    // counter in one critical section and waits in another (instead of
    // Progress's check-under-the-same-lock loop) races the worker's
    // notify. The explorer must find the interleaving where the notify
    // lands between check and wait and report the stranded router as a
    // deadlock.
    use loom::sync::{Condvar, Mutex};
    loom::model(|| {
        let state = Arc::new((Mutex::new(0u64), Condvar::new()));
        let worker = {
            let state = Arc::clone(&state);
            loom::thread::spawn(move || {
                let mut done = state.0.lock().unwrap();
                *done += 1;
                drop(done);
                state.1.notify_all();
            })
        };
        let behind = { *state.0.lock().unwrap() < 1 };
        if behind {
            let guard = state.0.lock().unwrap();
            // BUG: the ack may have landed since the check above.
            let _guard = state.1.wait(guard).unwrap();
        }
        worker.join().unwrap();
    });
}
