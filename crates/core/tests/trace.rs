//! Integration tests for span tracing: a streamed workload plus a
//! checkpoint must drain as a single causal tree (enqueue → worker
//! process → barrier-wait → checkpoint-publish) stitched across the SPSC
//! ring boundary, the Chrome trace-event rendering must validate
//! structurally, and a runtime built without tracing must record nothing.
//!
//! The failpoint module (`--features failpoints`) pins the fault story:
//! a seeded worker panic mid-period yields a `worker_fault` span
//! *parented under the batch span that died*, and the next health audit
//! raises the rollback drift flag.

use ltc_common::Weights;
use ltc_core::checkpoint::Checkpointer;
use ltc_core::obs::trace::names;
use ltc_core::obs::trace_export::single_causal_tree;
use ltc_core::obs::{render_chrome_trace, render_folded, validate_chrome_trace, RuntimeObs};
use ltc_core::{FaultPolicy, LtcConfig, ParallelLtc};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(64)
        .cells_per_bucket(4)
        .weights(Weights::BALANCED)
        .records_per_period(1_000)
        .seed(21)
        .build()
}

/// Unique scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ltc-trace-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn batch_spans_form_one_causal_tree_through_the_checkpoint() {
    let scratch = ScratchDir::new("tree");
    let mut p = ParallelLtc::new(config(), 2);
    for i in 0..2_000u64 {
        p.insert(i % 50);
    }
    p.end_period().expect("healthy runtime");
    let store = Checkpointer::new(scratch.path()).expect("checkpointer");
    p.checkpoint_to(&store).expect("checkpoint");

    let obs = p.obs().expect("obs on by default");
    let spans = obs.drain_spans();
    assert!(!spans.is_empty(), "a streamed workload must record spans");
    // The acceptance property: at least one batch's enqueue, worker-side
    // process, barrier wait and checkpoint publish share one trace with
    // exactly one root and fully-resolving parents.
    let trace_id = single_causal_tree(
        &spans,
        &[
            names::BATCH_ENQUEUE,
            names::BATCH_PROCESS,
            names::BARRIER_WAIT,
            names::CHECKPOINT_SAVE,
        ],
    )
    .expect("one batch forms a causal tree through the checkpoint");
    // The tree's root is the enqueue span (the producer side), proving the
    // context crossed the SPSC boundary rather than re-rooting per thread.
    let root = spans
        .iter()
        .find(|s| s.trace_id == trace_id && s.parent_id == 0)
        .expect("root span");
    assert_eq!(root.name, names::BATCH_ENQUEUE, "tree roots at the enqueue");
}

#[test]
fn chrome_trace_and_folded_renderings_validate() {
    let mut p = ParallelLtc::new(config(), 2);
    for i in 0..2_000u64 {
        p.insert(i % 50);
    }
    p.end_period().expect("healthy runtime");
    let obs = p.obs().expect("obs on by default");
    let tracer = obs.tracer().expect("tracing on by default");
    let spans = obs.drain_spans();
    let chrome = render_chrome_trace(&spans, &tracer.tracks());
    validate_chrome_trace(&chrome).expect("chrome trace must be structurally valid");
    let folded = render_folded(&spans);
    assert!(
        folded.lines().any(|l| l.contains("batch_process")),
        "folded stacks name the worker apply frames:\n{folded}"
    );
    // Every folded line is `stack count`.
    for line in folded.lines() {
        let (_, count) = line.rsplit_once(' ').expect("stack and count");
        count.parse::<u64>().expect("folded count is integral");
    }
}

#[test]
fn without_tracing_runtime_records_no_spans() {
    let obs = Arc::new(RuntimeObs::without_tracing());
    let mut p = ParallelLtc::with_observability(
        config(),
        2,
        64,
        FaultPolicy::default(),
        Some(Arc::clone(&obs)),
    );
    for i in 0..1_000u64 {
        p.insert(i % 50);
    }
    p.end_period().expect("healthy runtime");
    assert!(obs.tracer().is_none(), "tracing disabled");
    assert!(obs.drain_spans().is_empty(), "no spans recorded");
    // Metrics still work without the tracer.
    assert!(obs.render_prometheus().contains("ltc_periods_total 1\n"));
}

/// Seeded-fault scenarios; the failpoint registry is process-global, so
/// these run single-threaded within the module via a scenario lock.
#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use ltc_core::failpoint::{self, FailAction, FireSpec};
    use ltc_core::obs::EventKind;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    fn scenario() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = match GUARD.get_or_init(|| Mutex::new(())).lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        failpoint::clear();
        guard
    }

    #[test]
    fn seeded_panic_parents_the_fault_span_and_raises_the_drift_flag() {
        let _guard = scenario();
        let mut p = ParallelLtc::with_fault_policy(config(), 2, 8, FaultPolicy::no_backoff());
        // A clean first period establishes the audit baseline (and each
        // shard's rollback checkpoint).
        for i in 0..1_000u64 {
            p.insert(i % 50);
        }
        p.end_period().expect("healthy runtime");
        // Seed the fault: the next batch any worker applies panics; the
        // supervisor rolls the shard back and resends.
        failpoint::configure("worker::batch", FailAction::Panic, FireSpec::once());
        for i in 0..1_000u64 {
            p.insert(i % 50);
        }
        p.end_period().expect("supervision absorbed the panic");
        failpoint::clear();

        let obs = p.obs().expect("obs on by default").clone();
        let spans = obs.drain_spans();
        // The fault span is causally linked: a zero-duration worker_fault
        // event parented under the batch-process span that died, in that
        // batch's trace.
        let fault = spans
            .iter()
            .find(|s| s.name == names::WORKER_FAULT)
            .expect("fault span recorded");
        assert_ne!(fault.parent_id, 0, "fault span must have a parent");
        let parent = spans
            .iter()
            .find(|s| s.span_id == fault.parent_id)
            .expect("fault parent span present in the drain");
        assert_eq!(
            parent.name,
            names::BATCH_PROCESS,
            "fault parents under the batch span that died"
        );
        assert_eq!(fault.trace_id, parent.trace_id, "same causal tree");

        // The second period's health report flags the induced rollback
        // (drift bit 1).
        let events = obs.journal().drain();
        let reports: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::HealthReport)
            .map(|e| e.detail)
            .collect();
        assert_eq!(reports.len(), 2, "one report per period: {events:?}");
        assert_eq!(
            reports[1] & 1,
            1,
            "rollback drift flag fires on the faulted period: {reports:?}"
        );
        p.finish().expect("healthy after recovery");
    }
}
