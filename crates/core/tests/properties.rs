//! Property-based tests for the LTC core invariants.
//!
//! These pin the paper's formal claims on randomly generated streams:
//!
//! * **Theorem IV.1 (no overestimation)** — for the basic variant with the
//!   Deviation Eliminator, the estimated significance never exceeds the real
//!   significance, under any weights and stream.
//! * **CLOCK exactness** — every period's sweep scans each cell exactly once
//!   (persistency grows by at most 1 per period, even with repeats).
//! * **Lemma IV.1** — an item that always had a private cell (never the
//!   smallest, bucket not full at first arrival) is estimated exactly.

use ltc_common::{SignificanceQuery, Weights};
use ltc_core::{Ltc, LtcConfig, Variant};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Ground truth for a count-driven stream split into fixed-size periods.
fn truth(stream: &[u64], per_period: usize) -> HashMap<u64, (u64, u64)> {
    let mut freq: HashMap<u64, u64> = HashMap::new();
    let mut pers: HashMap<u64, u64> = HashMap::new();
    for chunk in stream.chunks(per_period) {
        let mut seen = HashSet::new();
        for &id in chunk {
            *freq.entry(id).or_insert(0) += 1;
            if seen.insert(id) {
                *pers.entry(id).or_insert(0) += 1;
            }
        }
    }
    freq.into_iter()
        .map(|(id, f)| (id, (f, pers[&id])))
        .collect()
}

/// Run an LTC over the stream, closing periods every `per_period` records.
fn run(stream: &[u64], per_period: usize, weights: Weights, variant: Variant, w: usize) -> Ltc {
    let mut ltc = Ltc::new(
        LtcConfig::builder()
            .buckets(w)
            .cells_per_bucket(4)
            .records_per_period(per_period as u64)
            .weights(weights)
            .variant(variant)
            .seed(42)
            .build(),
    );
    for chunk in stream.chunks(per_period) {
        for &id in chunk {
            ltc.insert(id);
        }
        ltc.end_period();
    }
    ltc.finalize();
    ltc
}

fn small_stream() -> impl Strategy<Value = Vec<u64>> {
    // Skewed universe: ids 0..20 with heavy repetition, stream of 50..400.
    prop::collection::vec(0u64..20, 50..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem IV.1: basic+DE never overestimates significance.
    #[test]
    fn no_overestimation_basic_de(
        stream in small_stream(),
        per_period in 10usize..60,
        alpha in 0u32..3,
        beta in 0u32..3,
    ) {
        prop_assume!(alpha + beta > 0);
        let weights = Weights::new(f64::from(alpha), f64::from(beta));
        let ltc = run(&stream, per_period, weights, Variant::DEVIATION_ONLY, 4);
        let real = truth(&stream, per_period);
        for (&id, &(f, p)) in &real {
            if let Some(est) = ltc.estimate(id) {
                let s = weights.significance(f, p);
                prop_assert!(
                    est <= s + 1e-9,
                    "id {id}: estimated {est} > real {s} (f={f}, p={p})"
                );
            }
        }
    }

    /// Persistency can never exceed the number of periods, in any variant.
    #[test]
    fn persistency_bounded_by_periods(
        stream in small_stream(),
        per_period in 10usize..60,
        de in any::<bool>(),
        ltr in any::<bool>(),
    ) {
        let variant = Variant { deviation_eliminator: de, long_tail_replacement: ltr };
        let ltc = run(&stream, per_period, Weights::PERSISTENT, variant, 4);
        let periods = stream.chunks(per_period).count() as u64;
        // DE harvests exactly once per period; the basic variant's phase
        // deviation can credit one extra period (Figure 4), never more.
        let bound = if de { periods } else { periods + 1 };
        for (id, p) in ltc
            .cells()
            .filter(|c| c.occupied())
            .map(|c| (c.id, u64::from(c.persist)))
        {
            prop_assert!(
                p <= bound,
                "id {id}: persistency {p} > bound {bound} ({periods} periods, de={de})"
            );
        }
    }

    /// DE persistency is never overestimated even for items that appear many
    /// times per period (the CLOCK's "at most +1 per period" contract).
    #[test]
    fn de_persistency_never_overestimates(
        stream in small_stream(),
        per_period in 10usize..60,
    ) {
        let ltc = run(&stream, per_period, Weights::PERSISTENT, Variant::DEVIATION_ONLY, 4);
        let real = truth(&stream, per_period);
        for (&id, &(_, p)) in &real {
            if let Some(est) = ltc.persistency_of(id) {
                prop_assert!(est <= p, "id {id}: persistency {est} > real {p}");
            }
        }
    }

    /// Lemma IV.1: a collision-free item is estimated exactly. We force the
    /// condition with a table so large that every item gets its own bucket
    /// region with overwhelming probability, then verify exactness.
    #[test]
    fn uncontended_items_exact(
        stream in prop::collection::vec(0u64..8, 40..200),
        per_period in 10usize..40,
    ) {
        // 512 buckets for ≤ 8 distinct ids: bucket collisions are possible
        // but each bucket holds 4 cells, so no bucket ever fills.
        let weights = Weights::BALANCED;
        let ltc = run(&stream, per_period, weights, Variant::FULL, 512);
        let real = truth(&stream, per_period);
        for (&id, &(f, p)) in &real {
            let est = ltc.estimate(id);
            prop_assert_eq!(
                est,
                Some(weights.significance(f, p)),
                "id {} (f={}, p={})", id, f, p
            );
        }
    }

    /// The reported top-k is always sorted descending and contains no
    /// duplicates.
    #[test]
    fn top_k_sorted_unique(
        stream in small_stream(),
        per_period in 10usize..60,
        k in 1usize..12,
    ) {
        let ltc = run(&stream, per_period, Weights::BALANCED, Variant::FULL, 4);
        let top = ltc.top_k(k);
        prop_assert!(top.len() <= k);
        let mut ids = HashSet::new();
        for pair in top.windows(2) {
            prop_assert!(pair[0].value >= pair[1].value);
        }
        for e in &top {
            prop_assert!(ids.insert(e.id), "duplicate id {}", e.id);
        }
    }

    /// Frequency estimates in basic variants never exceed the true count
    /// even under heavy eviction churn (tiny table).
    #[test]
    fn frequency_no_overestimate_under_churn(
        stream in prop::collection::vec(0u64..50, 100..500),
    ) {
        let weights = Weights::FREQUENT;
        let ltc = run(&stream, 50, weights, Variant::BASIC, 2);
        let real = truth(&stream, 50);
        for (&id, &(f, _)) in &real {
            if let Some(est) = ltc.frequency_of(id) {
                prop_assert!(est <= f, "id {id}: {est} > {f}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot fuzz: arbitrary bytes never panic the restore path — they
    /// either load (only if they are a structurally valid snapshot) or
    /// return an error.
    #[test]
    fn snapshot_restore_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut ltc = Ltc::new(
            LtcConfig::builder()
                .buckets(4)
                .cells_per_bucket(4)
                .records_per_period(10)
                .build(),
        );
        let _ = ltc.restore_snapshot(&bytes);
    }

    /// Snapshot round-trip: any stream state survives save/restore exactly,
    /// including pending CLOCK flags (verified by continuing the stream on
    /// both copies and comparing).
    #[test]
    fn snapshot_roundtrip_mid_stream(
        stream in small_stream(),
        per_period in 10usize..60,
        continuation in prop::collection::vec(0u64..20, 0..100),
    ) {
        let mut a = run(&stream, per_period, Weights::BALANCED, Variant::FULL, 4);
        let snap = a.to_snapshot();
        let mut b = Ltc::new(*a.config());
        b.restore_snapshot(&snap).expect("own snapshot must load");
        for &id in &continuation {
            a.insert(id);
            b.insert(id);
        }
        a.end_period();
        b.end_period();
        a.finalize();
        b.finalize();
        prop_assert_eq!(a.top_k(20), b.top_k(20));
    }

    /// Merged tables never lose combined mass for items that survive in the
    /// merged table: f̂ ≤ f_a + f_b (no invention of counts).
    #[test]
    fn merge_never_invents_counts(
        stream_a in small_stream(),
        stream_b in small_stream(),
        per_period in 10usize..60,
    ) {
        let mut a = run(&stream_a, per_period, Weights::BALANCED, Variant::DEVIATION_ONLY, 4);
        let b = run(&stream_b, per_period, Weights::BALANCED, Variant::DEVIATION_ONLY, 4);
        let real_a = truth(&stream_a, per_period);
        let real_b = truth(&stream_b, per_period);
        a.merge_from(&b).expect("same config merges");
        for (id, f) in a
            .cells()
            .filter(|c| c.occupied())
            .map(|c| (c.id, u64::from(c.freq)))
        {
            let fa = real_a.get(&id).map_or(0, |&(f, _)| f);
            let fb = real_b.get(&id).map_or(0, |&(f, _)| f);
            // Both inputs were DE-variant (no overestimation), so the sum
            // bound carries to the merge.
            prop_assert!(f <= fa + fb, "id {id}: merged {f} > {fa}+{fb}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// WindowedLtc: windowed persistency never exceeds the window length
    /// nor the number of periods seen, for any stream shape.
    #[test]
    fn windowed_persistency_bounded(
        stream in small_stream(),
        per_period in 5usize..40,
        window in 1u32..16,
    ) {
        use ltc_core::WindowedLtc;
        let mut t = WindowedLtc::new(8, 4, Weights::new(0.0, 1.0), window, 3);
        let mut periods = 0u64;
        for chunk in stream.chunks(per_period) {
            for &id in chunk {
                t.insert(id);
            }
            t.end_period();
            periods += 1;
        }
        for id in 0..20u64 {
            if let Some(p) = t.persistency_of(id) {
                prop_assert!(p <= u64::from(window), "p {p} > window {window}");
                prop_assert!(p <= periods + 1, "p {p} > periods {periods}+1");
            }
        }
    }

    /// WindowedLtc: an item absent for a full window disappears entirely.
    #[test]
    fn windowed_absence_expires(
        window in 1u32..12,
        idle_periods in 0u32..24,
    ) {
        use ltc_core::WindowedLtc;
        let mut t = WindowedLtc::new(8, 4, Weights::new(1.0, 1.0), window, 3);
        for _ in 0..3 {
            t.insert(7);
            t.end_period();
        }
        for _ in 0..idle_periods {
            t.end_period();
        }
        if idle_periods >= window + 4 {
            // Presence slid out and the aged frequency decayed below one.
            prop_assert_eq!(t.persistency_of(7), None, "should have aged out");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Time-driven insertion path: with non-decreasing random timestamps the
    /// DE variant still never overestimates and persistency stays within the
    /// period count, mirroring the count-driven guarantees.
    #[test]
    fn time_driven_no_overestimation(
        events in prop::collection::vec((0u64..20, 0u64..50), 20..300),
        period_len in 50u64..300,
    ) {
        // Sort event gaps into a non-decreasing timeline.
        let mut t = 0u64;
        let timeline: Vec<(u64, u64)> = events
            .iter()
            .map(|&(id, gap)| {
                t += gap;
                (id, t)
            })
            .collect();
        let total_span = t;
        let mut ltc = Ltc::new(
            LtcConfig::builder()
                .buckets(4)
                .cells_per_bucket(4)
                .time_units_per_period(period_len)
                .weights(Weights::BALANCED)
                .variant(Variant::DEVIATION_ONLY)
                .seed(21)
                .build(),
        );
        // Ground truth: frequency + distinct time-periods per id.
        let mut freq: HashMap<u64, u64> = HashMap::new();
        let mut pers: HashMap<u64, HashSet<u64>> = HashMap::new();
        for &(id, at) in &timeline {
            ltc.insert_at(id, at);
            *freq.entry(id).or_insert(0) += 1;
            pers.entry(id).or_default().insert(at / period_len);
        }
        ltc.end_period();
        ltc.finalize();
        let periods_spanned = total_span / period_len + 1;
        prop_assert!(ltc.periods_completed() >= periods_spanned);
        for (&id, &f) in &freq {
            if let Some(est) = ltc.estimate(id) {
                let real = Weights::BALANCED.significance(f, pers[&id].len() as u64);
                prop_assert!(est <= real + 1e-9, "id {id}: {est} > {real}");
            }
        }
    }
}

/// Split `stream` into consecutive chunks whose lengths cycle through
/// `sizes` (the tail chunk may be shorter). Drives the batch-equivalence
/// tests below with arbitrary batch boundaries.
fn chunks_by_sizes<'a, T>(stream: &'a [T], sizes: &'a [usize]) -> Vec<&'a [T]> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while start < stream.len() {
        let len = sizes[i % sizes.len()].min(stream.len() - start);
        out.push(&stream[start..start + len]);
        start += len;
        i += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `insert_batch` is bit-identical to the scalar `insert` loop for any
    /// stream, any batch split, any variant, with period boundaries mixed
    /// in. The comparison is on the full `Debug` rendering, which covers
    /// every field: cells, CLOCK pointer state (position, accumulator,
    /// sweep progress), parity, period counters and statistics.
    #[test]
    fn batch_insert_matches_scalar_count_driven(
        stream in prop::collection::vec(0u64..30, 1..500),
        sizes in prop::collection::vec(1usize..40, 1..12),
        per_period in 10u64..60,
        de in any::<bool>(),
        ltr in any::<bool>(),
        boundary_every in 1usize..5,
    ) {
        let cfg = LtcConfig::builder()
            .buckets(4)
            .cells_per_bucket(4)
            .records_per_period(per_period)
            .weights(Weights::BALANCED)
            .variant(Variant { deviation_eliminator: de, long_tail_replacement: ltr })
            .seed(42)
            .build();
        let mut scalar = Ltc::new(cfg);
        let mut batched = Ltc::new(cfg);
        for (i, chunk) in chunks_by_sizes(&stream, &sizes).into_iter().enumerate() {
            for &id in chunk {
                scalar.insert(id);
            }
            batched.insert_batch(chunk);
            if (i + 1) % boundary_every == 0 {
                scalar.end_period();
                batched.end_period();
            }
            prop_assert_eq!(
                format!("{scalar:?}"),
                format!("{batched:?}"),
                "diverged after chunk {}", i
            );
        }
        scalar.finalize();
        batched.finalize();
        prop_assert_eq!(format!("{scalar:?}"), format!("{batched:?}"));
    }

    /// `insert_batch_at` is bit-identical to the scalar `insert_at` loop
    /// for any timestamped stream and any batch split, including batches
    /// that straddle (or skip whole) period boundaries.
    #[test]
    fn batch_insert_matches_scalar_time_driven(
        events in prop::collection::vec((0u64..30, 0u64..80), 1..400),
        sizes in prop::collection::vec(1usize..40, 1..12),
        period_len in 50u64..300,
        de in any::<bool>(),
        ltr in any::<bool>(),
    ) {
        let mut t = 0u64;
        let timeline: Vec<(u64, u64)> = events
            .iter()
            .map(|&(id, gap)| {
                t += gap;
                (id, t)
            })
            .collect();
        let cfg = LtcConfig::builder()
            .buckets(4)
            .cells_per_bucket(4)
            .time_units_per_period(period_len)
            .weights(Weights::BALANCED)
            .variant(Variant { deviation_eliminator: de, long_tail_replacement: ltr })
            .seed(42)
            .build();
        let mut scalar = Ltc::new(cfg);
        let mut batched = Ltc::new(cfg);
        for (i, chunk) in chunks_by_sizes(&timeline, &sizes).into_iter().enumerate() {
            for &(id, at) in chunk {
                scalar.insert_at(id, at);
            }
            batched.insert_batch_at(chunk);
            prop_assert_eq!(
                format!("{scalar:?}"),
                format!("{batched:?}"),
                "diverged after chunk {}", i
            );
        }
        scalar.end_period();
        batched.end_period();
        scalar.finalize();
        batched.finalize();
        prop_assert_eq!(format!("{scalar:?}"), format!("{batched:?}"));
    }

    /// Sharded routing commutes with batching: feeding a `ShardedLtc`
    /// record-by-record and batch-by-batch produces identical shard states.
    #[test]
    fn sharded_batch_matches_scalar(
        stream in prop::collection::vec(0u64..200, 1..400),
        sizes in prop::collection::vec(1usize..50, 1..8),
        shards in 1usize..6,
    ) {
        use ltc_core::ShardedLtc;
        use ltc_common::StreamProcessor;
        let cfg = LtcConfig::builder()
            .buckets(8)
            .cells_per_bucket(4)
            .records_per_period(50)
            .weights(Weights::BALANCED)
            .variant(Variant::FULL)
            .seed(7)
            .build();
        let mut scalar = ShardedLtc::new(cfg, shards);
        let mut batched = ShardedLtc::new(cfg, shards);
        for chunk in chunks_by_sizes(&stream, &sizes) {
            for &id in chunk {
                scalar.insert(id);
            }
            batched.insert_batch(chunk);
        }
        scalar.end_period();
        batched.end_period();
        prop_assert_eq!(format!("{scalar:?}"), format!("{batched:?}"));
    }
}

/// Deterministic regression: the Figure-4 deviation scenario. An item whose
/// cell is scanned mid-period, appearing around the scan, gets double-counted
/// by the basic variant but counted once by the Deviation Eliminator.
#[test]
fn deviation_scenario_fig4() {
    // 1 bucket × 4 cells, 4 records per period → pointer advances one cell
    // per record. Put item X in the last cell of the table so the pointer
    // scans it at the end of each period's sweep.
    let build = |variant| {
        Ltc::new(
            LtcConfig::builder()
                .buckets(1)
                .cells_per_bucket(4)
                .records_per_period(4)
                .weights(Weights::PERSISTENT)
                .variant(variant)
                .seed(0)
                .build(),
        )
    };
    for variant in [Variant::BASIC, Variant::DEVIATION_ONLY] {
        let mut ltc = build(variant);
        // Period 1: item 1 appears as the first and the last record; the
        // pointer passes its cell in between (after record 1..3).
        ltc.insert(1);
        ltc.insert(2);
        ltc.insert(3);
        ltc.insert(1);
        ltc.end_period();
        // Period 2: item 1 absent.
        for _ in 0..4 {
            ltc.insert(4);
        }
        ltc.end_period();
        ltc.finalize();
        let p = ltc.persistency_of(1).unwrap();
        if variant.deviation_eliminator {
            assert_eq!(p, 1, "DE counts the period once");
        } else {
            assert!(p >= 1, "basic may double-count, never undercount to 0");
        }
    }
}
