//! Differential suite pinning the struct-of-arrays table ([`ltc_core::Ltc`])
//! bit-exact against the retained array-of-structs reference
//! ([`ltc_core::reference::ReferenceLtc`]).
//!
//! The SoA refactor rewired every hot probe (find-match, find-empty,
//! find-min-significance) and the CLOCK harvest; these properties are the
//! proof that none of that changed a single observable bit: identical
//! streams must yield identical top-k, estimates, per-item counters, and
//! byte-identical `LTC1` snapshots — mid-period (pending flags in the lane)
//! as well as at period boundaries. Built with `--features simd`, the same
//! properties pin the `core::arch` scan too.

use ltc_common::Weights;
use ltc_core::reference::ReferenceLtc;
use ltc_core::{Ltc, LtcConfig, Variant};
use proptest::prelude::*;

fn config(w: usize, d: usize, n: u64, variant: Variant, seed: u64) -> LtcConfig {
    LtcConfig::builder()
        .buckets(w)
        .cells_per_bucket(d)
        .records_per_period(n)
        .weights(Weights::BALANCED)
        .variant(variant)
        .seed(seed)
        .build()
}

fn variant_strategy() -> impl Strategy<Value = Variant> {
    (any::<bool>(), any::<bool>()).prop_map(|(de, ltr)| Variant {
        deviation_eliminator: de,
        long_tail_replacement: ltr,
    })
}

/// Split `stream` into chunks of the given sizes, cycling through `sizes`.
fn chunks_by_sizes<'a>(stream: &'a [u64], sizes: &'a [usize]) -> Vec<&'a [u64]> {
    let mut out = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < stream.len() {
        let take = sizes[i % sizes.len()].min(stream.len() - at);
        out.push(&stream[at..at + take]);
        at += take;
        i += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar inserts: every query surface and the snapshot bytes agree,
    /// both mid-period (pending flags) and after end_period + finalize.
    #[test]
    fn scalar_inserts_are_bit_exact(
        stream in prop::collection::vec(0u64..300, 1..500),
        variant in variant_strategy(),
        d in 1usize..9,
        seed in 0u64..32,
    ) {
        // Small tables force heavy collisions: every case-3 path runs.
        let cfg = config(8, d, 40, variant, seed);
        let mut soa = Ltc::new(cfg);
        let mut aos = ReferenceLtc::new(cfg);
        for (k, &id) in stream.iter().enumerate() {
            soa.insert(id);
            aos.insert(id);
            if k % 40 == 39 {
                soa.end_period();
                aos.end_period();
            }
        }
        // Mid-period: flag lanes still carry unharvested appearance bits.
        prop_assert_eq!(soa.to_snapshot(), aos.to_snapshot(), "mid-period snapshot");
        for &id in &stream {
            prop_assert_eq!(soa.frequency_of(id), aos.frequency_of(id));
            prop_assert_eq!(soa.persistency_of(id), aos.persistency_of(id));
        }
        soa.end_period();
        aos.end_period();
        soa.finalize();
        aos.finalize();
        prop_assert_eq!(soa.to_snapshot(), aos.to_snapshot(), "final snapshot");
        use ltc_common::SignificanceQuery;
        prop_assert_eq!(soa.top_k(16), aos.top_k(16));
        for &id in &stream {
            prop_assert_eq!(soa.estimate(id), aos.estimate(id));
        }
    }

    /// The batched path of both layouts agrees with the SoA scalar path:
    /// `insert_batch` must stay bit-identical to one-by-one insertion no
    /// matter how the stream is chunked.
    #[test]
    fn batched_inserts_are_bit_exact(
        stream in prop::collection::vec(0u64..200, 1..400),
        sizes in prop::collection::vec(1usize..60, 1..6),
        variant in variant_strategy(),
    ) {
        let cfg = config(8, 4, 50, variant, 7);
        let mut soa_scalar = Ltc::new(cfg);
        let mut soa_batch = Ltc::new(cfg);
        let mut aos_batch = ReferenceLtc::new(cfg);
        for chunk in chunks_by_sizes(&stream, &sizes) {
            for &id in chunk {
                soa_scalar.insert(id);
            }
            soa_batch.insert_batch(chunk);
            aos_batch.insert_batch(chunk);
        }
        prop_assert_eq!(soa_scalar.to_snapshot(), soa_batch.to_snapshot());
        prop_assert_eq!(soa_batch.to_snapshot(), aos_batch.to_snapshot());
    }

    /// Time-driven insertion agrees across layouts, including automatic
    /// period rollover and skipped periods.
    #[test]
    fn time_driven_is_bit_exact(
        gaps in prop::collection::vec(0u64..40, 1..200),
        variant in variant_strategy(),
    ) {
        let cfg = LtcConfig::builder()
            .buckets(8)
            .cells_per_bucket(4)
            .time_units_per_period(25)
            .weights(Weights::BALANCED)
            .variant(variant)
            .seed(11)
            .build();
        let mut soa = Ltc::new(cfg);
        let mut aos = ReferenceLtc::new(cfg);
        let mut t = 0u64;
        for (k, &gap) in gaps.iter().enumerate() {
            t += gap;
            let id = (k as u64 * 13) % 50;
            soa.insert_at(id, t);
            aos.insert_at(id, t);
        }
        soa.end_period();
        aos.end_period();
        soa.finalize();
        aos.finalize();
        prop_assert_eq!(soa.periods_completed(), aos.periods_completed());
        prop_assert_eq!(soa.to_snapshot(), aos.to_snapshot());
    }

    /// Snapshot round-trip identity for the SoA table. Mid-period snapshots
    /// (flag lanes carrying pending appearance bits) must survive
    /// save → restore → re-save byte-for-byte. Lockstep continuation is
    /// asserted from a *period boundary* — the `LTC1` format deliberately
    /// omits the CLOCK hand, which is only at a known position (slot 0)
    /// when a period has just finished.
    #[test]
    fn snapshot_roundtrip_is_identity(
        stream in prop::collection::vec(0u64..150, 1..300),
        tail in prop::collection::vec(0u64..150, 0..80),
        variant in variant_strategy(),
    ) {
        let cfg = config(8, 4, 50, variant, 5);
        let mut original = Ltc::new(cfg);
        for &id in &stream {
            original.insert(id);
        }
        // Mid-period by construction unless len % 50 == 0: re-save identity
        // proves the flag lane round-trips even with pending bits.
        let mid = original.to_snapshot();
        let mut restored_mid = Ltc::new(cfg);
        restored_mid.restore_snapshot(&mid).unwrap();
        prop_assert_eq!(restored_mid.to_snapshot(), mid, "restore then re-save is identity");
        // Boundary snapshot: the CLOCK hand is back at slot 0, so a restored
        // table's future agrees with the original's record for record.
        original.end_period();
        let snap = original.to_snapshot();
        let mut restored = Ltc::new(cfg);
        restored.restore_snapshot(&snap).unwrap();
        for &id in &tail {
            original.insert(id);
            restored.insert(id);
        }
        original.end_period();
        restored.end_period();
        original.finalize();
        restored.finalize();
        prop_assert_eq!(original.to_snapshot(), restored.to_snapshot());
    }
}
