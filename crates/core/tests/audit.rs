//! Integration tests for the algorithm-health self-audit: every
//! `end_period` must publish one `HealthReport` journal event and refresh
//! the `ltc_audit_*` gauges (occupancy, in-bucket significance floor and
//! median, eviction/decay counts, the paper's error bound, drift flags).

use ltc_common::Weights;
use ltc_core::obs::EventKind;
use ltc_core::{LtcConfig, ParallelLtc, Variant};

fn config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(64)
        .cells_per_bucket(4)
        .weights(Weights::BALANCED)
        .records_per_period(1_000)
        .seed(21)
        .build()
}

/// Skewed workload: heavy hitters over a long tail of one-off ids, enough
/// volume to fill buckets and trigger evictions.
fn stream(p: &mut ParallelLtc, periods: u64) {
    let mut tail = 1_000_000u64;
    for _ in 0..periods {
        for i in 0..4_000u64 {
            let id = if i % 4 == 0 {
                i % 32
            } else {
                tail = tail.wrapping_add(1);
                tail
            };
            p.insert(id);
        }
        p.end_period().expect("healthy runtime");
    }
}

#[test]
fn health_report_journaled_once_per_period() {
    let mut p = ParallelLtc::new(config(), 2);
    stream(&mut p, 3);
    let obs = p.obs().expect("obs on by default");
    let reports: Vec<_> = obs
        .journal()
        .drain()
        .into_iter()
        .filter(|e| e.kind == EventKind::HealthReport)
        .collect();
    assert_eq!(reports.len(), 3, "one report per end_period");
    // A healthy run raises no drift flags — including the first report,
    // which has no baseline to drift from.
    for report in &reports {
        assert_eq!(report.detail, 0, "no drift on a healthy run: {report:?}");
    }
}

/// Parse the value of a single-sample gauge out of the text exposition.
fn gauge(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("gauge {name} missing from exposition:\n{text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("gauge {name} must be integral"))
}

#[test]
fn audit_gauges_reflect_a_heavy_stream() {
    let mut p = ParallelLtc::new(config(), 2);
    stream(&mut p, 3);
    let obs = p.obs().expect("obs on by default");
    let text = obs.render_prometheus();

    // The long tail saturates the 64x4 tables: occupancy is substantial and
    // evictions have happened, so the significance floor is meaningful.
    assert!(
        gauge(&text, "ltc_audit_occupancy_ppm") > 500_000,
        "table over half full"
    );
    assert!(
        gauge(&text, "ltc_audit_occupancy_ppm") <= 1_000_000,
        "ppm bounded"
    );
    assert!(
        gauge(&text, "ltc_audit_evictions") > 0,
        "long tail forces evictions"
    );
    assert!(
        gauge(&text, "ltc_audit_median_significance_milli")
            >= gauge(&text, "ltc_audit_min_significance_milli"),
        "median dominates the floor"
    );
    assert_eq!(
        gauge(&text, "ltc_audit_drift_flags"),
        0,
        "healthy run: no drift"
    );
}

#[test]
fn decay_pressure_feeds_the_error_bound() {
    // Under FULL, a contested tail cell wears to zero in one decrement and
    // counts as an eviction, so the decrement mass — and with it the error
    // bound — stays zero. BASIC grinds resident frequencies down gradually,
    // which is exactly the underestimation the paper's bound charges for.
    let config = LtcConfig::builder()
        .buckets(8)
        .cells_per_bucket(4)
        .weights(Weights::BALANCED)
        .records_per_period(1_000)
        .variant(Variant::BASIC)
        .seed(21)
        .build();
    let mut p = ParallelLtc::new(config, 2);
    // Warm residents up to freq ~8, then hammer with distinct misses: each
    // contested miss decrements a bucket minimum that stays above zero.
    for _ in 0..8 {
        for id in 0..64u64 {
            p.insert(id);
        }
    }
    for id in 1_000..1_400u64 {
        p.insert(id);
    }
    p.end_period().expect("healthy runtime");
    let obs = p.obs().expect("obs on by default");
    let text = obs.render_prometheus();
    assert!(
        gauge(&text, "ltc_audit_decays") > 0,
        "contested misses decay residents"
    );
    assert!(
        gauge(&text, "ltc_audit_error_bound_milli") > 0,
        "paper bound rises with decrement mass"
    );
}

#[test]
fn occupancy_jump_raises_the_drift_flag() {
    let mut p = ParallelLtc::new(config(), 2);
    // Near-empty first period: a handful of ids barely touch the table.
    for i in 0..8u64 {
        p.insert(i);
    }
    p.end_period().expect("healthy runtime");
    // Then a flood: occupancy jumps far past the 10-percentage-point
    // threshold between consecutive audits.
    stream(&mut p, 1);
    let obs = p.obs().expect("obs on by default");
    let reports: Vec<u64> = obs
        .journal()
        .drain()
        .into_iter()
        .filter(|e| e.kind == EventKind::HealthReport)
        .map(|e| e.detail)
        .collect();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0], 0, "no baseline yet, no drift");
    assert_eq!(
        reports[1] & 2,
        2,
        "occupancy-jump drift bit fires on the flood: {reports:?}"
    );
}
