//! Integration tests for the observability layer: the Prometheus text
//! exposition the runtime emits is valid and complete, label escaping
//! survives the full render path, histogram buckets stay cumulative, the
//! JSON document round-trips through a real parser, the journal's
//! drop-newest semantics hold under overflow, and instrumentation stays
//! within its measured-overhead budget.

use ltc_common::Weights;
use ltc_core::obs::{
    labels, render_events_json, validate_exposition, EventJournal, EventKind, MetricsRegistry,
    RuntimeObs,
};
use ltc_core::{FaultPolicy, LtcConfig, ParallelLtc};
use serde::Value;
use std::sync::Arc;

fn config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(64)
        .cells_per_bucket(4)
        .weights(Weights::BALANCED)
        .records_per_period(1_000)
        .seed(21)
        .build()
}

/// Drive a runtime through enough traffic that every default metric family
/// has nonzero data, then hand it back alongside its exposition text.
fn exercised_runtime() -> (ParallelLtc, String) {
    let mut p = ParallelLtc::new(config(), 2);
    for i in 0..2_000u64 {
        p.insert(i % 50);
    }
    p.end_period().expect("healthy runtime");
    p.sync().expect("healthy runtime");
    let text = p.obs().expect("obs on by default").render_prometheus();
    (p, text)
}

// ---------------------------------------------------------------------------
// Prometheus exposition validity and completeness.

#[test]
fn runtime_exposition_is_valid_and_complete() {
    let (_p, text) = exercised_runtime();
    validate_exposition(&text).expect("runtime exposition must be well-formed");
    for family in [
        "ltc_shard_queue_depth",
        "ltc_shard_queue_stalls_total",
        "ltc_shard_batches_total",
        "ltc_shard_records_total",
        "ltc_shard_batch_insert_ns",
        "ltc_shard_records_lost_total",
        "ltc_worker_restarts_total",
        "ltc_worker_degradations_total",
        "ltc_periods_total",
        "ltc_barrier_wait_ns",
        "ltc_checkpoint_save_ns",
        "ltc_checkpoint_restore_ns",
        "ltc_checkpoint_publishes_total",
        "ltc_checkpoint_fallbacks_total",
        "ltc_journal_dropped_events",
        "ltc_trace_dropped_spans",
        "ltc_trace_queued_spans",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "family {family} missing from exposition:\n{text}"
        );
    }
    // Both shards report, and the record counters account for the stream.
    assert!(text.contains("ltc_shard_records_total{shard=\"0\"}"));
    assert!(text.contains("ltc_shard_records_total{shard=\"1\"}"));
    assert!(text.contains("ltc_periods_total 1\n"));
}

#[test]
fn journal_overflow_and_queue_depth_are_exported() {
    use ltc_core::obs::DEFAULT_JOURNAL_CAPACITY;
    let obs = RuntimeObs::new();
    // Overflow the journal: drop-newest refuses the excess and the render
    // path surfaces the loss as a gauge.
    let excess = 17u64;
    for i in 0..(DEFAULT_JOURNAL_CAPACITY as u64 + excess) {
        obs.journal().publish(EventKind::PeriodRollover, None, i);
    }
    let text = obs.render_prometheus();
    validate_exposition(&text).expect("overflowed journal still renders validly");
    assert!(
        text.contains(&format!("ltc_journal_dropped_events {excess}\n")),
        "journal drop count must be exported:\n{text}"
    );
    // The per-shard ring queue-depth gauge rides the same exposition.
    let (_p, runtime_text) = exercised_runtime();
    validate_exposition(&runtime_text).expect("runtime exposition stays valid");
    assert!(
        runtime_text.contains("ltc_shard_queue_depth{shard=\"0\"}"),
        "queue depth gauge must be exported per shard:\n{runtime_text}"
    );
    // JSON rendering carries the same gauge families.
    let json = obs.render_json();
    assert!(json.contains("ltc_journal_dropped_events"));
    assert!(json.contains("ltc_trace_dropped_spans"));
}

#[test]
fn shard_record_counters_sum_to_the_stream() {
    let (_p, text) = exercised_runtime();
    let total: u64 = text
        .lines()
        .filter(|l| l.starts_with("ltc_shard_records_total{"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
        .sum();
    assert_eq!(total, 2_000, "every routed record is counted:\n{text}");
}

#[test]
fn label_escaping_survives_the_full_render_path() {
    let reg = MetricsRegistry::new();
    reg.counter(
        "ltc_test_total",
        "Help with \\ backslash and\nnewline.",
        labels([("path", "C:\\logs\n\"prod\""), ("plain", "ok")]),
    )
    .inc();
    let text = ltc_core::obs::render_prometheus(&reg);
    validate_exposition(&text).expect("escaped labels must stay parseable");
    assert!(
        text.contains(r#"path="C:\\logs\n\"prod\"""#),
        "label escaping: {text}"
    );
    assert!(
        text.contains("# HELP ltc_test_total Help with \\\\ backslash and\\nnewline."),
        "help escaping: {text}"
    );
}

#[test]
fn histogram_buckets_are_cumulative_and_terminated() {
    let (_p, text) = exercised_runtime();
    // Check every histogram series in the real exposition: bucket counts
    // never decrease and the +Inf bucket equals _count. (validate_exposition
    // asserts this too — this is the independent re-derivation.)
    let mut last: Option<(String, u64)> = None;
    for line in text.lines() {
        let Some((name_part, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if !name_part.contains("_bucket{") {
            last = None;
            continue;
        }
        let series: String = name_part
            .split("le=\"")
            .next()
            .unwrap_or_default()
            .to_string();
        let count: u64 = value.parse().expect("bucket count parses");
        if let Some((prev_series, prev_count)) = &last {
            if *prev_series == series {
                assert!(
                    count >= *prev_count,
                    "bucket counts must be cumulative: {line}"
                );
            }
        }
        last = Some((series, count));
    }
    assert!(
        text.contains("le=\"+Inf\""),
        "histograms must terminate at +Inf"
    );
}

#[test]
fn empty_registry_renders_empty_and_valid() {
    let reg = MetricsRegistry::new();
    let text = ltc_core::obs::render_prometheus(&reg);
    assert!(text.is_empty());
    validate_exposition(&text).expect("empty exposition is trivially valid");
    assert_eq!(ltc_core::obs::render_json(&reg), "{\"families\":[]}");
    serde_json::parse(&ltc_core::obs::render_json(&reg)).expect("empty JSON parses");
}

// ---------------------------------------------------------------------------
// JSON round-trip through a real parser.

fn family<'a>(doc: &'a Value, name: &str) -> &'a Value {
    let Some(Value::Arr(families)) = doc.get_field("families") else {
        panic!("families array missing");
    };
    families
        .iter()
        .find(|f| matches!(f.get_field("name"), Some(Value::Str(n)) if n == name))
        .unwrap_or_else(|| panic!("family {name} missing"))
}

#[test]
fn json_round_trips_and_matches_the_prometheus_view() {
    let (p, text) = exercised_runtime();
    let json = p.obs().expect("obs on").render_json();
    let doc = serde_json::parse(&json).expect("render_json must emit parseable JSON");

    // Counters in the JSON document equal the Prometheus samples.
    let records = family(&doc, "ltc_shard_records_total");
    let Some(Value::Arr(series)) = records.get_field("series") else {
        panic!("series array missing");
    };
    assert_eq!(series.len(), 2, "one series per shard");
    let mut total = 0u64;
    for s in series {
        let Some(Value::Num(v)) = s.get_field("value") else {
            panic!("counter value must be a number");
        };
        total += v.as_u64().expect("counter is a u64");
    }
    assert_eq!(total, 2_000, "JSON counters match the stream");

    // Histogram objects carry count/sum/buckets with a +Inf terminator.
    let hist = family(&doc, "ltc_shard_batch_insert_ns");
    let Some(Value::Arr(hseries)) = hist.get_field("series") else {
        panic!("series array missing");
    };
    let value = hseries[0].get_field("value").expect("value");
    let count = value
        .get_field("count")
        .and_then(Value::as_u64_opt)
        .expect("count");
    let Some(Value::Arr(buckets)) = value.get_field("buckets") else {
        panic!("buckets array missing");
    };
    let last = buckets.last().expect("at least one bucket");
    assert!(
        matches!(last.get_field("le"), Some(Value::Str(le)) if le == "+Inf"),
        "last JSON bucket is +Inf"
    );
    assert_eq!(
        last.get_field("count").and_then(Value::as_u64_opt),
        Some(count),
        "+Inf bucket equals count"
    );

    // The Prometheus view agrees on the histogram count.
    let prom_count: u64 = text
        .lines()
        .filter(|l| l.starts_with("ltc_shard_batch_insert_ns_count"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
        .sum();
    let json_count: u64 = hseries
        .iter()
        .filter_map(|s| s.get_field("value")?.get_field("count")?.as_u64_opt())
        .sum();
    assert_eq!(prom_count, json_count, "both views agree");
}

/// Accessor shim: the vendored `serde::Value` exposes numbers through
/// `Number`; flatten to `Option<u64>` for test assertions.
trait AsU64 {
    fn as_u64_opt(&self) -> Option<u64>;
}

impl AsU64 for Value {
    fn as_u64_opt(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }
}

#[test]
fn events_json_round_trips() {
    let journal = EventJournal::new();
    journal.publish(EventKind::WorkerFault, Some(1), 0);
    journal.publish(EventKind::CheckpointPublish, None, 9);
    let json = render_events_json(&journal.drain());
    let doc = serde_json::parse(&json).expect("events JSON parses");
    let Value::Arr(events) = doc else {
        panic!("events must be an array");
    };
    assert_eq!(events.len(), 2);
    assert!(matches!(events[0].get_field("kind"), Some(Value::Str(k)) if k == "worker_fault"));
    assert!(matches!(events[1].get_field("shard"), Some(Value::Null)));
}

// ---------------------------------------------------------------------------
// Journal drop semantics.

#[test]
fn journal_drops_newest_on_overflow_and_counts_drops() {
    let journal = EventJournal::with_capacity(8);
    let mut published = 0u64;
    for i in 0..20u64 {
        if journal
            .publish(EventKind::PeriodRollover, None, i)
            .is_some()
        {
            published += 1;
        }
    }
    assert_eq!(published, 8, "ring holds exactly its capacity");
    assert_eq!(journal.dropped(), 12, "overflow is counted, not silent");
    let events = journal.drain();
    assert_eq!(events.len(), 8);
    // Drop-newest: the *oldest* events survive, in order, with contiguous
    // sequence numbers.
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.seq, i as u64);
        assert_eq!(event.detail, i as u64);
    }
    // Draining frees the ring for new events.
    assert!(journal.publish(EventKind::Rollback, Some(0), 1).is_some());
    assert_eq!(journal.drain().len(), 1);
}

#[test]
fn runtime_journal_is_drainable_while_workers_run() {
    let mut p = ParallelLtc::new(config(), 2);
    for round in 0..4u64 {
        for i in 0..1_000u64 {
            p.insert(i % 50);
        }
        p.end_period().expect("healthy runtime");
        // Drain mid-stream: workers are live, no stop required.
        let events = p.obs().expect("obs on").journal().drain();
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::PeriodRollover && e.detail == round + 1),
            "rollover {round} must be journaled: {events:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Shared registry across runtimes; metrics-off mode.

#[test]
fn two_runtimes_can_share_one_registry() {
    let obs = Arc::new(RuntimeObs::new());
    let mut a = ParallelLtc::with_observability(
        config(),
        1,
        64,
        FaultPolicy::default(),
        Some(Arc::clone(&obs)),
    );
    let mut b = ParallelLtc::with_observability(
        config(),
        1,
        64,
        FaultPolicy::default(),
        Some(Arc::clone(&obs)),
    );
    for i in 0..100u64 {
        a.insert(i);
        b.insert(i);
    }
    a.sync().expect("healthy");
    b.sync().expect("healthy");
    let text = obs.render_prometheus();
    validate_exposition(&text).expect("shared registry renders cleanly");
    let total: u64 = text
        .lines()
        .filter(|l| l.starts_with("ltc_shard_records_total{"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
        .sum();
    assert_eq!(total, 200, "both runtimes aggregate into one registry");
}

#[test]
fn metrics_off_runtime_still_streams_and_aggregates_stats() {
    let mut p = ParallelLtc::with_observability(config(), 2, 64, FaultPolicy::default(), None);
    for i in 0..1_000u64 {
        p.insert(i % 50);
    }
    p.end_period().expect("healthy runtime");
    assert!(p.obs().is_none());
    let stats = p.stats();
    assert_eq!(stats.inserts, 1_000, "stats work without observability");
    assert_eq!(stats.periods, 1);
    p.finish().expect("healthy runtime");
}

// ---------------------------------------------------------------------------
// Overhead smoke test. The precise number lives in BENCH_obs.json (run
// `cargo run -p ltc-bench --release --bin obs_overhead`); this guard only
// catches gross regressions — e.g. a lock or syscall sneaking onto the
// per-batch path — without being sensitive to CI noise.

#[test]
fn instrumentation_overhead_stays_within_smoke_bound() {
    const RECORDS: u64 = 400_000;
    const BATCH: usize = 256;
    let run = |obs: Option<Arc<RuntimeObs>>| -> std::time::Duration {
        let mut p =
            ParallelLtc::with_observability(config(), 2, BATCH, FaultPolicy::default(), obs);
        let ids: Vec<u64> = (0..RECORDS).map(|i| i % 10_000).collect();
        let start = std::time::Instant::now();
        for chunk in ids.chunks(BATCH) {
            p.insert_batch(chunk);
        }
        p.sync().expect("healthy runtime");
        let elapsed = start.elapsed();
        p.finish().expect("healthy runtime");
        elapsed
    };
    // Warm up, then interleave measurements to damp frequency scaling.
    let _ = run(None);
    let mut on = std::time::Duration::ZERO;
    let mut off = std::time::Duration::ZERO;
    for _ in 0..3 {
        off += run(None);
        on += run(Some(Arc::new(RuntimeObs::new())));
    }
    // The measured overhead target is ≤2%; the smoke bound is 75% so a
    // noisy shared runner cannot flake this, while a stray lock or
    // SeqCst-per-record (an order of magnitude) still trips it.
    assert!(
        on.as_secs_f64() <= off.as_secs_f64() * 1.75,
        "instrumentation overhead too high: on={on:?} off={off:?}"
    );
}
