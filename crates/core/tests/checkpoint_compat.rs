//! Cross-version checkpoint compatibility.
//!
//! `fixtures/checkpoint_pre_soa.bin` is an `LTCF` frame produced by the
//! array-of-structs table *before* the struct-of-arrays storage refactor,
//! captured mid-period (30 records into period 4, so the flag byte of hot
//! cells carries pending appearance bits). The lane layout is an in-memory
//! concern only — the wire format must not notice — so today's table must
//! restore this frame byte-for-byte and answer the queries the generator
//! recorded at capture time.
//!
//! Generator (pre-SoA build): a 16×4 table, seed 9, 50-record periods;
//! 4 full periods of `i % 5 == 0 → 7, else period*100+i`, then 30 records
//! `i % 5 == 0 → 7, else 900+i` left mid-period.

use ltc_common::Weights;
use ltc_core::{Ltc, LtcConfig};

const PRE_SOA_FRAME: &[u8] = include_bytes!("fixtures/checkpoint_pre_soa.bin");

fn fixture_config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(16)
        .cells_per_bucket(4)
        .weights(Weights::BALANCED)
        .records_per_period(50)
        .seed(9)
        .build()
}

#[test]
fn pre_soa_checkpoint_still_restores() {
    let mut ltc = Ltc::new(fixture_config());
    ltc.restore_checkpoint(PRE_SOA_FRAME)
        .expect("pre-SoA LTCF frame must restore into the SoA table");
    // Oracle values recorded by the generator at capture time (finalize on
    // a clone so the restored state itself stays bit-faithful).
    let mut finalized = ltc.clone();
    finalized.finalize();
    assert_eq!(finalized.frequency_of(7), Some(47));
    assert_eq!(
        finalized.persistency_of(7),
        Some(4),
        "four completed periods plus the pending mid-period flag, harvested"
    );
    assert_eq!(ltc.periods_completed(), 4);
}

#[test]
fn pre_soa_checkpoint_roundtrips_byte_identically() {
    // Restoring the old frame and re-checkpointing must reproduce it
    // exactly: same config fingerprint, same snapshot section bytes. This
    // pins both directions of the format across the layout change.
    let mut ltc = Ltc::new(fixture_config());
    ltc.restore_checkpoint(PRE_SOA_FRAME).unwrap();
    assert_eq!(ltc.to_checkpoint(), PRE_SOA_FRAME);
    assert_eq!(PRE_SOA_FRAME.len(), 1137, "fixture frame size is pinned");
}

#[test]
fn pre_soa_checkpoint_rejects_wrong_config() {
    // The fingerprint guard still works across the layout change.
    let mut other = Ltc::new(
        LtcConfig::builder()
            .buckets(16)
            .cells_per_bucket(4)
            .weights(Weights::BALANCED)
            .records_per_period(50)
            .seed(10) // different seed → different fingerprint
            .build(),
    );
    assert!(other.restore_checkpoint(PRE_SOA_FRAME).is_err());
}

#[test]
fn prefetch_distance_does_not_change_fingerprints() {
    // prefetch_distance is a throughput knob: tables tuned differently must
    // still accept each other's checkpoints (the fingerprint deliberately
    // enumerates only result-affecting fields).
    let mut tuned = Ltc::new(
        LtcConfig::builder()
            .buckets(16)
            .cells_per_bucket(4)
            .weights(Weights::BALANCED)
            .records_per_period(50)
            .seed(9)
            .prefetch_distance(32)
            .build(),
    );
    tuned
        .restore_checkpoint(PRE_SOA_FRAME)
        .expect("perf knobs must not invalidate checkpoints");
    assert_eq!(tuned.periods_completed(), 4);
}
