//! Seeded-weakening refutations: demote one ordering in the SPSC Dekker
//! protocol (via `spsc::seam`) and prove the checkers' teeth.
//!
//! For each seeded bug — `tail`/`head` publish store demoted from `SeqCst`
//! to `Release` — the suite shows:
//!
//! * the **SC-value** explorer ([`ValueModel::SeqCstValues`], the
//!   historical semantics) still passes: every load sees the newest store,
//!   so the park-side recheck can never miss the publish;
//! * the **weak-memory** explorer ([`ValueModel::Weak`]) refutes it with a
//!   deterministic lost-wakeup counterexample: the recheck-under-mutex
//!   legally reads a stale cursor (a `Release` store creates no `SeqCst`
//!   total-order edge and no happens-before edge to an unsynchronized
//!   reader), the sleeper parks, the waker has already read `waiting` —
//!   deadlock;
//! * the race detector stays silent either way (`Release` still publishes
//!   the slot data), so *only* value-level weak exploration sees the bug.
//!
//! The static mirror of these tests lives in the xtask `ordering_protocol`
//! rule: the same demotions, written literally, are flagged against the
//! `// ordering:` contracts in `src/spsc.rs`.
//!
//! Run with: `cargo test -p ltc-core --features loom-check --test loom_weakening`
#![cfg(feature = "loom-check")]

use loom::sync::Arc;
use loom::ValueModel;
use ltc_core::spsc::seam::{self, Point};
use ltc_core::SpscRing;
use std::sync::Mutex as StdMutex;

/// The seam knobs are process-global, so weakening tests serialize on this
/// lock and restore the knob before releasing it (RAII below).
static SEAM_LOCK: StdMutex<()> = StdMutex::new(());

/// RAII demotion: holds the seam lock, demotes `point` on construction and
/// restores it on drop (including the unwind path of a failed assertion).
struct Demoted {
    point: Point,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Demoted {
    fn new(point: Point) -> Self {
        // A previous test's assertion failure would poison the lock; the
        // guarded state is just the knob, which we reset anyway.
        let lock = SEAM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        seam::demote(point, true);
        Self { point, _lock: lock }
    }
}

impl Drop for Demoted {
    fn drop(&mut self) {
        seam::demote(self.point, false);
    }
}

/// Consumer-side lost wakeup shape: the consumer pops from an empty ring
/// (parking until the producer publishes). A missed `tail` publish strands
/// it forever.
fn consumer_parks_scenario() {
    let ring = Arc::new(SpscRing::with_capacity(1));
    let producer = {
        let ring = Arc::clone(&ring);
        loom::thread::spawn(move || {
            assert!(ring.push(1u32));
        })
    };
    assert_eq!(ring.pop(), Some(1));
    producer.join().unwrap();
}

/// Producer-side lost wakeup shape: the second push finds the capacity-1
/// ring full (parking until the consumer frees the slot). A missed `head`
/// publish strands it forever.
fn producer_parks_scenario() {
    let ring = Arc::new(SpscRing::with_capacity(1));
    let producer = {
        let ring = Arc::clone(&ring);
        loom::thread::spawn(move || {
            assert!(ring.push(1u32));
            assert!(ring.push(2u32));
        })
    };
    assert_eq!(ring.pop(), Some(1));
    assert_eq!(ring.pop(), Some(2));
    producer.join().unwrap();
}

/// Explore `scenario` to completion under `model`; panics on any failure.
fn explore(scenario: fn(), model: ValueModel) -> loom::Report {
    let mut builder = loom::Builder::new();
    builder.max_interleavings = 2_000_000;
    builder.value_model = model;
    builder.check(scenario)
}

/// Run `scenario` under weak semantics expecting a refutation; returns the
/// panic message (which embeds the counterexample schedule).
fn refutation_message(scenario: fn()) -> String {
    let result = std::panic::catch_unwind(|| explore(scenario, ValueModel::Weak));
    let payload = result.expect_err("the weak checker must refute the demoted protocol");
    payload
        .downcast_ref::<String>()
        .cloned()
        .expect("model failures panic with a string message")
}

fn assert_lost_wakeup(msg: &str) {
    assert!(
        msg.contains("deadlock"),
        "counterexample must be a lost wakeup (deadlock): {msg}"
    );
    assert!(
        msg.contains("failing schedule"),
        "counterexample must carry the interleaving trace: {msg}"
    );
    assert!(
        msg.contains("STALE"),
        "the trace must name the stale read that missed the publish: {msg}"
    );
}

#[test]
fn demoted_tail_publish_fools_the_sc_value_checker() {
    let _demoted = Demoted::new(Point::TailPublish);
    let report = explore(consumer_parks_scenario, ValueModel::SeqCstValues);
    assert!(report.complete, "SC-value space must be exhausted");
}

#[test]
fn demoted_tail_publish_is_refuted_under_weak_memory() {
    let _demoted = Demoted::new(Point::TailPublish);
    assert_lost_wakeup(&refutation_message(consumer_parks_scenario));
}

#[test]
fn demoted_head_publish_fools_the_sc_value_checker() {
    let _demoted = Demoted::new(Point::HeadPublish);
    let report = explore(producer_parks_scenario, ValueModel::SeqCstValues);
    assert!(report.complete, "SC-value space must be exhausted");
}

#[test]
fn demoted_head_publish_is_refuted_under_weak_memory() {
    let _demoted = Demoted::new(Point::HeadPublish);
    assert_lost_wakeup(&refutation_message(producer_parks_scenario));
}

#[test]
fn refutations_are_deterministic() {
    let _demoted = Demoted::new(Point::TailPublish);
    let first = refutation_message(consumer_parks_scenario);
    let second = refutation_message(consumer_parks_scenario);
    assert_eq!(first, second, "counterexample must replay identically");
}

#[test]
fn undemoted_protocol_survives_the_weak_checker() {
    // Control: with the seam at its declared orderings the same scenarios
    // pass under weak memory — the refutations above are caused by the
    // demotion, not by the scenarios or the explorer.
    let _lock = SEAM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(explore(consumer_parks_scenario, ValueModel::Weak).complete);
    assert!(explore(producer_parks_scenario, ValueModel::Weak).complete);
}
