//! Crash-recovery torture suite for the background durability service and
//! the delta-checkpoint chain.
//!
//! Every scenario is deterministic: the stream is quiesced
//! (`end_period`/`sync`) before each checkpoint so a generation covers an
//! exact record prefix, failpoints fire on fixed schedules
//! (`FireSpec::once` / `FireSpec::nth`), and "crash + restart" is a fresh
//! runtime restoring from the store directory. Sites driven here:
//!
//! * `checkpoint::write`     — torn/corrupt *full* frame (base of a chain)
//! * `checkpoint::delta_write` — torn/corrupt *delta* frame mid-chain
//! * `checkpoint::compact`   — torn frame during chain compaction
//! * `checkpoint::fsync`     — fsync fails: nothing may publish
//! * `checkpoint::rename`    — crash between temp write and rename
//! * `worker::batch`         — shard worker dies while the service runs
//!
//! Recovered state is compared **bit-exactly** (`to_checkpoint` bytes)
//! against a reference replay of the acknowledged prefix — the records
//! covered by the generation that restore lands on.
//!
//! Run with: `cargo test -p ltc-core --features failpoints --test recovery_torture`
//!
//! CI runs exactly that and independently asserts (via `--list`) that the
//! suite is non-empty, so these recovery proofs can never be skipped
//! silently.
#![cfg(feature = "failpoints")]

use ltc_common::Weights;
use ltc_core::checkpoint::Checkpointer;
use ltc_core::durability::{DurabilityPolicy, DurabilityService, OnFault};
use ltc_core::failpoint::{self, FailAction, FireSpec};
use ltc_core::{CheckpointError, FaultPolicy, LtcConfig, ParallelLtc};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// The failpoint registry is process-global, so scenarios must not
/// interleave: every test body runs under this guard and starts/ends with
/// a clean registry.
fn scenario() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match GUARD.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    failpoint::clear();
    guard
}

/// Unique scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ltc-torture-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(32)
        .cells_per_bucket(4)
        .weights(Weights::BALANCED)
        .records_per_period(100)
        .seed(13)
        .build()
}

fn runtime(shards: usize, batch: usize) -> ParallelLtc {
    ParallelLtc::with_fault_policy(config(), shards, batch, FaultPolicy::no_backoff())
}

/// A service policy that only checkpoints when told to and never sleeps
/// between retries, so every scenario step is an explicit, ordered act.
fn manual_policy() -> DurabilityPolicy {
    DurabilityPolicy {
        interval: Duration::from_secs(3_600),
        full_every: 8,
        max_chain_len: 16,
        faults: FaultPolicy::no_backoff(),
        on_fault: OnFault::Degrade,
    }
}

/// The deterministic record batch for round `r`: a skewed mix so deltas
/// stay small (hot ids) on top of a varied base (round-scoped ids).
fn ingest_round(p: &mut ParallelLtc, r: u64) {
    for i in 0..100u64 {
        let id = match i % 4 {
            0 => 7,                    // hot everywhere
            1 => 19 + (r % 3),         // warm, shifts slowly
            _ => r * 1_000 + (i % 25), // round-local noise
        };
        p.insert(id);
    }
    p.end_period().expect("healthy runtime");
    p.sync().expect("healthy runtime");
}

/// Replay rounds `0..=upto` on a fresh runtime and return its checkpoint
/// bytes — the bit-exact image of the acknowledged prefix.
fn reference_frame(upto: u64) -> Vec<u8> {
    let mut reference = runtime(2, 8);
    for r in 0..=upto {
        ingest_round(&mut reference, r);
    }
    let frame = reference.to_checkpoint();
    reference.finish().expect("healthy reference");
    frame
}

// ---------------------------------------------------------------------------
// Satellite (a): a failed fsync/rename surfaces as CheckpointError and
// publishes nothing.

#[test]
fn fsync_failure_surfaces_as_error_and_publishes_nothing() {
    let _guard = scenario();
    let scratch = ScratchDir::new("fsync");
    let store = Checkpointer::new(scratch.path()).unwrap();
    let mut p = runtime(2, 8);
    ingest_round(&mut p, 0);
    failpoint::configure("checkpoint::fsync", FailAction::Error, FireSpec::once());
    let err = p
        .save_full_checkpoint(&store)
        .expect_err("failed fsync must not look like success");
    assert!(matches!(err, CheckpointError::Io(_)), "got: {err:?}");
    failpoint::clear();
    // Nothing published, no temp litter: the store is as if the save never
    // happened.
    assert_eq!(store.latest().unwrap(), None, "no generation published");
    let leftovers: Vec<_> = std::fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name())
        .collect();
    assert!(leftovers.is_empty(), "leftovers: {leftovers:?}");
    // The very next save (fsync healthy again) publishes generation 1.
    let chain = p.save_full_checkpoint(&store).expect("healthy save");
    assert_eq!(chain.base_generation, 1);
    p.finish().expect("healthy");
}

#[test]
fn rename_failure_aborts_between_write_and_publish() {
    let _guard = scenario();
    let scratch = ScratchDir::new("rename");
    let store = Checkpointer::new(scratch.path()).unwrap();
    let mut p = runtime(2, 8);
    ingest_round(&mut p, 0);
    let mut chain = p.save_full_checkpoint(&store).expect("base");
    ingest_round(&mut p, 1);
    // The delta's temp file is fully written and fsynced, but the crash
    // lands before the rename: the store must still only hold the base.
    failpoint::configure("checkpoint::rename", FailAction::Error, FireSpec::once());
    let err = p
        .save_delta_checkpoint(&store, &mut chain)
        .expect_err("failed rename must not look like success");
    assert!(matches!(err, CheckpointError::Io(_)), "got: {err:?}");
    failpoint::clear();
    assert_eq!(chain.length, 0, "failed delta did not extend the chain");
    assert_eq!(store.generations().unwrap(), vec![1]);
    // Retrying the delta succeeds and carries the same buckets.
    let generation = p.save_delta_checkpoint(&store, &mut chain).expect("retry");
    assert_eq!(generation, 2);
    let expected = p.to_checkpoint();
    drop(p);
    let mut q = runtime(2, 8);
    assert_eq!(q.restore_from(&store).unwrap(), 2);
    assert_eq!(q.to_checkpoint(), expected);
    q.finish().expect("healthy");
}

// ---------------------------------------------------------------------------
// Torn frames at every flavour of save: restore falls back exactly one
// step and lands bit-exactly on the acknowledged prefix.

#[test]
fn torn_delta_write_falls_back_to_the_chain_base() {
    let _guard = scenario();
    let scratch = ScratchDir::new("torn-delta");
    let store = Checkpointer::new(scratch.path()).unwrap();
    let mut p = runtime(2, 8);
    ingest_round(&mut p, 0);
    let mut chain = p.save_full_checkpoint(&store).expect("base");
    let acknowledged = p.to_checkpoint();
    ingest_round(&mut p, 1);
    // Mid-delta-write tear: the frame publishes (rename goes through) but
    // holds only a prefix.
    failpoint::configure(
        "checkpoint::delta_write",
        FailAction::Truncate { keep: 60 },
        FireSpec::once(),
    );
    p.save_delta_checkpoint(&store, &mut chain)
        .expect("write itself succeeds");
    failpoint::clear();
    drop(p);
    let mut q = runtime(2, 8);
    assert_eq!(
        q.restore_from(&store).unwrap(),
        1,
        "torn delta rejected, chain base restored"
    );
    assert_eq!(q.to_checkpoint(), acknowledged);
    assert_eq!(q.to_checkpoint(), reference_frame(0), "replay agrees");
    q.finish().expect("healthy");
}

#[test]
fn corrupt_nth_delta_spares_the_earlier_delta() {
    let _guard = scenario();
    let scratch = ScratchDir::new("nth-delta");
    let store = Checkpointer::new(scratch.path()).unwrap();
    let mut p = runtime(2, 8);
    ingest_round(&mut p, 0);
    let mut chain = p.save_full_checkpoint(&store).expect("base");
    // nth mode: the first delta write is clean, the second is corrupted.
    failpoint::configure(
        "checkpoint::delta_write",
        FailAction::CorruptByte { offset: 100 },
        FireSpec::nth(1),
    );
    ingest_round(&mut p, 1);
    p.save_delta_checkpoint(&store, &mut chain).expect("clean");
    let acknowledged = p.to_checkpoint();
    ingest_round(&mut p, 2);
    p.save_delta_checkpoint(&store, &mut chain)
        .expect("write itself succeeds");
    failpoint::clear();
    drop(p);
    let mut q = runtime(2, 8);
    assert_eq!(
        q.restore_from(&store).unwrap(),
        2,
        "corrupt newest delta rejected, previous delta restored"
    );
    assert_eq!(q.to_checkpoint(), acknowledged);
    assert_eq!(q.to_checkpoint(), reference_frame(1), "replay agrees");
    q.finish().expect("healthy");
}

#[test]
fn torn_compaction_falls_back_to_the_chain_it_was_replacing() {
    let _guard = scenario();
    let scratch = ScratchDir::new("torn-compact");
    let mut p = runtime(2, 8);
    ingest_round(&mut p, 0);
    let policy = DurabilityPolicy {
        full_every: 1, // compact after every delta
        ..manual_policy()
    };
    let service =
        DurabilityService::attach(&p, Checkpointer::new(scratch.path()).unwrap(), policy).unwrap();
    assert_eq!(service.checkpoint_now().unwrap(), 1, "full base");
    ingest_round(&mut p, 1);
    assert_eq!(service.checkpoint_now().unwrap(), 2, "delta");
    let acknowledged = p.to_checkpoint();
    ingest_round(&mut p, 2);
    // The cadence makes the third save a compaction — torn mid-write.
    failpoint::configure(
        "checkpoint::compact",
        FailAction::Truncate { keep: 80 },
        FireSpec::once(),
    );
    assert_eq!(
        service.checkpoint_now().unwrap(),
        3,
        "write itself succeeds"
    );
    failpoint::clear();
    let status = service.status();
    assert_eq!(status.compactions, 1, "the third save was a compaction");
    drop(service);
    drop(p);
    let mut q = runtime(2, 8);
    assert_eq!(
        q.restore_from(&store_at(scratch.path())).unwrap(),
        2,
        "torn compaction rejected, prior chain (base 1 + delta 2) restored"
    );
    assert_eq!(q.to_checkpoint(), acknowledged);
    assert_eq!(q.to_checkpoint(), reference_frame(1), "replay agrees");
    q.finish().expect("healthy");
}

fn store_at(path: &Path) -> Checkpointer {
    Checkpointer::new(path).unwrap()
}

#[test]
fn torn_full_base_abandons_its_whole_chain() {
    let _guard = scenario();
    let scratch = ScratchDir::new("torn-base");
    let store = Checkpointer::new(scratch.path())
        .unwrap()
        .keep_generations(8);
    let mut p = runtime(2, 8);
    ingest_round(&mut p, 0);
    p.save_full_checkpoint(&store).expect("chain 1 base");
    ingest_round(&mut p, 1);
    let acknowledged = p.to_checkpoint();
    // Chain 2's base is torn on disk; its delta (gen 3) is well-formed but
    // must be abandoned because its base cannot be trusted.
    failpoint::configure(
        "checkpoint::write",
        FailAction::Truncate { keep: 120 },
        FireSpec::once(),
    );
    let mut chain2 = p.save_full_checkpoint(&store).expect("write succeeds");
    failpoint::clear();
    ingest_round(&mut p, 2);
    p.save_delta_checkpoint(&store, &mut chain2).expect("delta");
    drop(p);
    let mut q = runtime(2, 8);
    assert_eq!(
        q.restore_from(&store).unwrap(),
        1,
        "whole torn chain skipped, previous chain's base restored"
    );
    // Generation 1 covers round 0 only; round 1 records were acknowledged
    // into the torn chain and are lost — exactly one chain's worth.
    assert_eq!(q.to_checkpoint(), reference_frame(0));
    assert_ne!(
        q.to_checkpoint(),
        acknowledged,
        "round 1 rode the torn chain"
    );
    q.finish().expect("healthy");
}

// ---------------------------------------------------------------------------
// The torture loop: kill/restore repeatedly under a failpoint schedule.

/// How one torture cycle is sabotaged. Each cycle checkpoints three
/// rounds through a fresh service: a full base, then two deltas.
enum Sabotage {
    /// All three saves are clean.
    None,
    /// Arm `site` with `action` (fires once) on the cycle's *last* save —
    /// a delta frame.
    LastSave(&'static str, FailAction),
    /// Corrupt the cycle's *first* save — the chain base. Every frame of
    /// the cycle rides a rotten base, so restore must abandon the whole
    /// chain and fall back to the previous cycle.
    CorruptBase,
}

#[test]
fn repeated_kill_restore_cycles_track_the_acknowledged_prefix() {
    let _guard = scenario();
    let scratch = ScratchDir::new("cycles");
    let schedule = [
        Sabotage::None,
        // Torn delta: published garbage, restore falls back one frame.
        Sabotage::LastSave("checkpoint::delta_write", FailAction::Truncate { keep: 60 }),
        // Failed fsync: loud error, the service retries to success.
        Sabotage::LastSave("checkpoint::fsync", FailAction::Error),
        // Corrupt chain base: restore abandons the cycle's whole chain.
        Sabotage::CorruptBase,
        Sabotage::None,
    ];
    let mut round: u64 = 0;
    // The newest round whose checkpoint is trusted to survive restore.
    let mut durable_round: Option<u64> = None;
    for (cycle, sabotage) in schedule.iter().enumerate() {
        // Crash-restart: a fresh runtime restores whatever survived.
        let mut p = runtime(2, 8);
        let restored = p.restore_from(&store_at(scratch.path()));
        match durable_round {
            None => assert!(restored.is_err(), "cycle {cycle}: nothing durable yet"),
            Some(r) => {
                restored.expect("a durable generation must restore");
                assert_eq!(
                    p.to_checkpoint(),
                    reference_frame(r),
                    "cycle {cycle}: restored image is the acknowledged prefix"
                );
                // Replay the lost rounds so the stream itself never loses
                // data across the crash (the operator replays from the
                // upstream log; here that log is the round counter).
                for lost in (r + 1)..round {
                    ingest_round(&mut p, lost);
                }
            }
        }
        let service = DurabilityService::attach(
            &p,
            Checkpointer::new(scratch.path()).unwrap(),
            DurabilityPolicy {
                full_every: 2,
                ..manual_policy()
            },
        )
        .unwrap();
        // Save 1: the cycle's full base frame.
        let mut chain_trusted = true;
        ingest_round(&mut p, round);
        if matches!(sabotage, Sabotage::CorruptBase) {
            failpoint::configure(
                "checkpoint::write",
                FailAction::CorruptByte { offset: 64 },
                FireSpec::once(),
            );
            service.checkpoint_now().expect("publishes a corrupt base");
            failpoint::clear();
            chain_trusted = false;
        } else {
            service.checkpoint_now().expect("clean base");
            durable_round = Some(round);
        }
        round += 1;
        // Save 2: always a clean delta — but only durable on a sound base.
        ingest_round(&mut p, round);
        service.checkpoint_now().expect("clean delta");
        if chain_trusted {
            durable_round = Some(round);
        }
        round += 1;
        // Save 3: a delta the schedule may sabotage.
        ingest_round(&mut p, round);
        if let Sabotage::LastSave(site, action) = sabotage {
            failpoint::configure(site, action.clone(), FireSpec::once());
            // Truncate publishes garbage (Ok); Error fails the attempt but
            // the retry succeeds — `once` only fires once.
            service
                .checkpoint_now()
                .expect("published garbage or retried to success");
            failpoint::clear();
            // Only the loud-failure flavour leaves a durable frame behind.
            if matches!(action, FailAction::Error) && chain_trusted {
                durable_round = Some(round);
            }
        } else {
            service.checkpoint_now().expect("clean delta");
            if chain_trusted {
                durable_round = Some(round);
            }
        }
        round += 1;
        drop(service); // "kill": the service dies with the process
        drop(p);
    }
    // Final recovery after the last cycle.
    let mut q = runtime(2, 8);
    q.restore_from(&store_at(scratch.path())).expect("durable");
    assert_eq!(
        q.to_checkpoint(),
        reference_frame(durable_round.expect("at least one durable round")),
        "final restored image is the acknowledged prefix"
    );
    q.finish().expect("healthy");
}

#[test]
fn torture_cycle_is_deterministic_across_runs() {
    let _guard = scenario();
    // The same sabotaged scenario, executed twice from scratch, leaves a
    // byte-identical restored image: failpoints fire on schedule, not on
    // timing.
    let run = || -> Vec<u8> {
        let scratch = ScratchDir::new("determinism");
        let store = Checkpointer::new(scratch.path()).unwrap();
        let mut p = runtime(2, 8);
        ingest_round(&mut p, 0);
        let mut chain = p.save_full_checkpoint(&store).expect("base");
        ingest_round(&mut p, 1);
        failpoint::configure(
            "checkpoint::delta_write",
            FailAction::Truncate { keep: 60 },
            FireSpec::once(),
        );
        p.save_delta_checkpoint(&store, &mut chain).expect("torn");
        failpoint::clear();
        drop(p);
        let mut q = runtime(2, 8);
        q.restore_from(&store).expect("fallback");
        let frame = q.to_checkpoint();
        q.finish().expect("healthy");
        frame
    };
    assert_eq!(run(), run(), "bit-identical recovery across runs");
}

// ---------------------------------------------------------------------------
// The service coexists with worker supervision: a shard worker dying does
// not corrupt the chain, and checkpoints made after its restart cover the
// restored worker state.

#[test]
fn worker_death_while_the_service_runs_keeps_checkpoints_sound() {
    let _guard = scenario();
    let scratch = ScratchDir::new("worker-death");
    let mut p = runtime(1, 8);
    ingest_round(&mut p, 0);
    let service = DurabilityService::attach(
        &p,
        Checkpointer::new(scratch.path()).unwrap(),
        manual_policy(),
    )
    .unwrap();
    service.checkpoint_now().expect("base");
    // The worker dies mid-batch; supervision rolls the shard back to its
    // last period boundary and respawns.
    failpoint::configure("worker::batch", FailAction::Panic, FireSpec::once());
    for i in 0..8u64 {
        p.insert(10_000 + i);
    }
    p.sync().expect("supervision absorbed the panic");
    failpoint::clear();
    // A delta checkpoint after the recovery covers the *restored* state.
    let generation = service.checkpoint_now().expect("post-recovery delta");
    let acknowledged = p.to_checkpoint();
    drop(service);
    drop(p);
    let mut q = runtime(1, 8);
    assert_eq!(
        q.restore_from(&store_at(scratch.path())).unwrap(),
        generation
    );
    assert_eq!(
        q.to_checkpoint(),
        acknowledged,
        "checkpoint covers the post-rollback shard state"
    );
    // The rolled-back shard equals the round-0 boundary: the panicked
    // batch died with the worker.
    assert_eq!(q.to_checkpoint(), {
        let mut reference = runtime(1, 8);
        ingest_round(&mut reference, 0);
        let frame = reference.to_checkpoint();
        reference.finish().expect("healthy");
        frame
    });
    q.finish().expect("healthy");
}

// ---------------------------------------------------------------------------
// Fault-policy behaviour of the service itself.

#[test]
fn persistent_save_failure_exhausts_budget_and_degrades() {
    let _guard = scenario();
    let scratch = ScratchDir::new("exhaust");
    let mut p = runtime(2, 8);
    ingest_round(&mut p, 0);
    let policy = DurabilityPolicy {
        faults: FaultPolicy {
            max_restarts: 2,
            ..FaultPolicy::no_backoff()
        },
        on_fault: OnFault::Degrade,
        ..manual_policy()
    };
    let service =
        DurabilityService::attach(&p, Checkpointer::new(scratch.path()).unwrap(), policy).unwrap();
    // Every fsync fails: 1 try + 2 retries, then the tick gives up.
    failpoint::configure("checkpoint::fsync", FailAction::Error, FireSpec::always());
    let err = service.checkpoint_now().expect_err("budget exhausted");
    assert!(matches!(err, CheckpointError::Io(_)));
    failpoint::clear();
    let status = service.status();
    assert_eq!(status.failed_saves, 3, "1 attempt + 2 retries");
    assert!(!status.stopped_on_fault, "Degrade keeps the service alive");
    // Degraded, not dead: the next request succeeds.
    service.checkpoint_now().expect("healthy again");
    assert_eq!(service.status().last_generation, Some(1));
    p.finish().expect("healthy");
}

#[test]
fn on_fault_stop_shuts_the_service_down() {
    let _guard = scenario();
    let scratch = ScratchDir::new("stop");
    let mut p = runtime(2, 8);
    ingest_round(&mut p, 0);
    let policy = DurabilityPolicy {
        faults: FaultPolicy {
            max_restarts: 1,
            ..FaultPolicy::no_backoff()
        },
        on_fault: OnFault::Stop,
        ..manual_policy()
    };
    let service =
        DurabilityService::attach(&p, Checkpointer::new(scratch.path()).unwrap(), policy).unwrap();
    failpoint::configure("checkpoint::fsync", FailAction::Error, FireSpec::always());
    let err = service.checkpoint_now().expect_err("budget exhausted");
    assert!(matches!(err, CheckpointError::Io(_)));
    failpoint::clear();
    assert!(service.status().stopped_on_fault);
    // The stopped service rejects further work instead of hanging.
    assert!(service.checkpoint_now().is_err());
    p.finish().expect("healthy");
}
