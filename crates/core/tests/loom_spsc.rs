//! Model-checks the unsafe SPSC ring (`src/spsc.rs`) under the vendored
//! loom explorer: every bounded interleaving of a producer and a consumer
//! is executed, with vector-clock race detection on the slot `UnsafeCell`s
//! and deadlock detection on the parking protocol.
//!
//! What the explorer proves per interleaving:
//!
//! * **No uninitialised read**: reading a slot before the producer's write
//!   happens-before it would be flagged as a data race (the read would not
//!   be ordered after the write).
//! * **No lost or duplicated items**: the popped sequence equals the
//!   pushed sequence exactly, asserted in the model closure.
//! * **No lost wakeups**: a parked side that is never woken makes every
//!   live thread blocked, which the explorer reports as a deadlock.
//!
//! Run with: `cargo test -p ltc-core --features loom-check --test loom_spsc`
#![cfg(feature = "loom-check")]

use loom::sync::Arc;
use ltc_core::SpscRing;

/// Exchange `count` items through a ring of `capacity`, checking order and
/// exactness in every interleaving. `base` positions the cursors (e.g.
/// just below `usize::MAX` to cross wraparound mid-model).
fn exchange(capacity: usize, count: u32, base: usize) -> loom::Report {
    loom::model(move || {
        let ring = Arc::new(SpscRing::with_capacity_and_base(capacity, base));
        let producer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || {
                for v in 0..count {
                    ring.push(v);
                }
            })
        };
        for expect in 0..count {
            assert_eq!(ring.pop(), expect, "item lost, duplicated or reordered");
        }
        assert!(ring.try_pop().is_none(), "phantom item after the stream");
        producer.join().unwrap();
    })
}

#[test]
fn spsc_exchange_is_exact_under_all_interleavings() {
    let report = exchange(2, 3, 0);
    assert!(report.complete, "bounded schedule space must be exhausted");
    assert!(
        report.interleavings >= 100,
        "expected a substantive exploration, got {} interleavings",
        report.interleavings
    );
}

#[test]
fn spsc_capacity_one_forces_the_full_parking_protocol() {
    // Every push after the first must park (ring full) and every pop races
    // the producer's wakeup — maximal coverage of the Dekker handshake.
    let report = exchange(1, 3, 0);
    assert!(report.complete);
    assert!(
        report.interleavings >= 100,
        "expected a substantive exploration, got {} interleavings",
        report.interleavings
    );
}

#[test]
fn spsc_survives_cursor_wraparound_under_model() {
    // Cursors start 1 below usize::MAX: they wrap during the exchange, so
    // the masked indexing and wrapping length arithmetic are both model-
    // checked across the discontinuity.
    let report = exchange(2, 3, usize::MAX - 1);
    assert!(report.complete);
    assert!(report.interleavings >= 100);
}

#[test]
fn spsc_exploration_is_deterministic() {
    let first = exchange(2, 2, 0);
    let second = exchange(2, 2, 0);
    assert_eq!(first.interleavings, second.interleavings);
    assert_eq!(first.complete, second.complete);
}

#[test]
fn spsc_drop_with_items_in_flight_is_clean_in_model() {
    // Dropping a non-empty ring must drop exactly the undelivered items —
    // in every interleaving of a producer that may still be mid-push.
    let report = loom::model(|| {
        let ring = Arc::new(SpscRing::with_capacity(2));
        let producer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || {
                ring.push(Box::new(1u32));
                ring.push(Box::new(2u32));
            })
        };
        let first = ring.pop();
        assert_eq!(*first, 1);
        producer.join().unwrap();
        drop(ring); // second item still queued; leak/double-free would fail
    });
    assert!(report.complete);
}
