//! Model-checks the unsafe SPSC ring (`src/spsc.rs`) under the vendored
//! loom explorer: every bounded interleaving of a producer and a consumer
//! is executed, with vector-clock race detection on the slot `UnsafeCell`s
//! and deadlock detection on the parking protocol.
//!
//! What the explorer proves per interleaving:
//!
//! * **No uninitialised read**: reading a slot before the producer's write
//!   happens-before it would be flagged as a data race (the read would not
//!   be ordered after the write).
//! * **No lost or duplicated items**: the popped sequence equals the
//!   pushed sequence exactly, asserted in the model closure.
//! * **No lost wakeups**: a parked side that is never woken makes every
//!   live thread blocked, which the explorer reports as a deadlock.
//!
//! Run with: `cargo test -p ltc-core --features loom-check --test loom_spsc`
#![cfg(feature = "loom-check")]

use loom::sync::Arc;
use ltc_core::SpscRing;

/// Exchange `count` items through a ring of `capacity`, checking order and
/// exactness in every interleaving. `base` positions the cursors (e.g.
/// just below `usize::MAX` to cross wraparound mid-model).
///
/// Weak-memory value exploration multiplies the schedule space by the
/// reads-from choices, so the exchange models need a bigger interleaving
/// budget than the default 20k to stay exhaustive.
fn exchange(capacity: usize, count: u32, base: usize) -> loom::Report {
    let mut builder = loom::Builder::new();
    builder.max_interleavings = 2_000_000;
    builder.check(move || {
        let ring = Arc::new(SpscRing::with_capacity_and_base(capacity, base));
        let producer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || {
                for v in 0..count {
                    assert!(ring.push(v), "un-poisoned push must be accepted");
                }
            })
        };
        for expect in 0..count {
            assert_eq!(
                ring.pop(),
                Some(expect),
                "item lost, duplicated or reordered"
            );
        }
        assert!(ring.try_pop().is_none(), "phantom item after the stream");
        producer.join().unwrap();
    })
}

#[test]
fn spsc_exchange_is_exact_under_all_interleavings() {
    let report = exchange(2, 3, 0);
    assert!(report.complete, "bounded schedule space must be exhausted");
    assert!(
        report.interleavings >= 100,
        "expected a substantive exploration, got {} interleavings",
        report.interleavings
    );
}

#[test]
fn spsc_capacity_one_forces_the_full_parking_protocol() {
    // Every push after the first must park (ring full) and every pop races
    // the producer's wakeup — maximal coverage of the Dekker handshake.
    let report = exchange(1, 3, 0);
    assert!(report.complete);
    assert!(
        report.interleavings >= 100,
        "expected a substantive exploration, got {} interleavings",
        report.interleavings
    );
}

#[test]
fn spsc_survives_cursor_wraparound_under_model() {
    // Cursors start 1 below usize::MAX: they wrap during the exchange, so
    // the masked indexing and wrapping length arithmetic are both model-
    // checked across the discontinuity.
    let report = exchange(2, 3, usize::MAX - 1);
    assert!(report.complete);
    assert!(report.interleavings >= 100);
}

#[test]
fn spsc_exploration_is_deterministic() {
    let first = exchange(2, 2, 0);
    let second = exchange(2, 2, 0);
    assert_eq!(first.interleavings, second.interleavings);
    assert_eq!(first.complete, second.complete);
}

#[test]
fn spsc_drop_with_items_in_flight_is_clean_in_model() {
    // Dropping a non-empty ring must drop exactly the undelivered items —
    // in every interleaving of a producer that may still be mid-push.
    let report = loom::model(|| {
        let ring = Arc::new(SpscRing::with_capacity(2));
        let producer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || {
                assert!(ring.push(Box::new(1u32)));
                assert!(ring.push(Box::new(2u32)));
            })
        };
        let first = ring.pop().expect("producer publishes at least one");
        assert_eq!(*first, 1);
        producer.join().unwrap();
        drop(ring); // second item still queued; leak/double-free would fail
    });
    assert!(report.complete);
}

#[test]
fn poison_releases_a_parked_producer_in_every_interleaving() {
    // The worker-death path: the consumer dies (poisons) instead of
    // popping while the producer may be parked on a full ring. In every
    // interleaving the producer must return — a missed poison wakeup
    // strands it and surfaces as a loom deadlock report.
    let report = loom::model(|| {
        let ring = Arc::new(SpscRing::with_capacity(1));
        let producer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || {
                // First push fills the ring; later pushes either park
                // until the poison lands or observe it up front.
                let first = ring.push(1u32);
                let second = ring.push(2u32);
                (first, second)
            })
        };
        ring.poison();
        let (first, second) = producer.join().unwrap();
        assert!(!second, "nothing is accepted after the poison verdict");
        // The first push raced the poison: either outcome is legal, but a
        // rejected first push implies the backlog is empty.
        if !first {
            assert!(ring.try_pop().is_none());
        }
    });
    assert!(report.complete, "bounded schedule space must be exhausted");
    assert!(report.interleavings > 1);
}

#[test]
fn poison_releases_a_parked_consumer_and_keeps_the_backlog() {
    // Dual direction: the consumer may be parked on an empty ring when the
    // producer pushes once and dies (poisons). The consumer must get the
    // queued item first and the poison verdict second — never a lost item,
    // never a permanent sleep.
    let report = loom::model(|| {
        let ring = Arc::new(SpscRing::<u32>::with_capacity(2));
        let producer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || {
                assert!(ring.push(7));
                ring.poison();
            })
        };
        assert_eq!(ring.pop(), Some(7), "backlog survives the poison");
        assert_eq!(ring.pop(), None, "then the verdict is delivered");
        producer.join().unwrap();
    });
    assert!(report.complete);
    assert!(report.interleavings > 1);
}
