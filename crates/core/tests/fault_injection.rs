//! Deterministic fault-injection suite: drives the named failpoints in the
//! runtime (`worker::batch`, `worker::end_period`, `checkpoint::write`,
//! `spsc::push`) to prove every recovery path end to end — worker panic →
//! supervised restart from the last checkpoint; restart budget exhaustion →
//! lossy degradation with live queries; torn/corrupted checkpoint write →
//! generation fallback on restore. Zero process aborts anywhere.
//!
//! Run with: `cargo test -p ltc-core --features failpoints --test fault_injection`
//!
//! CI runs exactly that and independently asserts (via `--list`) that the
//! suite is non-empty, so the recovery tests can never be skipped silently.
#![cfg(feature = "failpoints")]

use ltc_common::{SignificanceQuery, StreamProcessor, Weights};
use ltc_core::checkpoint::Checkpointer;
use ltc_core::failpoint::{self, FailAction, FireSpec};
use ltc_core::obs::EventKind;
use ltc_core::pipeline::ShardHealth;
use ltc_core::{FaultPolicy, LtcConfig, ParallelLtc, ShardedLtc, SpscRing};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The failpoint registry is process-global, so scenarios must not
/// interleave: every test body runs under this guard and starts/ends with
/// a clean registry.
fn scenario() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match GUARD.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        // A previous scenario panicked mid-test; the registry is still
        // reset below, so the lock itself is fine to reuse.
        Err(poisoned) => poisoned.into_inner(),
    };
    failpoint::clear();
    guard
}

/// Unique scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ltc-fault-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(32)
        .cells_per_bucket(4)
        .weights(Weights::BALANCED)
        .records_per_period(100)
        .seed(13)
        .build()
}

fn runtime(shards: usize, batch: usize) -> ParallelLtc {
    ParallelLtc::with_fault_policy(config(), shards, batch, FaultPolicy::no_backoff())
}

fn restarts_of(health: &[ShardHealth]) -> u32 {
    health
        .iter()
        .map(|h| match h {
            ShardHealth::Healthy { restarts, .. } => *restarts,
            ShardHealth::Lossy { .. } => 0,
        })
        .sum()
}

fn lossy_count(health: &[ShardHealth]) -> usize {
    health
        .iter()
        .filter(|h| matches!(h, ShardHealth::Lossy { .. }))
        .count()
}

// ---------------------------------------------------------------------------
// Acceptance scenario 1: seeded worker panic mid-stream → restart from the
// last checkpoint, stream continues, top-k still answers.

#[test]
fn worker_panic_mid_stream_recovers_and_stream_continues() {
    let _guard = scenario();
    let mut p = runtime(2, 8);
    // A clean first period establishes each shard's checkpoint.
    for i in 0..200u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("healthy runtime");
    // Seed the fault: the next batch any worker handles panics.
    failpoint::configure("worker::batch", FailAction::Panic, FireSpec::once());
    for i in 0..200u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("supervision absorbed the panic");
    failpoint::clear();
    // Exactly one restart happened, nothing degraded...
    let health = p.health();
    assert_eq!(restarts_of(&health), 1, "health: {health:?}");
    assert_eq!(lossy_count(&health), 0);
    // ...the stream continues...
    for i in 0..200u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("still healthy");
    p.finish().expect("still healthy");
    // ...and queries answer (the strict API too — no degradation).
    let top = p.try_top_k(5).expect("no lossy shards");
    assert_eq!(top.len(), 5);
    assert!(p.try_estimate(0).expect("no lossy shards").is_some());
    let _ = p.into_sharded().expect("clean shutdown after recovery");
}

#[test]
fn recovery_restores_exactly_the_last_epoch_boundary() {
    // Single shard, deterministic loss: records after the checkpoint die
    // with the worker, so the recovered table is bit-identical to a
    // reference that never saw them.
    let _guard = scenario();
    let mut p = runtime(1, 8);
    for i in 0..100u64 {
        p.insert(i % 10);
    }
    p.end_period().expect("healthy runtime"); // checkpoint at this boundary
    failpoint::configure("worker::batch", FailAction::Panic, FireSpec::once());
    for i in 0..8u64 {
        p.insert(1_000 + i); // exactly one batch; the worker dies on it
    }
    p.sync().expect("supervision absorbed the panic");
    failpoint::clear();
    assert_eq!(restarts_of(&p.health()), 1);
    p.finish().expect("healthy after restart");
    let recovered = p.into_sharded().expect("no lossy shards");

    let mut reference = ShardedLtc::new(config(), 1);
    for i in 0..100u64 {
        reference.insert(i % 10);
    }
    reference.end_period();
    reference.finalize();
    assert_eq!(
        format!("{:?}", recovered.shard(0)),
        format!("{:?}", reference.shard(0)),
        "recovered shard must be exactly the last epoch boundary"
    );
}

#[test]
fn worker_panic_during_end_period_completes_the_barrier() {
    // The worker dies *processing* the EndPeriod message itself; the
    // supervisor must restore, respawn, and re-send the barrier message so
    // end_period still returns (loom proves the wait can't deadlock; this
    // proves the re-send path).
    let _guard = scenario();
    let mut p = runtime(2, 16);
    for i in 0..300u64 {
        p.insert(i % 30);
    }
    p.end_period().expect("healthy runtime");
    failpoint::configure("worker::end_period", FailAction::Panic, FireSpec::once());
    for i in 0..300u64 {
        p.insert(i % 30);
    }
    p.end_period()
        .expect("barrier completed despite the mid-epoch death");
    failpoint::clear();
    assert_eq!(restarts_of(&p.health()), 1);
    p.finish().expect("healthy after restart");
    assert_eq!(p.try_top_k(3).expect("no lossy shards").len(), 3);
}

// ---------------------------------------------------------------------------
// Acceptance scenario 2: restart budget exhaustion → graceful degradation.

#[test]
fn exhausted_restart_budget_degrades_to_lossy_but_queries_survive() {
    let _guard = scenario();
    let policy = FaultPolicy {
        max_restarts: 2,
        ..FaultPolicy::no_backoff()
    };
    let mut p = ParallelLtc::with_fault_policy(config(), 2, 4, policy);
    // Healthy epoch first, so lossy shards have last-good state to serve.
    for i in 0..200u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("healthy runtime");
    // Every batch panics from now on: each restart dies again until the
    // budget is gone on every shard.
    failpoint::configure("worker::batch", FailAction::Panic, FireSpec::always());
    let mut degraded = false;
    for round in 0..50u64 {
        for i in 0..200u64 {
            p.insert(i % 20);
        }
        if p.end_period().is_err() {
            degraded = true;
            break;
        }
        let _ = round;
    }
    failpoint::clear();
    assert!(degraded, "budget exhaustion must surface as ShardsLost");
    let health = p.health();
    assert!(lossy_count(&health) >= 1, "health: {health:?}");
    // Typed error carries the faults.
    let err = p.end_period().expect_err("still degraded");
    let ltc_core::RuntimeError::ShardsLost { faults } = err;
    assert!(!faults.is_empty());
    assert!(faults[0].message.contains("failpoint: worker::batch"));
    // Best-effort queries still answer from remaining + last-good state.
    assert!(!p.top_k(5).is_empty(), "degraded top-k must still answer");
    assert!(p.estimate(0).is_some(), "heavy id from the healthy epoch");
    // Strict queries refuse, loudly.
    assert!(p.try_top_k(5).is_err());
    // Reassembly still hands the tables back alongside the faults.
    let (sharded, faults) = p.into_sharded_lossy();
    assert!(!faults.is_empty());
    assert!(!sharded.top_k(5).is_empty());
}

// ---------------------------------------------------------------------------
// Acceptance scenario 3: torn / corrupted checkpoint writes are detected on
// restore and roll back to the previous generation.

#[test]
fn torn_checkpoint_write_falls_back_to_previous_generation() {
    let _guard = scenario();
    let scratch = ScratchDir::new("torn");
    let store = Checkpointer::new(scratch.path()).unwrap();
    let mut p = runtime(2, 16);
    for i in 0..400u64 {
        p.insert(i % 25);
    }
    p.end_period().expect("healthy runtime");
    let gen1 = p.checkpoint_to(&store).expect("good checkpoint");
    let expected = p.try_top_k(10).expect("healthy");
    // More stream, then a torn write: the file is published (rename went
    // through) but holds only a prefix of the frame.
    for i in 0..400u64 {
        p.insert(i % 25);
    }
    p.end_period().expect("healthy runtime");
    failpoint::configure(
        "checkpoint::write",
        FailAction::Truncate { keep: 40 },
        FireSpec::once(),
    );
    let gen2 = p.checkpoint_to(&store).expect("write itself succeeds");
    failpoint::clear();
    assert_eq!(gen2, gen1 + 1);
    drop(p);
    // A fresh runtime restores: the torn generation is rejected by frame
    // validation and the previous one is used instead.
    let mut q = runtime(2, 16);
    let restored_gen = q.restore_from(&store).expect("fallback generation");
    assert_eq!(restored_gen, gen1, "rolled back past the torn image");
    assert_eq!(q.try_top_k(10).expect("healthy"), expected);
}

#[test]
fn corrupted_checkpoint_byte_falls_back_to_previous_generation() {
    let _guard = scenario();
    let scratch = ScratchDir::new("corrupt");
    let store = Checkpointer::new(scratch.path()).unwrap();
    let mut p = runtime(1, 16);
    for i in 0..200u64 {
        p.insert(i % 12);
    }
    p.end_period().expect("healthy runtime");
    let gen1 = p.checkpoint_to(&store).expect("good checkpoint");
    for i in 0..200u64 {
        p.insert(i % 12);
    }
    p.end_period().expect("healthy runtime");
    // Flip one body byte mid-frame: CRC must catch it on restore.
    failpoint::configure(
        "checkpoint::write",
        FailAction::CorruptByte { offset: 100 },
        FireSpec::once(),
    );
    p.checkpoint_to(&store).expect("write itself succeeds");
    failpoint::clear();
    drop(p);
    let mut q = runtime(1, 16);
    assert_eq!(q.restore_from(&store).expect("fallback"), gen1);
}

#[test]
fn restore_after_degradation_revives_lossy_shards() {
    // Operator story: runtime degrades, operator restores from the last
    // good checkpoint, every shard (lossy ones included) comes back live
    // with a full retry budget.
    let _guard = scenario();
    let scratch = ScratchDir::new("revive");
    let store = Checkpointer::new(scratch.path()).unwrap();
    let policy = FaultPolicy {
        max_restarts: 1,
        ..FaultPolicy::no_backoff()
    };
    let mut p = ParallelLtc::with_fault_policy(config(), 2, 4, policy);
    for i in 0..200u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("healthy runtime");
    p.checkpoint_to(&store).expect("good checkpoint");
    failpoint::configure("worker::batch", FailAction::Panic, FireSpec::always());
    for _ in 0..20 {
        for i in 0..200u64 {
            p.insert(i % 20);
        }
        if p.end_period().is_err() {
            break;
        }
    }
    failpoint::clear();
    assert!(lossy_count(&p.health()) >= 1, "degraded as arranged");
    p.restore_from(&store).expect("restore revives the runtime");
    assert_eq!(lossy_count(&p.health()), 0, "lossy shards revived");
    // The revived runtime ingests and answers again, end to end.
    for i in 0..200u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("healthy again");
    p.finish().expect("healthy again");
    assert!(p.try_estimate(0).expect("healthy").is_some());
}

// ---------------------------------------------------------------------------
// Observability under faults: every recovery step leaves a metric and a
// journal event behind, and health() points at the journal entry.

#[test]
fn seeded_panic_is_journaled_and_correlated_with_health() {
    let _guard = scenario();
    let mut p = runtime(2, 8);
    for i in 0..200u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("healthy runtime");
    failpoint::configure("worker::batch", FailAction::Panic, FireSpec::once());
    for i in 0..200u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("supervision absorbed the panic");
    failpoint::clear();

    let obs = p.obs().expect("obs on by default");

    // The fault counter carries the typed kind, restarts are counted, and
    // the exposition stays valid mid-recovery.
    let text = obs.render_prometheus();
    ltc_core::obs::validate_exposition(&text).expect("valid during recovery");
    assert!(
        text.contains("ltc_worker_faults_total{kind=\"panic\"} 1"),
        "fault kind counted: {text}"
    );
    let restarts: u64 = text
        .lines()
        .filter(|l| l.starts_with("ltc_worker_restarts_total{"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
        .sum();
    assert_eq!(restarts, 1, "one restart across all shards: {text}");

    // The journal holds the fault + rollback pair, and health() names the
    // fault event's sequence number on exactly the shard that died.
    let events = obs.journal().drain();
    let fault = events
        .iter()
        .find(|e| e.kind == EventKind::WorkerFault)
        .expect("fault journaled");
    assert!(
        events.iter().any(|e| e.kind == EventKind::Rollback),
        "rollback journaled: {events:?}"
    );
    let health = p.health();
    let faulted: Vec<_> = health
        .iter()
        .enumerate()
        .filter(|(_, h)| h.last_fault_seq().is_some())
        .collect();
    assert_eq!(faulted.len(), 1, "exactly one shard faulted: {health:?}");
    let (shard_index, shard_health) = faulted[0];
    assert_eq!(shard_health.last_fault_seq(), Some(fault.seq));
    assert_eq!(fault.shard, Some(shard_index as u64));
    assert_eq!(shard_health.restarts(), 1);
}

#[test]
fn degradation_is_journaled_with_records_lost() {
    let _guard = scenario();
    let policy = FaultPolicy {
        max_restarts: 1,
        ..FaultPolicy::no_backoff()
    };
    let mut p = ParallelLtc::with_fault_policy(config(), 1, 4, policy);
    for i in 0..100u64 {
        p.insert(i % 10);
    }
    p.end_period().expect("healthy runtime");
    failpoint::configure("worker::batch", FailAction::Panic, FireSpec::always());
    for _ in 0..20 {
        for i in 0..100u64 {
            p.insert(i % 10);
        }
        if p.end_period().is_err() {
            break;
        }
    }
    failpoint::clear();
    assert_eq!(lossy_count(&p.health()), 1, "degraded as arranged");

    let obs = p.obs().expect("obs on by default");
    let events = obs.journal().drain();
    assert!(
        events.iter().any(|e| e.kind == EventKind::Degradation),
        "degradation journaled: {events:?}"
    );
    let text = obs.render_prometheus();
    assert!(
        text.contains("ltc_worker_degradations_total{shard=\"0\"} 1"),
        "degradation counted: {text}"
    );
    // Post-degradation drops are visible as lost records.
    let lost: u64 = text
        .lines()
        .filter(|l| l.starts_with("ltc_shard_records_lost_total{"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
        .sum();
    assert!(lost > 0, "lossy mode must count dropped records: {text}");
}

#[test]
fn checkpoint_fallback_is_counted_and_journaled() {
    let _guard = scenario();
    let scratch = ScratchDir::new("obs-fallback");
    let store = Checkpointer::new(scratch.path()).unwrap();
    let mut p = runtime(1, 16);
    for i in 0..200u64 {
        p.insert(i % 12);
    }
    p.end_period().expect("healthy runtime");
    let gen1 = p.checkpoint_to(&store).expect("good checkpoint");
    for i in 0..200u64 {
        p.insert(i % 12);
    }
    p.end_period().expect("healthy runtime");
    failpoint::configure(
        "checkpoint::write",
        FailAction::Truncate { keep: 40 },
        FireSpec::once(),
    );
    p.checkpoint_to(&store).expect("write itself succeeds");
    failpoint::clear();
    drop(p);

    let mut q = runtime(1, 16);
    assert_eq!(q.restore_from(&store).expect("fallback"), gen1);
    let obs = q.obs().expect("obs on by default");
    let text = obs.render_prometheus();
    assert!(
        text.contains("ltc_checkpoint_fallbacks_total 1"),
        "skipped generation counted: {text}"
    );
    let events = obs.journal().drain();
    let restore = events
        .iter()
        .find(|e| e.kind == EventKind::CheckpointRestore)
        .expect("restore journaled");
    assert_eq!(restore.detail, gen1, "journal names the generation used");
}

#[test]
fn queue_stall_failpoint_bumps_the_backpressure_counter() {
    let _guard = scenario();
    failpoint::configure("spsc::push", FailAction::Stall, FireSpec::nth(3));
    let mut p = runtime(1, 8);
    for i in 0..400u64 {
        p.insert(i % 20);
    }
    p.sync().expect("stall is not a fault");
    let text = p.obs().expect("obs on").render_prometheus();
    failpoint::clear();
    let stalls: u64 = text
        .lines()
        .filter(|l| l.starts_with("ltc_shard_queue_stalls_total{"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
        .sum();
    assert!(stalls >= 1, "forced park must count as a stall: {text}");
    p.finish().expect("healthy");
}

// ---------------------------------------------------------------------------
// Queue-stall injection: the hand-off slow path taken deterministically.

#[test]
fn queue_stall_failpoint_forces_the_park_path_without_loss() {
    let _guard = scenario();
    let ring = SpscRing::with_capacity(4);
    failpoint::configure("spsc::push", FailAction::Stall, FireSpec::once());
    // The push takes the full park bookkeeping (Dekker flag + recheck
    // under the mutex) even though the ring has space — and still
    // delivers.
    assert!(ring.push(7u32));
    assert!(ring.push(8u32));
    failpoint::clear();
    assert_eq!(ring.pop(), Some(7));
    assert_eq!(ring.pop(), Some(8));
}

#[test]
fn stalled_pipeline_stream_is_unaffected() {
    // Same stall injected under a real stream: purely a scheduling
    // perturbation, the results are bit-unaffected.
    let _guard = scenario();
    failpoint::configure("spsc::push", FailAction::Stall, FireSpec::nth(3));
    let mut p = runtime(2, 8);
    for i in 0..400u64 {
        p.insert(i % 20);
    }
    p.end_period().expect("stall is not a fault");
    p.finish().expect("stall is not a fault");
    failpoint::clear();
    assert_eq!(restarts_of(&p.health()), 0, "no restart from a stall");
    let mut reference = ShardedLtc::new(config(), 2);
    for i in 0..400u64 {
        reference.insert(i % 20);
    }
    reference.end_period();
    reference.finalize();
    let got = p.into_sharded().expect("healthy");
    assert_eq!(got.top_k(10), reference.top_k(10));
}
