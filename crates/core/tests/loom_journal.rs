//! Model-checks the lock-free MPMC event journal (`src/obs/journal.rs`,
//! a Vyukov bounded ring) under the vendored loom explorer with
//! weak-memory value semantics: `Relaxed` position reads may legally be
//! stale, so every assertion here is *weak-sound* — it holds in every
//! legal weak execution, not just the sequentially consistent ones.
//!
//! What the models prove per interleaving:
//!
//! * **Seq acquisition is exactly-once**: concurrent publishers never
//!   share a claim position; published seqs are distinct and contiguous
//!   from 0 (a dropped event claims nothing, so drops leave no gap).
//! * **Publication is the stamp edge**: a popped event's payload words are
//!   exactly what the publisher wrote — the release store of the stamp and
//!   the acquire load by the drainer are the only ordering, and the weak
//!   explorer would surface a stale payload if that edge were weakened.
//! * **Drop-newest on overflow**: with more claims than capacity and no
//!   drain, exactly `capacity` events publish and the rest are counted in
//!   `dropped()`, never silently lost.
//! * **Monotonic drain**: a single drainer observes strictly increasing
//!   seqs, including across slot recycling (stamp lap arithmetic).
//!
//! Run with: `cargo test -p ltc-core --features loom-check --test loom_journal`
#![cfg(feature = "loom-check")]

use loom::sync::Arc;
use ltc_core::obs::{EventJournal, EventKind};

/// Explore `f` with a budget sized for weak-memory reads-from branching
/// (the default 20k interleavings is not enough to exhaust these models).
fn explore<F>(f: F) -> loom::Report
where
    F: Fn() + Send + Sync + 'static,
{
    let mut builder = loom::Builder::new();
    builder.max_interleavings = 4_000_000;
    let report = builder.check(f);
    assert!(report.complete, "bounded schedule space must be exhausted");
    report
}

#[test]
fn concurrent_publishers_claim_distinct_contiguous_seqs() {
    explore(|| {
        let j = Arc::new(EventJournal::with_capacity(4));
        let publisher = {
            let j = Arc::clone(&j);
            loom::thread::spawn(move || j.publish(EventKind::WorkerFault, Some(0), 1))
        };
        let mine = j.publish(EventKind::Rollback, Some(1), 2);
        let theirs = publisher.join().unwrap();
        // Capacity 4 with two claims: neither publish can even spuriously
        // observe a full ring (stamps never lag a full lap), so both land.
        let (mine, theirs) = (mine.unwrap(), theirs.unwrap());
        assert_ne!(mine, theirs, "claim positions are exactly-once");
        let mut seqs = [mine, theirs];
        seqs.sort_unstable();
        assert_eq!(seqs, [0, 1], "seqs are contiguous from 0");
        assert_eq!(j.dropped(), 0);
        // Main joined both publishers: the drain sees exactly both events,
        // oldest first.
        let drained: Vec<u64> = j.drain().iter().map(|e| e.seq).collect();
        assert_eq!(drained, vec![0, 1]);
    });
}

#[test]
fn popped_payloads_are_exactly_what_the_publisher_wrote() {
    explore(|| {
        let j = Arc::new(EventJournal::with_capacity(2));
        let publisher = {
            let j = Arc::clone(&j);
            loom::thread::spawn(move || {
                assert_eq!(j.publish(EventKind::WorkerFault, Some(3), 42), Some(0));
            })
        };
        // Concurrent pop: None (not yet published) is legal; Some must
        // carry the full payload — the stamp acquire orders the Relaxed
        // payload reads after the publisher's writes, and the weak
        // explorer would produce a stale word if that edge were missing.
        let early = j.pop();
        publisher.join().unwrap();
        let late = j.pop();
        let event = early.or(late).expect("published event must be drainable");
        assert_eq!(event.seq, 0);
        assert_eq!(event.kind, EventKind::WorkerFault);
        assert_eq!(event.shard, Some(3));
        assert_eq!(event.detail, 42);
        assert!(j.pop().is_none(), "exactly one event was published");
    });
}

#[test]
fn overflow_drops_the_newest_and_counts_it() {
    explore(|| {
        let j = Arc::new(EventJournal::with_capacity(2));
        let publisher = {
            let j = Arc::clone(&j);
            loom::thread::spawn(move || {
                let a = j.publish(EventKind::PeriodRollover, None, 0).is_some();
                let b = j.publish(EventKind::PeriodRollover, None, 1).is_some();
                (a, b)
            })
        };
        let c = j.publish(EventKind::WorkerFault, None, 2).is_some();
        let (a, b) = publisher.join().unwrap();
        // Three claims race for two slots with no drain: exactly two
        // publish (in some order) and the third is dropped-newest, counted,
        // and leaves no seq gap.
        let published = [a, b, c].iter().filter(|&&ok| ok).count();
        assert_eq!(published, 2, "capacity bounds successful publishes");
        assert_eq!(j.dropped(), 1, "the refused event is counted");
        let drained: Vec<u64> = j.drain().iter().map(|e| e.seq).collect();
        assert_eq!(drained, vec![0, 1], "no gap from the dropped event");
    });
}

#[test]
fn slot_recycling_keeps_seqs_monotonic_across_laps() {
    explore(|| {
        let j = Arc::new(EventJournal::with_capacity(2));
        let publisher = {
            let j = Arc::clone(&j);
            loom::thread::spawn(move || {
                // Three events through a 2-slot ring: the third reuses a
                // recycled slot if (and only if) the drainer has freed it.
                (0..3)
                    .filter(|&i| j.publish(EventKind::Rollback, None, i).is_some())
                    .count()
            })
        };
        // Concurrent bounded drain: each pop may legally miss (empty or
        // stale position), but whatever it returns must be monotonic.
        let mut seen: Vec<u64> = Vec::new();
        for _ in 0..3 {
            if let Some(event) = j.pop() {
                seen.push(event.seq);
            }
        }
        let published = publisher.join().unwrap();
        seen.extend(j.drain().iter().map(|e| e.seq));
        assert!(
            seen.windows(2).all(|w| w[1] > w[0]),
            "single drainer must see strictly increasing seqs: {seen:?}"
        );
        assert_eq!(
            seen.len(),
            published,
            "every published event is drained exactly once"
        );
        // Claims are contiguous: the drained seqs are exactly 0..published.
        assert_eq!(seen, (0..published as u64).collect::<Vec<_>>());
    });
}

#[test]
fn journal_exploration_is_deterministic() {
    let run = || {
        explore(|| {
            let j = Arc::new(EventJournal::with_capacity(2));
            let publisher = {
                let j = Arc::clone(&j);
                loom::thread::spawn(move || {
                    j.publish(EventKind::Degradation, Some(1), 5);
                })
            };
            let _ = j.pop();
            publisher.join().unwrap();
        })
    };
    let (first, second) = (run(), run());
    assert_eq!(first.interleavings, second.interleavings);
    assert_eq!(first.complete, second.complete);
}
