//! Integration: the multi-threaded [`ParallelLtc`] runtime is equivalent to
//! the single-threaded [`ShardedLtc`] on a realistic workload — same
//! per-shard estimates, same global answers — and the batched hand-off
//! machinery (partial batches, period barriers, reassembly) introduces no
//! drift at any batch size.

use significant_items::core_::{LtcConfig, ParallelLtc, ShardedLtc, Variant};
use significant_items::prelude::*;
use significant_items::workloads::generator::zipf_samples;

const SHARDS: usize = 4;
const RECORDS: usize = 40_000;
const PER_PERIOD: usize = 5_000;

fn config() -> LtcConfig {
    LtcConfig::builder()
        .buckets(64)
        .cells_per_bucket(8)
        .records_per_period(PER_PERIOD as u64)
        .weights(Weights::BALANCED)
        .variant(Variant::FULL)
        .seed(7)
        .build()
}

fn workload() -> Vec<ItemId> {
    zipf_samples(RECORDS, 10_000, 1.1, 42)
}

/// Drive both runtimes over the same periodised stream; return them ready
/// for querying.
fn run_both(batch_size: usize) -> (ShardedLtc, ParallelLtc) {
    let stream = workload();
    let mut reference = ShardedLtc::new(config(), SHARDS);
    let mut parallel = ParallelLtc::with_batch_size(config(), SHARDS, batch_size);
    for chunk in stream.chunks(PER_PERIOD) {
        for &id in chunk {
            reference.insert(id);
        }
        parallel.insert_batch(chunk);
        reference.end_period();
        parallel.end_period().expect("no shard faults in this test");
    }
    reference.finish();
    parallel.finish().expect("no shard faults in this test");
    (reference, parallel)
}

#[test]
fn per_shard_estimates_match_single_threaded() {
    let (reference, parallel) = run_both(256);
    let reassembled = parallel.into_sharded().expect("no shard faults");
    for s in 0..SHARDS {
        // Estimates of every id the reference shard tracks, plus the
        // shard's full ranking, must agree exactly.
        let ref_shard = reference.shard(s);
        let par_shard = reassembled.shard(s);
        let estimates: Vec<Estimate> = ref_shard.top_k(64 * 8);
        assert!(!estimates.is_empty(), "shard {s} tracked nothing");
        for e in &estimates {
            assert_eq!(
                par_shard.estimate(e.id),
                Some(e.value),
                "shard {s}: estimate for id {} diverged",
                e.id
            );
        }
        assert_eq!(
            ref_shard.top_k(100),
            par_shard.top_k(100),
            "shard {s}: ranking diverged"
        );
    }
}

#[test]
fn global_queries_match_while_workers_live() {
    // Query through the live runtime (flush + drain + merged snapshot)
    // rather than after reassembly.
    let (reference, parallel) = run_both(256);
    assert_eq!(reference.top_k(100), parallel.top_k(100));
    for e in reference.top_k(20) {
        assert_eq!(parallel.estimate(e.id), Some(e.value));
    }
}

#[test]
fn equivalence_holds_at_awkward_batch_sizes() {
    // Batch sizes that never align with period boundaries, including 1
    // (every record its own message) — the barrier must still deliver
    // identical period placement.
    for batch_size in [1usize, 7, 333] {
        let stream = workload();
        let mut reference = ShardedLtc::new(config(), SHARDS);
        let mut parallel = ParallelLtc::with_batch_size(config(), SHARDS, batch_size);
        for chunk in stream.chunks(PER_PERIOD) {
            for &id in chunk {
                reference.insert(id);
                parallel.insert(id);
            }
            reference.end_period();
            parallel.end_period().expect("no shard faults");
        }
        reference.finish();
        parallel.finish().expect("no shard faults");
        assert_eq!(
            reference.top_k(50),
            parallel.top_k(50),
            "batch_size {batch_size} diverged"
        );
    }
}
