//! End-to-end integration tests: the full pipeline (workload generation →
//! algorithms → oracle → metrics) at a reduced scale, asserting the *shape*
//! of the paper's headline results.

use significant_items::common::{MemoryBudget, Weights};
use significant_items::core_::Variant;
use significant_items::eval::algorithms::{build_algorithm, AlgoSpec, BuildParams};
use significant_items::eval::{run_algorithm, Oracle};
use significant_items::workloads::{generate, network_like, StreamSpec};

fn test_stream(seed: u64) -> significant_items::workloads::GeneratedStream {
    // Network-profile shape at 1/200 scale: 50k records, 7.5k items, 100
    // periods — small enough for debug-mode CI, structured enough to rank
    // algorithms.
    let spec = StreamSpec {
        seed,
        ..network_like().scaled_down(200).with_periods(100)
    };
    generate(&spec)
}

fn run_lineup(
    lineup: Vec<AlgoSpec>,
    budget_kb: usize,
    k: usize,
    weights: Weights,
    seed: u64,
) -> Vec<(&'static str, f64, f64)> {
    let stream = test_stream(seed);
    let oracle = Oracle::build(&stream);
    let truth = oracle.top_k(k, &weights);
    let params = BuildParams {
        budget: MemoryBudget::kilobytes(budget_kb),
        k,
        weights,
        records_per_period: stream.layout.records_per_period().unwrap(),
        seed: 99,
    };
    lineup
        .into_iter()
        .map(|spec| {
            let mut alg = build_algorithm(spec, &params);
            let outcome = run_algorithm(alg.as_mut(), &stream, k);
            (
                outcome.name,
                // Tie-aware: at this reduced scale several items can tie at
                // the top-k boundary, where any of them is a correct answer.
                outcome.tie_aware_precision(&truth, &oracle, &weights),
                outcome.are(k, &oracle, &weights),
            )
        })
        .collect()
}

/// Precision ties at this scale are hash noise: the scaled-down test
/// streams (50k records) cannot reproduce the paper's 10M-record regime
/// where baselines collapse outright — the full-scale reproduction lives in
/// the `ltc-bench` fig* binaries. Here we assert the robust shape: LTC's
/// precision is within noise of the best, and its ARE strictly dominates
/// (the no-overestimation + Long-tail-Replacement advantage shows at any
/// scale).
const PRECISION_NOISE: f64 = 0.05;

#[test]
fn ltc_wins_frequent_items_at_tight_memory() {
    // Fig. 9/10 shape at reduced scale.
    let results = run_lineup(AlgoSpec::frequent_lineup(), 4, 50, Weights::FREQUENT, 1);
    let (ltc_name, ltc_p, ltc_are) = results[0];
    assert_eq!(ltc_name, "LTC");
    for &(name, p, a) in &results[1..] {
        assert!(
            ltc_p + PRECISION_NOISE >= p,
            "LTC precision {ltc_p} below {name}'s {p} (full: {results:?})"
        );
        assert!(
            ltc_are < a,
            "LTC ARE {ltc_are} not below {name}'s {a} ({results:?})"
        );
    }
    assert!(ltc_p >= 0.8, "LTC precision {ltc_p} too low at 4 KB");
}

#[test]
fn ltc_wins_persistent_items() {
    // Fig. 12/13 shape. PIE receives the budget per period (§V-C) — the
    // paper itself observes that with T× memory PIE can reach parity
    // ("the reason for the perfect performance of PIE…"), so PIE is held to
    // the noise band on precision but not on ARE (its decode is near-exact
    // when memory is ample). The sketch-based baselines collapse only once
    // the per-period Bloom filter and sketch are overloaded, which needs a
    // larger item universe than the other tests use.
    let spec = StreamSpec {
        seed: 2,
        ..network_like().scaled_down(40).with_periods(100)
    };
    let stream = generate(&spec);
    let oracle = Oracle::build(&stream);
    let k = 50;
    let weights = Weights::PERSISTENT;
    let truth = oracle.top_k(k, &weights);
    let params = BuildParams {
        budget: MemoryBudget::kilobytes(8),
        k,
        weights,
        records_per_period: stream.layout.records_per_period().unwrap(),
        seed: 99,
    };
    let results: Vec<(&'static str, f64, f64)> = AlgoSpec::persistent_lineup()
        .into_iter()
        .map(|spec| {
            let mut alg = build_algorithm(spec, &params);
            let outcome = run_algorithm(alg.as_mut(), &stream, k);
            (
                outcome.name,
                outcome.tie_aware_precision(&truth, &oracle, &weights),
                outcome.are(k, &oracle, &weights),
            )
        })
        .collect();
    let (_, ltc_p, ltc_are) = results[0];
    for &(name, p, a) in &results[1..] {
        if name == "PIE" {
            // PIE's T× grant (budget × 100 periods) makes it strong at this
            // scale — the paper sees the same on its smallest dataset
            // ("the reason for the perfect performance of PIE is that the
            // memory size is T times that of the other three algorithms",
            // §V-G1). Check PIE functions; the honest equal-universe
            // comparison happens at full scale in the fig12 bench.
            assert!(p >= 0.5, "PIE with T× memory unexpectedly weak: {p}");
            continue;
        }
        assert!(
            ltc_p + PRECISION_NOISE >= p,
            "LTC {ltc_p} below {name} {p} ({results:?})"
        );
        assert!(ltc_are < a, "LTC ARE {ltc_are} not below {name} {a}");
    }
    // The paper's Fig. 12(b) reads ~75% at its tightest point; our analogous
    // tight point lands in the same band.
    assert!(ltc_p >= 0.55, "LTC persistent precision {ltc_p} too low");
}

#[test]
fn ltc_wins_significant_items_across_weightings() {
    // Fig. 14/15 shape, on the paper's three α:β pairs.
    for (i, weights) in [
        Weights::new(1.0, 10.0),
        Weights::new(1.0, 1.0),
        Weights::new(10.0, 1.0),
    ]
    .into_iter()
    .enumerate()
    {
        let results = run_lineup(AlgoSpec::significant_lineup(), 6, 50, weights, 3 + i as u64);
        let (_, ltc_p, ltc_are) = results[0];
        for &(name, p, a) in &results[1..] {
            assert!(
                ltc_p + PRECISION_NOISE >= p,
                "{weights}: LTC {ltc_p} below {name} {p} ({results:?})"
            );
            assert!(
                ltc_are < a,
                "{weights}: LTC ARE {ltc_are} not below {name} {a} ({results:?})"
            );
        }
    }
}

#[test]
fn long_tail_replacement_improves_precision() {
    // Fig. 8 shape: LTR on vs off at a tight budget.
    let k = 100;
    let weights = Weights::BALANCED;
    let mut with = Vec::new();
    for variant in [Variant::FULL, Variant::DEVIATION_ONLY] {
        let stream = test_stream(7);
        let oracle = Oracle::build(&stream);
        let truth = oracle.top_k(k, &weights);
        let mut alg = build_algorithm(
            AlgoSpec::Ltc(variant),
            &BuildParams {
                budget: MemoryBudget::kilobytes(6),
                k,
                weights,
                records_per_period: stream.layout.records_per_period().unwrap(),
                seed: 99,
            },
        );
        let outcome = run_algorithm(alg.as_mut(), &stream, k);
        with.push(outcome.precision(&truth));
    }
    assert!(
        with[0] >= with[1],
        "LTR hurt precision: with {} vs without {}",
        with[0],
        with[1]
    );
}

#[test]
fn reported_set_is_k_sized_and_sorted() {
    let stream = test_stream(11);
    let params = BuildParams {
        budget: MemoryBudget::kilobytes(32),
        k: 25,
        weights: Weights::BALANCED,
        records_per_period: stream.layout.records_per_period().unwrap(),
        seed: 1,
    };
    for spec in AlgoSpec::frequent_lineup() {
        let mut alg = build_algorithm(spec, &params);
        let outcome = run_algorithm(alg.as_mut(), &stream, 25);
        assert_eq!(outcome.reported.len(), 25, "{}", outcome.name);
        for w in outcome.reported.windows(2) {
            assert!(w[0].value >= w[1].value, "{} unsorted", outcome.name);
        }
    }
}

#[test]
fn more_memory_never_hurts_ltc_much() {
    // Precision should be (weakly) monotone in memory, modulo hash noise.
    let stream = test_stream(13);
    let oracle = Oracle::build(&stream);
    let weights = Weights::BALANCED;
    let truth = oracle.top_k(100, &weights);
    let mut last = 0.0f64;
    for kb in [4, 16, 64] {
        let mut alg = build_algorithm(
            AlgoSpec::Ltc(Variant::FULL),
            &BuildParams {
                budget: MemoryBudget::kilobytes(kb),
                k: 100,
                weights,
                records_per_period: stream.layout.records_per_period().unwrap(),
                seed: 5,
            },
        );
        let p = run_algorithm(alg.as_mut(), &stream, 100).precision(&truth);
        assert!(
            p + 0.05 >= last,
            "precision dropped from {last} to {p} at {kb} KB"
        );
        last = p;
    }
    assert!(last >= 0.95, "64 KB should essentially solve this stream");
}
