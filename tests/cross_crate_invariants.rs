//! Cross-crate property tests: invariants that tie the whole stack together
//! (generator → algorithms → oracle).

use proptest::prelude::*;
use significant_items::common::{MemoryBudget, SignificanceQuery, Weights};
use significant_items::core_::{Ltc, LtcConfig, Variant};
use significant_items::eval::Oracle;
use significant_items::workloads::{generate, StreamSpec};

fn spec_strategy() -> impl Strategy<Value = StreamSpec> {
    (
        1_000u64..8_000,
        50u64..500,
        4u64..30,
        0.5f64..1.4,
        0.0f64..0.6,
        0.0f64..0.3,
        0u64..1_000,
    )
        .prop_map(|(n, m, t, skew, burst, periodic, seed)| StreamSpec {
            name: "prop",
            total_records: n,
            distinct_items: m,
            periods: t,
            zipf_skew: skew,
            burst_fraction: burst,
            periodic_fraction: periodic,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem IV.1 at system scale: basic+DE LTC never overestimates the
    /// significance of any item, for generated workloads of any shape.
    #[test]
    fn no_overestimation_on_generated_workloads(spec in spec_strategy()) {
        let stream = generate(&spec);
        let oracle = Oracle::build(&stream);
        let weights = Weights::BALANCED;
        let mut ltc = Ltc::new(
            LtcConfig::with_memory(MemoryBudget::kilobytes(4), 8)
                .weights(weights)
                .records_per_period(stream.layout.records_per_period().unwrap())
                .variant(Variant::DEVIATION_ONLY)
                .seed(spec.seed)
                .build(),
        );
        for period in stream.periods() {
            for &id in period {
                ltc.insert(id);
            }
            ltc.end_period();
        }
        ltc.finalize();
        for (id, f, p) in oracle.iter() {
            if let Some(est) = ltc.estimate(id) {
                let real = weights.significance(f, p);
                prop_assert!(
                    est <= real + 1e-9,
                    "id {id}: ŝ {est} > s {real} (f={f}, p={p})"
                );
            }
        }
    }

    /// The oracle and a brute-force recount agree (two independent paths
    /// over the same stream).
    #[test]
    fn oracle_matches_brute_force(spec in spec_strategy()) {
        let stream = generate(&spec);
        let oracle = Oracle::build(&stream);
        // Brute force with plain std collections.
        let mut freq = std::collections::HashMap::new();
        let mut pers = std::collections::HashMap::new();
        for period in stream.periods() {
            let distinct: std::collections::HashSet<_> = period.iter().copied().collect();
            for &id in period {
                *freq.entry(id).or_insert(0u64) += 1;
            }
            for id in distinct {
                *pers.entry(id).or_insert(0u64) += 1;
            }
        }
        prop_assert_eq!(oracle.distinct_items(), freq.len());
        for (&id, &f) in &freq {
            prop_assert_eq!(oracle.frequency(id), f);
            prop_assert_eq!(oracle.persistency(id), pers[&id]);
        }
    }

    /// Every algorithm in the frequent line-up reports at most k items, all
    /// with finite non-negative values, on arbitrary workloads.
    #[test]
    fn reports_are_well_formed(spec in spec_strategy(), k in 1usize..40) {
        use significant_items::eval::algorithms::{build_algorithm, AlgoSpec, BuildParams};
        use significant_items::eval::run_algorithm;
        let stream = generate(&spec);
        let params = BuildParams {
            budget: MemoryBudget::kilobytes(4),
            k,
            weights: Weights::FREQUENT,
            records_per_period: stream.layout.records_per_period().unwrap(),
            seed: spec.seed ^ 0xabc,
        };
        for algo in AlgoSpec::frequent_lineup() {
            let mut alg = build_algorithm(algo, &params);
            let outcome = run_algorithm(alg.as_mut(), &stream, k);
            prop_assert!(outcome.reported.len() <= k);
            for e in &outcome.reported {
                prop_assert!(e.value.is_finite() && e.value >= 0.0, "{}", outcome.name);
            }
        }
    }
}

/// Deterministic: the same spec and seed reproduce identical experiment
/// outcomes end-to-end (generation, hashing, reporting).
#[test]
fn full_pipeline_is_deterministic() {
    let spec = StreamSpec {
        name: "det",
        total_records: 30_000,
        distinct_items: 3_000,
        periods: 30,
        zipf_skew: 1.0,
        burst_fraction: 0.3,
        periodic_fraction: 0.1,
        seed: 424_242,
    };
    let run = || {
        let stream = generate(&spec);
        let mut ltc = Ltc::new(
            LtcConfig::with_memory(MemoryBudget::kilobytes(8), 8)
                .weights(Weights::BALANCED)
                .records_per_period(stream.layout.records_per_period().unwrap())
                .seed(7)
                .build(),
        );
        for period in stream.periods() {
            for &id in period {
                ltc.insert(id);
            }
            ltc.end_period();
        }
        ltc.finalize();
        ltc.top_k(100)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
