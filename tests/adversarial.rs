//! Differential tests on adversarial stream shapes: LTC against the exact
//! oracle where its assumptions are weakest (uniform frequencies, one-shot
//! floods, regime changes). These pin *behavioural* expectations the paper
//! states in prose — including the §III-D warning that Long-tail
//! Replacement needs a long tail.

use significant_items::common::{MemoryBudget, SignificanceQuery, StreamProcessor, Weights};
use significant_items::core_::{Ltc, LtcConfig, Variant};
use significant_items::eval::{metrics, Oracle};
use significant_items::workloads::adversarial;
use significant_items::workloads::GeneratedStream;

fn run_ltc(stream: &GeneratedStream, kb: usize, weights: Weights, variant: Variant) -> Ltc {
    let mut ltc = Ltc::new(
        LtcConfig::with_memory(MemoryBudget::kilobytes(kb), 8)
            .weights(weights)
            .records_per_period(stream.layout.records_per_period().unwrap())
            .variant(variant)
            .seed(17)
            .build(),
    );
    for period in stream.periods() {
        for &id in period {
            ltc.insert(id);
        }
        ltc.end_period();
    }
    ltc.finalize();
    ltc
}

#[test]
fn sawtooth_anchor_beats_every_tooth() {
    // The use-case-3 scenario in its purest form: each period a one-shot
    // flood out-shouts the steady anchor 9:1 locally, but only the anchor is
    // significant under persistency-aware weights.
    let stream = adversarial::sawtooth(900, 100, 50);
    let ltc = run_ltc(&stream, 16, Weights::new(1.0, 500.0), Variant::FULL);
    let top = ltc.top_k(1);
    assert_eq!(top[0].id, 0, "anchor must win under β-heavy weights");
    // And the anchor's persistency is tracked essentially exactly.
    let p = ltc.persistency_of(0).unwrap();
    assert!(p >= 48, "anchor persistency {p} of 50");
}

#[test]
fn all_distinct_stream_reports_only_ephemera() {
    // Nothing repeats: every estimate must stay tiny (no invented heavy
    // hitters), in every variant.
    let stream = adversarial::all_distinct(1_000, 10);
    for variant in [Variant::BASIC, Variant::FULL] {
        let ltc = run_ltc(&stream, 8, Weights::BALANCED, variant);
        let top = ltc.top_k(5);
        for e in &top {
            assert!(
                e.value <= 4.0,
                "{variant:?}: invented significance {} for {}",
                e.value,
                e.id
            );
        }
    }
}

#[test]
fn uniform_stream_no_overestimation_without_ltr() {
    // Round-robin uniform frequencies: the regime where LTR's assumption
    // fails. The DE-only variant must still never overestimate (Theorem
    // IV.1 is distribution-free).
    let stream = adversarial::round_robin(500, 1_000, 20);
    let oracle = Oracle::build(&stream);
    let weights = Weights::BALANCED;
    let ltc = run_ltc(&stream, 8, weights, Variant::DEVIATION_ONLY);
    for (id, f, p) in oracle.iter() {
        if let Some(est) = ltc.estimate(id) {
            let real = weights.significance(f, p);
            assert!(est <= real + 1e-9, "id {id}: {est} > {real}");
        }
    }
}

#[test]
fn uniform_stream_ltr_overestimates_but_ranking_is_harmless() {
    // With LTR on a uniform stream, admitted items inherit a neighbour's
    // (identical) count — overestimation happens by design. The reported
    // values may exceed truth, but since *every* item has the same true
    // significance, tie-aware precision stays perfect.
    let stream = adversarial::round_robin(200, 1_000, 10);
    let oracle = Oracle::build(&stream);
    let weights = Weights::BALANCED;
    let ltc = run_ltc(&stream, 8, weights, Variant::FULL);
    let truth = oracle.top_k(50, &weights);
    let reported = ltc.top_k(50);
    let p = metrics::tie_aware_precision(&reported, &truth, &oracle, &weights);
    assert_eq!(p, 1.0, "uniform ties: any selection is correct");
}

#[test]
fn two_phase_regime_change_tracked() {
    // After the population flips, the old cohort stops accruing
    // significance; with balanced weights the new cohort must dominate
    // frequency-wise only at parity — total f and p are equal across
    // cohorts, so both cohorts appear. With windowed scoring (extension),
    // only the new cohort survives.
    use significant_items::core_::WindowedLtc;

    let stream = adversarial::two_phase(20, 400, 40);
    // Full-stream LTC: both cohorts have identical totals, so their
    // estimates must agree (the reported top-k then falls to the id
    // tie-break, which is fine).
    let ltc = run_ltc(&stream, 16, Weights::BALANCED, Variant::FULL);
    let old_est = ltc.estimate(0).expect("cohort A tracked");
    let new_est = ltc.estimate(1_000_000).expect("cohort B tracked");
    let ratio = old_est / new_est;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "all-time view should score cohorts equally: {old_est} vs {new_est}"
    );

    // Windowed LTC (last 8 periods): the dead cohort must vanish.
    let mut wltc = WindowedLtc::new(128, 8, Weights::BALANCED, 8, 17);
    for period in stream.periods() {
        for &id in period {
            wltc.insert(id);
        }
        wltc.end_period();
    }
    let wids: Vec<u64> = wltc.top_k(10).iter().map(|e| e.id).collect();
    assert!(
        wids.iter().all(|&id| id >= 1_000_000),
        "windowed view must only contain the live cohort: {wids:?}"
    );
}

#[test]
fn sharded_matches_unsharded_on_adversarial_stream() {
    // Sharding must not change per-item estimates (same item → one shard →
    // smaller table but also proportionally fewer colliding items).
    use significant_items::core_::ShardedLtc;

    let stream = adversarial::sawtooth(90, 10, 30);
    let cfg = LtcConfig::with_memory(MemoryBudget::kilobytes(8), 8)
        .weights(Weights::new(1.0, 100.0))
        .records_per_period(stream.layout.records_per_period().unwrap())
        .seed(17)
        .build();
    let mut sharded = ShardedLtc::new(cfg, 4);
    for period in stream.periods() {
        for &id in period {
            sharded.insert(id);
        }
        sharded.end_period();
    }
    sharded.finalize();
    assert_eq!(sharded.top_k(1)[0].id, 0, "anchor wins in the sharded view");
}
