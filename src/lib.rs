//! # significant-items
//!
//! A complete Rust implementation of **LTC (Long-Tail CLOCK)** from
//! *"Finding Significant Items in Data Streams"* (Yang, Zhang, Yang, Huang,
//! Li — ICDE 2019), together with every baseline the paper evaluates against
//! and the full experiment harness that regenerates the paper's figures.
//!
//! An item's **significance** combines how *frequent* it is (total number of
//! appearances `f`) and how *persistent* it is (number of stream periods `p`
//! in which it appears at least once):
//!
//! ```text
//! s = α·f + β·p
//! ```
//!
//! LTC finds the top-k items by significance in one pass, in a few tens of
//! kilobytes, with no overestimation error (basic variant) and accuracy far
//! beyond combining a heavy-hitter sketch with a persistence sketch.
//!
//! ## Quick start
//!
//! ```
//! use significant_items::prelude::*;
//!
//! // 100 buckets x 8 cells, significance = 1*f + 1*p,
//! // count-driven periods of 1000 records each.
//! let config = LtcConfig::builder()
//!     .buckets(100)
//!     .cells_per_bucket(8)
//!     .weights(Weights::new(1.0, 1.0))
//!     .records_per_period(1000)
//!     .build();
//! let mut ltc = Ltc::new(config);
//!
//! for period in 0..10u64 {
//!     for i in 0..1000u64 {
//!         // item 7 is both frequent and persistent; the rest is noise
//!         let id = if i % 10 == 0 { 7 } else { period * 1000 + i };
//!         ltc.insert(id);
//!     }
//!     ltc.end_period();
//! }
//!
//! let top = ltc.top_k(1);
//! assert_eq!(top[0].id, 7);
//! ```
//!
//! ## Crate map
//!
//! | need | go to |
//! |---|---|
//! | the LTC structure itself | [`ltc_core`] (re-exported as [`core_`]) |
//! | baselines (Space-Saving, Lossy Counting, Misra-Gries, CM/CU/Count sketches, Bloom) | [`baselines`] |
//! | the PIE persistent-items baseline | [`pie`] |
//! | synthetic workloads mirroring the paper's datasets | [`workloads`] |
//! | ground truth, metrics, theoretical bounds, experiment runner | [`eval`] |
//! | shared ids/traits/weights/memory model | [`common`] |
//! | Bob Hash & friends | [`hash`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ltc_baselines as baselines;
pub use ltc_common as common;
pub use ltc_core as core_;
pub use ltc_eval as eval;
pub use ltc_hash as hash;
pub use ltc_pie as pie;
pub use ltc_workloads as workloads;

pub mod keyed;

/// One-line import for applications.
pub mod prelude {
    pub use crate::keyed::KeyedLtc;
    pub use ltc_common::{
        BatchStreamProcessor, Estimate, ItemId, MemoryBudget, PeriodLayout, SignificanceQuery,
        StreamProcessor, Weights,
    };
    pub use ltc_core::{Ltc, LtcConfig, ParallelLtc, ShardedLtc, Variant, WindowedLtc};
}
