//! An adapter that lets LTC track arbitrary hashable keys (strings, tuples,
//! IP addresses, …) instead of pre-assigned `u64` ids.
//!
//! The underlying structures work on [`ItemId`]s for speed. `KeyedLtc`
//! hashes each key to an id with Bob Hash and keeps a small id→key side
//! table *only for ids currently resident in the LTC table's candidate set*,
//! so reported top-k results can be translated back to keys. Memory for the
//! side table is bounded by the number of LTC cells, not the stream size.

use ltc_common::{Estimate, ItemId, SignificanceQuery};
use ltc_core::Ltc;
use ltc_hash::{bob_hash_bytes, FxHashMap};
use std::hash::Hash;

/// LTC over arbitrary hashable keys. See the module docs.
pub struct KeyedLtc<K> {
    inner: Ltc,
    names: FxHashMap<ItemId, K>,
    seed: u32,
}

/// A top-k result translated back to the caller's key type.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedEstimate<K> {
    /// The reported key.
    pub key: K,
    /// Its estimated significance.
    pub value: f64,
}

impl<K: Hash + Eq + Clone + serde_bytes_like::AsBytes> KeyedLtc<K> {
    /// Wrap an LTC instance. `seed` drives key→id hashing.
    pub fn new(inner: Ltc, seed: u32) -> Self {
        Self {
            inner,
            names: FxHashMap::default(),
            seed,
        }
    }

    fn id_of(&self, key: &K) -> ItemId {
        bob_hash_bytes(key.as_bytes(), self.seed)
    }

    /// Insert one occurrence of `key` (count-driven tables).
    pub fn insert(&mut self, key: &K) {
        let id = self.id_of(key);
        self.inner.insert(id);
        self.remember(id, key);
    }

    /// Insert one occurrence of `key` at `time` (time-driven tables).
    pub fn insert_at(&mut self, key: &K, time: u64) {
        let id = self.id_of(key);
        self.inner.insert_at(id, time);
        self.remember(id, key);
    }

    /// Track the name only while the id is resident; prune lazily when the
    /// side table outgrows the candidate set by 2x.
    fn remember(&mut self, id: ItemId, key: &K) {
        if self.inner.contains(id) {
            self.names.entry(id).or_insert_with(|| key.clone());
            if self.names.len() > 2 * self.inner.capacity_cells() {
                let inner = &self.inner;
                self.names.retain(|&id, _| inner.contains(id));
            }
        }
    }

    /// Signal a period boundary.
    pub fn end_period(&mut self) {
        self.inner.end_period();
    }

    /// Harvest the final period's flags (call once after the stream, or any
    /// time a fresh snapshot is wanted — see [`Ltc::finalize`]).
    pub fn finish(&mut self) {
        self.inner.finalize();
    }

    /// Estimated significance of `key`, if tracked.
    pub fn estimate(&self, key: &K) -> Option<f64> {
        self.inner.estimate(self.id_of(key))
    }

    /// Top-k by significance, translated back to keys. Ids whose key was
    /// never captured (possible only if the id entered the table before this
    /// wrapper saw it) are dropped.
    pub fn top_k(&self, k: usize) -> Vec<KeyedEstimate<K>> {
        self.inner
            .top_k(k)
            .into_iter()
            .filter_map(|Estimate { id, value }| {
                self.names.get(&id).map(|key| KeyedEstimate {
                    key: key.clone(),
                    value,
                })
            })
            .collect()
    }

    /// Access the wrapped LTC.
    pub fn inner(&self) -> &Ltc {
        &self.inner
    }
}

/// Minimal "give me bytes to hash" abstraction so `KeyedLtc` works for the
/// common key shapes without a serde dependency on the hot path.
pub mod serde_bytes_like {
    /// Types that expose a stable byte representation for hashing.
    pub trait AsBytes {
        /// The bytes to hash. Must be stable for equal values.
        fn as_bytes(&self) -> &[u8];
    }

    impl AsBytes for String {
        fn as_bytes(&self) -> &[u8] {
            self.as_str().as_bytes()
        }
    }

    impl AsBytes for &str {
        fn as_bytes(&self) -> &[u8] {
            str::as_bytes(self)
        }
    }

    impl AsBytes for Vec<u8> {
        fn as_bytes(&self) -> &[u8] {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltc_core::LtcConfig;

    fn small_ltc() -> Ltc {
        Ltc::new(
            LtcConfig::builder()
                .buckets(64)
                .cells_per_bucket(8)
                .records_per_period(100)
                .build(),
        )
    }

    #[test]
    fn string_keys_roundtrip() {
        let mut k = KeyedLtc::new(small_ltc(), 1);
        for _ in 0..50 {
            k.insert(&"alice".to_string());
        }
        for i in 0..20 {
            k.insert(&format!("noise-{i}"));
        }
        k.end_period();
        let top = k.top_k(1);
        assert_eq!(top[0].key, "alice");
        assert!(k.estimate(&"alice".to_string()).unwrap() >= 50.0);
    }

    #[test]
    fn unseen_key_estimates_none() {
        let k = KeyedLtc::<String>::new(small_ltc(), 1);
        assert_eq!(k.estimate(&"ghost".to_string()), None);
    }
}
