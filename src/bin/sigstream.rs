//! `sigstream` — find significant items in a stream file with LTC.
//!
//! ```text
//! usage: sigstream [OPTIONS] [FILE]
//!
//! Reads `key[,timestamp]` lines (CSV/TSV/space separated; `#` comments)
//! from FILE or stdin and reports the top-k significant items.
//!
//! options:
//!   -w, --weights A:B     significance weights alpha:beta     [1:1]
//!   -m, --memory KB       memory budget in KB                 [64]
//!   -k, --top K           how many items to report            [10]
//!   -p, --period N        count-driven: records per period    [10000]
//!   -t, --period-time T   time-driven: timestamp units per period
//!                         (input lines must carry timestamps)
//!   -d, --depth D         cells per bucket                    [8]
//!       --every P         also print top-k every P periods
//!       --basic           disable both optimizations (paper's basic LTC)
//!       --trace           input is a binary .ltct trace (periods included;
//!                         -p/-t are ignored, the trace's boundaries drive)
//!   -h, --help            this text
//! ```
//!
//! Example: the 50 most significant source IPs of a packet log, weighting a
//! persistent day as heavily as 1000 packets, one period per hour:
//!
//! ```sh
//! sigstream -w 1:1000 -m 128 -k 50 -t 3600000 access.log
//! ```

use significant_items::common::{SignificanceQuery, Weights};
use significant_items::core_::{Ltc, LtcConfig, Variant};
use significant_items::hash::FxHashMap;
use significant_items::workloads::trace::key_to_id;
use std::io::{self, BufRead, BufReader};
use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
struct Args {
    weights: Weights,
    memory_kb: usize,
    k: usize,
    period: PeriodArg,
    depth: usize,
    every: Option<u64>,
    basic: bool,
    trace: bool,
    file: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeriodArg {
    Count(u64),
    Time(u64),
}

impl Default for Args {
    fn default() -> Self {
        Args {
            weights: Weights::BALANCED,
            memory_kb: 64,
            k: 10,
            period: PeriodArg::Count(10_000),
            depth: 8,
            every: None,
            basic: false,
            trace: false,
            file: None,
        }
    }
}

const USAGE: &str =
    "usage: sigstream [-w A:B] [-m KB] [-k K] [-p N | -t T] [-d D] [--every P] [--basic] [FILE]
Reads `key[,timestamp]` lines from FILE or stdin; reports top-k significant items.
Run with --help for details.";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter().peekable();
    let next_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-w" | "--weights" => {
                args.weights = next_value(&mut it, arg)?.parse()?;
            }
            "-m" | "--memory" => {
                args.memory_kb = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("bad --memory: {e}"))?;
            }
            "-k" | "--top" => {
                args.k = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "-p" | "--period" => {
                let n: u64 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("bad --period: {e}"))?;
                args.period = PeriodArg::Count(n);
            }
            "-t" | "--period-time" => {
                let t: u64 = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("bad --period-time: {e}"))?;
                args.period = PeriodArg::Time(t);
            }
            "-d" | "--depth" => {
                args.depth = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|e| format!("bad --depth: {e}"))?;
            }
            "--every" => {
                args.every = Some(
                    next_value(&mut it, arg)?
                        .parse()
                        .map_err(|e| format!("bad --every: {e}"))?,
                );
            }
            "--basic" => args.basic = true,
            "--trace" => args.trace = true,
            other if other.starts_with('-') && other.len() > 1 => {
                return Err(format!("unknown option {other}\n{USAGE}"));
            }
            file => {
                if args.file.is_some() {
                    return Err(format!("multiple input files\n{USAGE}"));
                }
                args.file = Some(file.to_string());
            }
        }
    }
    if args.k == 0 || args.memory_kb == 0 || args.depth == 0 {
        return Err("k, memory and depth must be positive".into());
    }
    Ok(args)
}

fn build_table(args: &Args) -> Ltc {
    let builder = LtcConfig::with_memory(
        significant_items::common::MemoryBudget::kilobytes(args.memory_kb),
        args.depth,
    )
    .weights(args.weights)
    .variant(if args.basic {
        Variant::BASIC
    } else {
        Variant::FULL
    });
    let builder = match args.period {
        PeriodArg::Count(n) => builder.records_per_period(n),
        PeriodArg::Time(t) => builder.time_units_per_period(t),
    };
    Ltc::new(builder.build())
}

/// Bounded id→display-name memory, pruned against the live candidate set.
struct Names {
    map: FxHashMap<u64, String>,
}

impl Names {
    fn remember(&mut self, ltc: &Ltc, id: u64, key: &str) {
        if ltc.contains(id) {
            self.map.entry(id).or_insert_with(|| key.to_string());
            if self.map.len() > 2 * ltc.capacity_cells() {
                self.map.retain(|&id, _| ltc.contains(id));
            }
        }
    }

    fn get(&self, id: u64) -> String {
        self.map.get(&id).cloned().unwrap_or_else(|| id.to_string())
    }
}

fn report(ltc: &Ltc, names: &Names, k: usize, label: &str) {
    println!("# top-{k} {label}");
    for (rank, e) in ltc.top_k(k).iter().enumerate() {
        println!("{:>4}  {:<30} {}", rank + 1, names.get(e.id), e.value);
    }
}

/// One parsed input line, keeping the raw key text for display.
struct Row {
    key: String,
    id: u64,
    time: Option<u64>,
}

fn parse_lines(input: impl BufRead) -> Result<Vec<Row>, String> {
    let mut out = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, [',', '\t', ' ']);
        let key = parts.next().expect("splitn yields at least one part");
        let time = match parts.next() {
            Some(t) if !t.trim().is_empty() => Some(
                t.trim()
                    .parse::<u64>()
                    .map_err(|e| format!("line {}: bad timestamp {t:?}: {e}", lineno + 1))?,
            ),
            _ => None,
        };
        out.push(Row {
            key: key.trim().to_string(),
            id: key_to_id(key),
            time,
        });
    }
    Ok(out)
}

fn run(args: &Args, input: impl BufRead) -> Result<(), String> {
    let records = parse_lines(input)?;
    if records.is_empty() {
        return Err("no records in input".into());
    }
    let mut ltc = build_table(args);
    let mut names = Names {
        map: FxHashMap::default(),
    };

    let mut since_boundary = 0u64;
    let mut periods_done = 0u64;
    for (i, Row { key, id, time }) in records.iter().enumerate() {
        match args.period {
            PeriodArg::Count(n) => {
                ltc.insert(*id);
                since_boundary += 1;
                if since_boundary == n {
                    ltc.end_period();
                    since_boundary = 0;
                    periods_done += 1;
                    if let Some(every) = args.every {
                        if periods_done.is_multiple_of(every) {
                            ltc.finalize();
                            report(
                                &ltc,
                                &names,
                                args.k,
                                &format!("after period {periods_done}"),
                            );
                        }
                    }
                }
            }
            PeriodArg::Time(_) => {
                let t = time.ok_or_else(|| {
                    format!("record {} has no timestamp but --period-time is set", i + 1)
                })?;
                let before = ltc.periods_completed();
                ltc.insert_at(*id, t);
                periods_done = ltc.periods_completed();
                if let Some(every) = args.every {
                    if periods_done > before && periods_done.is_multiple_of(every) {
                        ltc.finalize();
                        report(
                            &ltc,
                            &names,
                            args.k,
                            &format!("after period {periods_done}"),
                        );
                    }
                }
            }
        }
        names.remember(&ltc, *id, key);
    }
    if since_boundary > 0 || matches!(args.period, PeriodArg::Time(_)) {
        ltc.end_period();
    }
    ltc.finalize();
    report(&ltc, &names, args.k, "final");
    Ok(())
}

/// Replay a binary trace: the trace's own period boundaries drive
/// `end_period`; the table uses count-driven stepping at the trace's
/// average period size.
fn run_trace(args: &Args, input: impl BufRead) -> Result<(), String> {
    let stream = significant_items::workloads::read_trace(input).map_err(|e| e.to_string())?;
    if stream.is_empty() {
        return Err("no records in trace".into());
    }
    let n = stream
        .layout
        .records_per_period()
        .expect("traces are count-driven");
    let trace_args = Args {
        period: PeriodArg::Count(n.max(1)),
        ..args.clone()
    };
    let mut ltc = build_table(&trace_args);
    let mut names = Names {
        map: FxHashMap::default(),
    };
    let mut periods_done = 0u64;
    for period in stream.periods() {
        for &id in period {
            ltc.insert(id);
            names.remember(&ltc, id, &id.to_string());
        }
        ltc.end_period();
        periods_done += 1;
        if let Some(every) = args.every {
            if periods_done.is_multiple_of(every) {
                ltc.finalize();
                report(
                    &ltc,
                    &names,
                    args.k,
                    &format!("after period {periods_done}"),
                );
            }
        }
    }
    ltc.finalize();
    report(&ltc, &names, args.k, "final");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let input: Box<dyn BufRead> = match &args.file {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => Box::new(BufReader::new(f)),
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(BufReader::new(io::stdin())),
    };
    let outcome = if args.trace {
        run_trace(&args, input)
    } else {
        run(&args, input)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        parse_args(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let a = parse("").unwrap();
        assert_eq!(a, Args::default());
    }

    #[test]
    fn full_flag_set() {
        let a = parse("-w 1:10 -m 128 -k 50 -t 3600 -d 4 --every 24 --basic trace.csv").unwrap();
        assert_eq!(a.weights, Weights::new(1.0, 10.0));
        assert_eq!(a.memory_kb, 128);
        assert_eq!(a.k, 50);
        assert_eq!(a.period, PeriodArg::Time(3600));
        assert_eq!(a.depth, 4);
        assert_eq!(a.every, Some(24));
        assert!(a.basic);
        assert_eq!(a.file.as_deref(), Some("trace.csv"));
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(parse("--bogus").is_err());
        assert!(parse("-m").is_err());
        assert!(parse("-m x").is_err());
        assert!(parse("a b").is_err(), "two files");
        assert!(parse("-k 0").is_err());
    }

    #[test]
    fn help_is_an_err_with_usage() {
        let msg = parse("--help").unwrap_err();
        assert!(msg.contains("usage:"));
    }

    #[test]
    fn trace_mode_roundtrip() {
        use significant_items::workloads::{generate, write_trace, StreamSpec};
        let stream = generate(&StreamSpec {
            name: "cli-trace",
            total_records: 2_000,
            distinct_items: 200,
            periods: 10,
            zipf_skew: 1.0,
            burst_fraction: 0.1,
            periodic_fraction: 0.1,
            seed: 4,
        });
        let mut buf = Vec::new();
        write_trace(&stream, &mut buf).unwrap();
        let args = parse("--trace -m 16 -k 5").unwrap();
        run_trace(&args, Box::new(io::BufReader::new(&buf[..]))).unwrap();
    }

    #[test]
    fn trace_mode_rejects_garbage() {
        let args = parse("--trace").unwrap();
        assert!(run_trace(&args, Box::new(io::BufReader::new(&b"junk"[..]))).is_err());
    }

    #[test]
    fn end_to_end_count_driven() {
        let args = parse("-w 1:0 -m 16 -k 2 -p 10").unwrap();
        let input = "7,1\n7,2\n7,3\n8,4\n9,5\n7,6\n7,7\n7,8\n10,9\n11,10\n";
        // run() prints to stdout; just assert it succeeds.
        run(&args, Box::new(io::BufReader::new(input.as_bytes()))).unwrap();
    }

    #[test]
    fn time_driven_requires_timestamps() {
        let args = parse("-t 100").unwrap();
        let err = run(&args, Box::new(io::BufReader::new(&b"justakey\n"[..]))).unwrap_err();
        assert!(err.contains("no timestamp"), "{err}");
    }

    #[test]
    fn empty_input_is_an_error() {
        let args = parse("").unwrap();
        assert!(run(&args, Box::new(io::BufReader::new(&b""[..]))).is_err());
    }

    #[test]
    fn parse_args_never_panics_on_fuzz() {
        // Cheap in-place fuzz: a deterministic LCG mutates flag-shaped and
        // garbage argv vectors; the parser must always return Ok or Err,
        // never panic.
        let tokens = [
            "-w",
            "-m",
            "-k",
            "-p",
            "-t",
            "-d",
            "--every",
            "--basic",
            "--trace",
            "--help",
            "1:1",
            "0:0",
            "-1:2",
            "abc",
            "",
            "999999999999999999999999",
            "file.csv",
            "-",
            "--",
            "-x",
            "1",
            "0",
        ];
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..2_000 {
            let len = next() % 6;
            let argv: Vec<String> = (0..len)
                .map(|_| tokens[next() % tokens.len()].to_string())
                .collect();
            let _ = parse_args(&argv);
        }
    }
}
